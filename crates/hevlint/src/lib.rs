//! `hevlint` — a workspace-specific static analyzer for the HEV
//! joint-control codebase.
//!
//! The repo's core contract is bit-identical Q-tables and stdout at
//! every `--jobs` value, and a serve path that never panics on hostile
//! input. Runtime diff tests guard those contracts after the fact;
//! `hevlint` enforces the *source patterns* that break them — before
//! they run:
//!
//! - **determinism**: no `HashMap`/`HashSet` (hasher-dependent
//!   iteration), no wall-clock/entropy/environment reads outside the
//!   allowlisted harness/bench timing layer, and no library code that
//!   *calls into* such reads within two call-graph hops
//!   (`determinism::taint`);
//! - **panic-freedom**: no `unwrap`/`expect`/`panic!`/`unreachable!` in
//!   library non-test code, and nothing panic-capable reachable within
//!   N call-graph hops of a `hev-serve` request-handling entry point
//!   (`panic::reachable-from-serve`);
//! - **architecture**: the crate graph must respect the declared
//!   layering (`arch::layering`) — `hev-model` below `hev-control`
//!   below `hev-serve`, `hevlint`/`hev-trace` dependency-free,
//!   vendored stand-ins as leaves;
//! - **float discipline**: no exact `==`/`!=` against float literals,
//!   no lossy `as` casts in physics code;
//! - **hygiene**: no `dbg!`/`todo!`/leftover prints in libraries, no
//!   workspace-unreferenced `pub` items (`hygiene::dead-pub`), no
//!   undocumented `pub fn`s (`hygiene::missing-docs`);
//! - **headers**: uniform `#![forbid(unsafe_code)]` +
//!   `#![warn(missing_docs)]` crate roots.
//!
//! Since v2 the analysis is **flow-aware**: a lightweight item parser
//! recovers `fn` bodies, `use` roots, and visibility; the workspace
//! model reads every `Cargo.toml`; and a name-based call graph powers
//! the reachability and taint rules. Deliberate exceptions are
//! declared in-place with `// hevlint::allow(rule, reason)`, and a
//! committed findings baseline (`--baseline`) supports incremental
//! adoption. See DESIGN.md ("Static analysis") for the rule table and
//! the approximation limits.
//!
//! Run it with `cargo run -p hevlint -- --deny-all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod workspace;

use diagnostics::{Finding, Severity};
use parser::Visibility;
use rules::{FileContext, Role};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Linter options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Enable the opt-in `panic::indexing` rule.
    pub strict_indexing: bool,
    /// Call-graph hop budget for `panic::reachable-from-serve`.
    pub reach_hops: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            strict_indexing: false,
            reach_hops: 2,
        }
    }
}

/// Result of linting a tree: findings plus scan counters.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of workspace crates discovered (manifests parsed).
    pub crates: usize,
    /// Findings suppressed by allow directives.
    pub suppressed: usize,
    /// Findings suppressed by the loaded baseline (set by the CLI).
    pub baseline_suppressed: usize,
}

impl Report {
    /// True when any finding is deny-severity.
    pub fn has_denials(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Derives the role of a file from its workspace-relative path.
///
/// The harness/bench/tooling layer — `crates/bench` (experiment runner,
/// prints reports, measures wall-clock), `crates/core/src/harness`
/// (timing + run-log layer), `crates/hevlint` itself (a CLI tool),
/// `crates/hev-trace/src/sink.rs` (the telemetry file writer, the one
/// hev-trace module allowed to touch the clock and filesystem),
/// `crates/hev-trace/src/wallclock.rs` (the span profiler's optional
/// wall-clock lane: the one module that installs a nanosecond hook —
/// the span module itself reads no machine state), and
/// `crates/hev-serve/src/driver.rs` (the serve-bench driver, the one
/// hev-serve module that times wall-clock throughput) — is exempt from
/// the wall-clock/env/print rules; everything else is library code.
pub fn role_for(rel_path: &str) -> Role {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("crates/bench/")
        || p.starts_with("crates/hevlint/")
        || p.contains("/harness/")
        || p == "crates/hev-trace/src/sink.rs"
        || p == "crates/hev-trace/src/wallclock.rs"
        || p == "crates/hev-serve/src/driver.rs"
    {
        Role::Harness
    } else {
        Role::Library
    }
}

/// Everything the workspace passes need from one analyzed file.
struct FileAnalysis {
    rel: String,
    lines: Vec<String>,
    tokens: Vec<lexer::Token>,
    items: parser::ParsedItems,
    ctx: FileContext,
    local_findings: Vec<Finding>,
    directives: Vec<directives::Directive>,
    directive_findings: Vec<Finding>,
}

fn analyze_source(rel_path: &str, src: &str, opts: &Options) -> FileAnalysis {
    let out = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let ctx = FileContext {
        rel_path: rel_path.to_string(),
        role: role_for(rel_path),
        is_crate_root: rel_path.replace('\\', "/").ends_with("src/lib.rs"),
        strict_indexing: opts.strict_indexing,
    };
    let local_findings = rules::check(&out.tokens, &ctx, &lines);
    let parsed = directives::parse(
        &out.comments,
        &out.tokens,
        rel_path,
        &lines,
        rules::known_rule,
    );
    let tmask = rules::test_mask(&out.tokens);
    let items = parser::parse_items(&out.tokens, &out.comments, &tmask);
    FileAnalysis {
        rel: rel_path.to_string(),
        lines: lines.into_iter().map(|l| l.to_string()).collect(),
        tokens: out.tokens,
        items,
        ctx,
        local_findings,
        directives: parsed.directives,
        directive_findings: parsed.findings,
    }
}

/// Lints one source string with the per-file (lexical) rules only.
/// `rel_path` decides the role and whether the crate-root header rule
/// applies. The workspace rules (`arch::*`, `panic::reachable-from-
/// serve`, `determinism::taint`, `hygiene::dead-pub`/`missing-docs`)
/// need the whole tree and run in [`lint_workspace`].
pub fn lint_source(rel_path: &str, src: &str, opts: &Options) -> (Vec<Finding>, usize) {
    let mut fa = analyze_source(rel_path, src, opts);
    let line_refs: Vec<&str> = fa.lines.iter().map(|s| s.as_str()).collect();
    let (mut kept, suppressed) =
        directives::suppress(&mut fa.directives, fa.local_findings.split_off(0));
    kept.extend(directives::stale(&fa.directives, rel_path, &line_refs));
    kept.append(&mut fa.directive_findings);
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (kept, suppressed)
}

/// Directory names never descended into: build output, vendored
/// stand-ins, and test/bench/example/fixture code (the rules target
/// library and harness *source*; test code is exempt by design).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

fn collect_rs(dir: &Path, skip: &[&str], out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if skip.contains(&name) {
                continue;
            }
            collect_rs(&p, skip, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Directories excluded from the *reference corpus* (the ident pool
/// `hygiene::dead-pub` counts usages in). Unlike the lint walk, tests,
/// benches, and examples DO count as references — an item a test
/// exercises is not dead — but deliberately-violating fixtures and
/// build output never do.
const REFERENCE_SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures", "golden", ".git"];

/// Names that are never reported dead: binary entry points and the
/// umbrella crate's conventional re-export module.
const DEAD_PUB_EXEMPT: &[&str] = &["main", "prelude"];

/// Lints every `.rs` file under `root`'s `crates/` and `src/` trees
/// (skipping `target/`, `vendor/`, tests, benches, examples,
/// fixtures), then runs the workspace passes: crate layering over the
/// `Cargo.toml` graph, serve-reachability and determinism taint over
/// the call graph, and the public-API audit against a reference
/// corpus that includes tests/benches/examples.
pub fn lint_workspace(root: &Path, opts: &Options) -> Report {
    let ws = workspace::Workspace::discover(root);
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), SKIP_DIRS, &mut files);
    }

    let mut report = Report {
        crates: ws.crates.len(),
        ..Report::default()
    };
    let mut analyses: Vec<FileAnalysis> = Vec::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.files_scanned += 1;
        analyses.push(analyze_source(&rel, &src, opts));
    }

    // ---- Workspace passes ------------------------------------------------
    let snippets: BTreeMap<&str, &[String]> = analyses
        .iter()
        .map(|fa| (fa.rel.as_str(), fa.lines.as_slice()))
        .collect();
    let snippet = |file: &str, line: u32| -> String {
        snippets
            .get(file)
            .and_then(|ls| ls.get((line as usize).saturating_sub(1)))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut ws_findings: Vec<Finding> = ws.layering_findings();
    let mut graph = callgraph::Graph::default();
    for fa in &analyses {
        ws_findings.extend(ws.use_findings(&fa.rel, &fa.items.uses, |l| snippet(&fa.rel, l)));
        let crate_name = ws
            .crate_for_file(&fa.rel)
            .map(|c| c.name.clone())
            .unwrap_or_default();
        let amask = rules::attr_mask(&fa.tokens);
        graph.add_file(
            &fa.rel,
            &crate_name,
            fa.ctx.role,
            &fa.items.fns,
            &fa.tokens,
            &amask,
        );
    }
    ws_findings.extend(graph.reachability_findings(opts.reach_hops, snippet));
    ws_findings.extend(graph.taint_findings(snippet));
    ws_findings.extend(pub_audit(&analyses, root));

    // ---- Directive application (local + workspace findings together) ----
    // Staleness is only decided after BOTH passes, so a family-prefix
    // allow consumed by any member rule — including workspace-pass
    // members like `panic::reachable-from-serve` — is never reported
    // stale.
    let mut per_file: BTreeMap<String, Vec<Finding>> = BTreeMap::new();
    for f in ws_findings {
        // Manifest findings have no host file to carry directives;
        // they go straight to the report.
        if f.file.ends_with("Cargo.toml") {
            report.findings.push(f);
        } else {
            per_file.entry(f.file.clone()).or_default().push(f);
        }
    }
    for fa in &mut analyses {
        let mut all = fa.local_findings.split_off(0);
        if let Some(extra) = per_file.remove(fa.rel.as_str()) {
            all.extend(extra);
        }
        let (mut kept, suppressed) = directives::suppress(&mut fa.directives, all);
        let line_refs: Vec<&str> = fa.lines.iter().map(|s| s.as_str()).collect();
        kept.extend(directives::stale(&fa.directives, &fa.rel, &line_refs));
        kept.append(&mut fa.directive_findings);
        report.suppressed += suppressed;
        report.findings.extend(kept);
    }
    // Workspace findings whose file was not scanned (shouldn't happen,
    // but never silently drop a finding).
    for (_, extra) in per_file {
        report.findings.extend(extra);
    }

    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// The public-API audit: `hygiene::dead-pub` (plain-pub items nothing
/// else in the workspace references, tests included) and
/// `hygiene::missing-docs` (plain-pub fns without a doc comment).
fn pub_audit(analyses: &[FileAnalysis], root: &Path) -> Vec<Finding> {
    // Reference corpus: every ident of every .rs file under root
    // (tests/benches/examples included; fixtures/vendor/target not),
    // keyed by name → files containing it.
    let mut corpus_files = Vec::new();
    collect_rs(root, REFERENCE_SKIP_DIRS, &mut corpus_files);
    let mut refs: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for path in &corpus_files {
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        for t in lexer::lex(&src).tokens {
            if let Some(id) = t.kind.ident() {
                refs.entry(id.to_string()).or_default().insert(rel.clone());
            }
        }
    }

    let mut out = Vec::new();
    for fa in analyses {
        let line = |l: u32| {
            fa.lines
                .get((l as usize).saturating_sub(1))
                .map(|s: &String| s.trim().to_string())
                .unwrap_or_default()
        };
        let dead = |name: &str| {
            !DEAD_PUB_EXEMPT.contains(&name)
                && refs
                    .get(name)
                    .map(|files| files.iter().all(|f| *f == fa.rel))
                    .unwrap_or(true)
        };
        for f in &fa.items.fns {
            if f.in_test || f.vis != Visibility::Public {
                continue;
            }
            if dead(&f.name) {
                out.push(Finding {
                    rule: "hygiene::dead-pub",
                    file: fa.rel.clone(),
                    line: f.line,
                    snippet: line(f.line),
                    severity: Severity::Warn,
                    message: format!(
                        "pub fn `{}` is referenced nowhere else in the workspace (tests included); make it private or remove it",
                        f.name
                    ),
                });
            }
            if !f.has_doc {
                out.push(Finding {
                    rule: "hygiene::missing-docs",
                    file: fa.rel.clone(),
                    line: f.line,
                    snippet: line(f.line),
                    severity: Severity::Warn,
                    message: format!("pub fn `{}` has no doc comment", f.name),
                });
            }
        }
        for n in &fa.items.named {
            if n.in_test || n.vis != Visibility::Public {
                continue;
            }
            // A `pub mod` is namespace organization: its items are
            // typically reached through root re-exports, so the module
            // name itself appearing nowhere else is not dead code.
            if n.kind == "mod" {
                continue;
            }
            if dead(&n.name) {
                out.push(Finding {
                    rule: "hygiene::dead-pub",
                    file: fa.rel.clone(),
                    line: n.line,
                    snippet: line(n.line),
                    severity: Severity::Warn,
                    message: format!(
                        "pub {} `{}` is referenced nowhere else in the workspace (tests included); make it private or remove it",
                        n.kind, n.name
                    ),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_by_path() {
        assert_eq!(role_for("crates/bench/src/perf.rs"), Role::Harness);
        assert_eq!(role_for("crates/core/src/harness/mod.rs"), Role::Harness);
        assert_eq!(role_for("crates/hevlint/src/main.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-trace/src/sink.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-trace/src/wallclock.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-trace/src/registry.rs"), Role::Library);
        assert_eq!(role_for("crates/hev-trace/src/span.rs"), Role::Library);
        assert_eq!(role_for("crates/hev-serve/src/driver.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-serve/src/service.rs"), Role::Library);
        assert_eq!(role_for("crates/core/src/sim.rs"), Role::Library);
        assert_eq!(role_for("src/lib.rs"), Role::Library);
    }

    #[test]
    fn allow_directive_suppresses_one_line() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // hevlint::allow(panic::unwrap, demo invariant)
    let a = o.unwrap();
    let b = o.unwrap();
    a + b
}
";
        let (findings, suppressed) = lint_source("crates/x/src/f.rs", src, &Options::default());
        assert_eq!(suppressed, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn dogfood_own_sources_are_clean() {
        // The linter must pass over its own crate (harness role).
        for (name, src) in [
            ("crates/hevlint/src/lib.rs", include_str!("lib.rs")),
            ("crates/hevlint/src/lexer.rs", include_str!("lexer.rs")),
            ("crates/hevlint/src/parser.rs", include_str!("parser.rs")),
            ("crates/hevlint/src/rules.rs", include_str!("rules.rs")),
            (
                "crates/hevlint/src/workspace.rs",
                include_str!("workspace.rs"),
            ),
            (
                "crates/hevlint/src/callgraph.rs",
                include_str!("callgraph.rs"),
            ),
            (
                "crates/hevlint/src/baseline.rs",
                include_str!("baseline.rs"),
            ),
            (
                "crates/hevlint/src/directives.rs",
                include_str!("directives.rs"),
            ),
            (
                "crates/hevlint/src/diagnostics.rs",
                include_str!("diagnostics.rs"),
            ),
            ("crates/hevlint/src/main.rs", include_str!("main.rs")),
        ] {
            let (findings, _) = lint_source(name, src, &Options::default());
            assert!(findings.is_empty(), "{name} has findings: {:?}", findings);
        }
    }
}
