//! `hevlint` — a workspace-specific static analyzer for the HEV
//! joint-control codebase.
//!
//! The repo's core contract is bit-identical Q-tables and stdout at
//! every `--jobs` value. Runtime diff tests guard that contract after
//! the fact; `hevlint` enforces the *source patterns* that break it —
//! before they run:
//!
//! - **determinism**: no `HashMap`/`HashSet` (hasher-dependent
//!   iteration), no wall-clock/entropy/environment reads outside the
//!   allowlisted harness/bench timing layer;
//! - **panic-freedom**: no `unwrap`/`expect`/`panic!`/`unreachable!` in
//!   library non-test code (typed errors or documented invariants);
//! - **float discipline**: no exact `==`/`!=` against float literals, no
//!   lossy `as` casts in physics code;
//! - **hygiene**: no `dbg!`/`todo!`/leftover prints in libraries;
//! - **headers**: uniform `#![forbid(unsafe_code)]` +
//!   `#![warn(missing_docs)]` crate roots.
//!
//! Deliberate exceptions are declared in-place with
//! `// hevlint::allow(rule, reason)` — scoped to a single line,
//! mandatory reason, and reported when stale. See DESIGN.md ("Static
//! analysis") for the full rule table and the lexical-analysis
//! limitations.
//!
//! Run it with `cargo run -p hevlint -- --deny-all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagnostics;
pub mod directives;
pub mod lexer;
pub mod rules;

use diagnostics::{Finding, Severity};
use rules::{FileContext, Role};
use std::path::{Path, PathBuf};

/// Linter options.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// Enable the opt-in `panic::indexing` rule.
    pub strict_indexing: bool,
}

/// Result of linting a tree: findings plus scan counters.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by allow directives.
    pub suppressed: usize,
}

impl Report {
    /// True when any finding is deny-severity.
    pub fn has_denials(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Deny)
    }
}

/// Derives the role of a file from its workspace-relative path.
///
/// The harness/bench/tooling layer — `crates/bench` (experiment runner,
/// prints reports, measures wall-clock), `crates/core/src/harness`
/// (timing + run-log layer), `crates/hevlint` itself (a CLI tool),
/// `crates/hev-trace/src/sink.rs` (the telemetry file writer, the one
/// hev-trace module allowed to touch the clock and filesystem), and
/// `crates/hev-serve/src/driver.rs` (the serve-bench driver, the one
/// hev-serve module that times wall-clock throughput) — is exempt from
/// the wall-clock/env/print rules; everything else is library code.
pub fn role_for(rel_path: &str) -> Role {
    let p = rel_path.replace('\\', "/");
    if p.starts_with("crates/bench/")
        || p.starts_with("crates/hevlint/")
        || p.contains("/harness/")
        || p == "crates/hev-trace/src/sink.rs"
        || p == "crates/hev-serve/src/driver.rs"
    {
        Role::Harness
    } else {
        Role::Library
    }
}

/// Lints one source string. `rel_path` decides the role and whether the
/// crate-root header rule applies.
pub fn lint_source(rel_path: &str, src: &str, opts: &Options) -> (Vec<Finding>, usize) {
    let out = lexer::lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let ctx = FileContext {
        rel_path: rel_path.to_string(),
        role: role_for(rel_path),
        is_crate_root: rel_path.replace('\\', "/").ends_with("src/lib.rs"),
        strict_indexing: opts.strict_indexing,
    };
    let mut findings = rules::check(&out.tokens, &ctx, &lines);
    let mut parsed = directives::parse(
        &out.comments,
        &out.tokens,
        rel_path,
        &lines,
        rules::known_rule,
    );
    let (mut kept, suppressed) = directives::apply(
        &mut parsed.directives,
        findings.split_off(0),
        rel_path,
        &lines,
    );
    kept.append(&mut parsed.findings);
    kept.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    (kept, suppressed)
}

/// Directory names never descended into: build output, vendored
/// stand-ins, and test/bench/example/fixture code (the rules target
/// library and harness *source*; test code is exempt by design).
const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures", ".git",
];

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect_rs(&p, out);
        } else if p.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(p);
        }
    }
}

/// Lints every `.rs` file under `root`'s `crates/` and `src/` trees
/// (skipping `target/`, `vendor/`, tests, benches, examples, fixtures).
pub fn lint_workspace(root: &Path, opts: &Options) -> Report {
    let mut files = Vec::new();
    for top in ["crates", "src"] {
        collect_rs(&root.join(top), &mut files);
    }
    let mut report = Report::default();
    for path in files {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        report.files_scanned += 1;
        let (findings, suppressed) = lint_source(&rel, &src, opts);
        report.suppressed += suppressed;
        report.findings.extend(findings);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_by_path() {
        assert_eq!(role_for("crates/bench/src/perf.rs"), Role::Harness);
        assert_eq!(role_for("crates/core/src/harness/mod.rs"), Role::Harness);
        assert_eq!(role_for("crates/hevlint/src/main.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-trace/src/sink.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-trace/src/registry.rs"), Role::Library);
        assert_eq!(role_for("crates/hev-serve/src/driver.rs"), Role::Harness);
        assert_eq!(role_for("crates/hev-serve/src/service.rs"), Role::Library);
        assert_eq!(role_for("crates/core/src/sim.rs"), Role::Library);
        assert_eq!(role_for("src/lib.rs"), Role::Library);
    }

    #[test]
    fn allow_directive_suppresses_one_line() {
        let src = "\
fn f(o: Option<u32>) -> u32 {
    // hevlint::allow(panic::unwrap, demo invariant)
    let a = o.unwrap();
    let b = o.unwrap();
    a + b
}
";
        let (findings, suppressed) = lint_source("crates/x/src/f.rs", src, &Options::default());
        assert_eq!(suppressed, 1);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 4);
    }

    #[test]
    fn dogfood_own_sources_are_clean() {
        // The linter must pass over its own crate (harness role).
        for (name, src) in [
            ("crates/hevlint/src/lib.rs", include_str!("lib.rs")),
            ("crates/hevlint/src/lexer.rs", include_str!("lexer.rs")),
            ("crates/hevlint/src/rules.rs", include_str!("rules.rs")),
            (
                "crates/hevlint/src/directives.rs",
                include_str!("directives.rs"),
            ),
            (
                "crates/hevlint/src/diagnostics.rs",
                include_str!("diagnostics.rs"),
            ),
            ("crates/hevlint/src/main.rs", include_str!("main.rs")),
        ] {
            let (findings, _) = lint_source(name, src, &Options::default());
            assert!(findings.is_empty(), "{name} has findings: {:?}", findings);
        }
    }
}
