//! A lightweight item parser over the flat token stream.
//!
//! hevlint v2's workspace rules (`arch::layering`,
//! `panic::reachable-from-serve`, `determinism::taint`,
//! `hygiene::dead-pub`) need more structure than a flat token stream:
//! which function a token belongs to, what a function calls, which
//! items are `pub`, and what each file `use`s. This module recovers
//! exactly that much structure — `fn` items with brace-matched body
//! spans, `impl` context, `use` roots, visibility, and doc-comment
//! presence — and nothing more. It is still not a Rust parser: no
//! expressions, no types, no name resolution. The over/under
//! approximations this implies are documented in DESIGN.md ("Static
//! analysis v2").

use crate::lexer::{Comment, Token, TokenKind};

/// Visibility of an item, as far as a lexical pass can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` keyword.
    Private,
    /// `pub(crate)`, `pub(super)`, or `pub(in …)` — crate-visible at
    /// most, so rustc's own `dead_code` lint already covers it.
    Restricted,
    /// Plain `pub`: visible outside the crate.
    Public,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The inherent/trait-impl type the fn is defined on, when inside
    /// an `impl` block (`impl Foo { fn bar … }` → `Some("Foo")`).
    pub impl_type: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token-index range of the body, exclusive of the outer braces.
    /// Empty for body-less declarations (`fn f();` in traits).
    pub body: std::ops::Range<usize>,
    /// Visibility (trait-impl methods are `Private` — they carry no
    /// `pub` keyword and inherit the trait's visibility).
    pub vis: Visibility,
    /// True when a `///`/`/**` doc comment immediately precedes the
    /// item (attributes allowed in between).
    pub has_doc: bool,
    /// True when the fn is inside `#[cfg(test)]`/`#[test]` code.
    pub in_test: bool,
}

/// Any other named item a `pub`-audit cares about.
#[derive(Debug, Clone)]
pub struct NamedItem {
    /// Item kind keyword (`struct`, `enum`, `trait`, `mod`, `const`,
    /// `static`, `type`).
    pub kind: &'static str,
    /// The item's name.
    pub name: String,
    /// 1-based line of the kind keyword.
    pub line: u32,
    /// Visibility.
    pub vis: Visibility,
    /// True when inside test-gated code.
    pub in_test: bool,
}

/// One `use` declaration root: `use hev_model::batch::X` → `hev_model`.
#[derive(Debug, Clone)]
pub struct UseRoot {
    /// The first path segment of the `use` (after a leading `::`, if
    /// any).
    pub root: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
    /// True when the `use` sits in test-gated code.
    pub in_test: bool,
}

/// Parsed structure of one file.
#[derive(Debug, Default)]
pub struct ParsedItems {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every non-fn named item, in source order.
    pub named: Vec<NamedItem>,
    /// Every `use` root, in source order (includes fn-body `use`s).
    pub uses: Vec<UseRoot>,
}

/// Item keywords that can directly follow a visibility modifier.
const ITEM_KINDS: &[&str] = &["struct", "enum", "trait", "mod", "const", "static", "type"];

/// Keywords that look like calls when followed by `(` but are not.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "in", "as",
    "move", "ref", "mut", "let", "fn", "where", "impl", "dyn", "unsafe", "async", "await",
];

/// True when `name` can never be a workspace function call target.
pub fn is_non_call_keyword(name: &str) -> bool {
    NON_CALL_KEYWORDS.contains(&name)
}

/// Parses the token stream of one file into items. `test_mask` marks
/// tokens inside `#[cfg(test)]`/`#[test]` items (see
/// [`crate::rules::test_mask`]).
pub fn parse_items(tokens: &[Token], comments: &[Comment], test_mask: &[bool]) -> ParsedItems {
    let mut out = ParsedItems::default();
    // Impl context stack: (type name, brace depth the impl body opened at).
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < tokens.len() {
        match &tokens[i].kind {
            TokenKind::LBrace => {
                depth += 1;
                i += 1;
            }
            TokenKind::RBrace => {
                depth = depth.saturating_sub(1);
                while impl_stack.last().is_some_and(|(_, d)| *d > depth) {
                    impl_stack.pop();
                }
                i += 1;
            }
            TokenKind::Ident(name) => match name.as_str() {
                "impl" => {
                    if let Some((ty, body_open)) = parse_impl_header(tokens, i) {
                        impl_stack.push((ty, body_open));
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                "fn" => {
                    let vis = visibility_before(tokens, i);
                    let (item, next) = parse_fn(tokens, comments, test_mask, i, vis, &impl_stack);
                    if let Some(f) = item {
                        out.fns.push(f);
                    }
                    i = next;
                }
                "use" => {
                    // `use root::…` — skip a leading `::` for
                    // `use ::foo` paths.
                    let mut j = i + 1;
                    if tokens.get(j).is_some_and(|t| t.kind == TokenKind::PathSep) {
                        j += 1;
                    }
                    if let Some(root) = tokens.get(j).and_then(|t| t.kind.ident()) {
                        out.uses.push(UseRoot {
                            root: root.to_string(),
                            line: tokens[i].line,
                            in_test: test_mask.get(i).copied().unwrap_or(false),
                        });
                    }
                    i += 1;
                }
                kw if ITEM_KINDS.contains(&kw) => {
                    // `const` also appears in `const fn` / `const N:`
                    // generics; requiring an identifier right after the
                    // keyword filters `const fn` (fn is handled above).
                    if let Some(item_name) = tokens.get(i + 1).and_then(|t| t.kind.ident()) {
                        if item_name != "fn" {
                            let kind = ITEM_KINDS
                                .iter()
                                .find(|k| **k == kw)
                                .copied()
                                .unwrap_or("item");
                            out.named.push(NamedItem {
                                kind,
                                name: item_name.to_string(),
                                line: tokens[i].line,
                                vis: visibility_before(tokens, i),
                                in_test: test_mask.get(i).copied().unwrap_or(false),
                            });
                        }
                    }
                    i += 1;
                }
                _ => i += 1,
            },
            _ => i += 1,
        }
    }
    out
}

/// Looks backwards from the item keyword at `i` for a visibility
/// modifier, skipping fn qualifiers (`const`, `unsafe`, `async`,
/// `extern "C"`).
fn visibility_before(tokens: &[Token], i: usize) -> Visibility {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::Ident(w)
                if matches!(w.as_str(), "const" | "unsafe" | "async" | "extern") =>
            {
                continue;
            }
            TokenKind::Str => continue, // the ABI string of `extern "C"`
            TokenKind::Ident(w) if w == "pub" => return Visibility::Public,
            TokenKind::RParen => {
                // Possibly `pub(crate)` / `pub(super)` / `pub(in …)`:
                // scan back to the matching `(` and check for `pub`.
                let mut depth = 1usize;
                let mut k = j;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match tokens[k].kind {
                        TokenKind::RParen => depth += 1,
                        TokenKind::LParen => depth -= 1,
                        _ => {}
                    }
                }
                if k > 0 && tokens[k - 1].kind.is_ident("pub") {
                    return Visibility::Restricted;
                }
                return Visibility::Private;
            }
            _ => return Visibility::Private,
        }
    }
    Visibility::Private
}

/// Parses `impl … { …` headers: returns the implemented type's name
/// (the ident after `for` when present, otherwise the first ident
/// after any `<…>` generics) and the brace depth *inside* the body.
fn parse_impl_header(tokens: &[Token], i: usize) -> Option<(String, usize)> {
    let mut ty: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut angle = 0i32;
    let mut j = i + 1;
    let mut saw_for = false;
    while j < tokens.len() {
        match &tokens[j].kind {
            TokenKind::Other('<') => angle += 1,
            TokenKind::Other('>') => angle -= 1,
            TokenKind::LBrace => {
                let name = after_for.or(ty)?;
                return Some((name, open_depth(tokens, j)));
            }
            TokenKind::Semi => return None, // `impl Trait for Ty;` (unused)
            TokenKind::Ident(w) if w == "for" && angle == 0 => saw_for = true,
            TokenKind::Ident(w) if angle == 0 && w != "for" => {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(w.clone());
                    }
                } else if ty.is_none() {
                    ty = Some(w.clone());
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Brace depth inside the group opened by the `{` at token `open`.
fn open_depth(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    for t in tokens.iter().take(open) {
        match t.kind {
            TokenKind::LBrace => depth += 1,
            TokenKind::RBrace => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    depth + 1
}

/// Parses one `fn` starting at the `fn` keyword index. Returns the
/// item (None when malformed) and the token index to resume scanning
/// at (inside the body, so nested fns are found too).
fn parse_fn(
    tokens: &[Token],
    comments: &[Comment],
    test_mask: &[bool],
    fn_idx: usize,
    vis: Visibility,
    impl_stack: &[(String, usize)],
) -> (Option<FnItem>, usize) {
    let Some(name) = tokens.get(fn_idx + 1).and_then(|t| t.kind.ident()) else {
        return (None, fn_idx + 1);
    };
    // Find the body `{` at paren/bracket depth 0, or a `;` (no body).
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut j = fn_idx + 2;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::LParen => paren += 1,
            TokenKind::RParen => paren -= 1,
            TokenKind::LBracket => bracket += 1,
            TokenKind::RBracket => bracket -= 1,
            TokenKind::Semi if paren == 0 && bracket == 0 => {
                // Body-less declaration.
                let item = FnItem {
                    name: name.to_string(),
                    impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                    line: tokens[fn_idx].line,
                    body: j..j,
                    vis,
                    has_doc: doc_before(tokens, comments, fn_idx),
                    in_test: test_mask.get(fn_idx).copied().unwrap_or(false),
                };
                return (Some(item), j + 1);
            }
            TokenKind::LBrace if paren == 0 && bracket == 0 => {
                let close = matching_brace(tokens, j);
                let item = FnItem {
                    name: name.to_string(),
                    impl_type: impl_stack.last().map(|(t, _)| t.clone()),
                    line: tokens[fn_idx].line,
                    body: (j + 1)..close,
                    vis,
                    has_doc: doc_before(tokens, comments, fn_idx),
                    in_test: test_mask.get(fn_idx).copied().unwrap_or(false),
                };
                // Resume AT the body brace so the caller's depth
                // tracking sees it; nested fns are found by the
                // continued scan, and the outer fn's span already
                // covers them for call-graph purposes.
                return (Some(item), j);
            }
            _ => {}
        }
        j += 1;
    }
    (None, fn_idx + 1)
}

/// Index of the `}` matching the `{` at `open` (or `tokens.len()` when
/// unterminated).
pub fn matching_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < tokens.len() {
        match tokens[j].kind {
            TokenKind::LBrace => depth += 1,
            TokenKind::RBrace => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// True when a doc comment immediately precedes the item whose first
/// token (attributes included) starts the contiguous run ending at
/// `item_idx`.
fn doc_before(tokens: &[Token], comments: &[Comment], item_idx: usize) -> bool {
    // Walk back over qualifiers, visibility, and attribute groups to
    // the first token of the item.
    let mut j = item_idx;
    while let Some(prev) = j.checked_sub(1) {
        match &tokens[prev].kind {
            TokenKind::Ident(w)
                if matches!(w.as_str(), "pub" | "const" | "unsafe" | "async" | "extern") =>
            {
                j = prev;
            }
            TokenKind::Str => j = prev,
            TokenKind::RParen => {
                // `pub(crate)` group: scan to its `(` and require `pub`.
                let mut depth = 1usize;
                let mut k = prev;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match tokens[k].kind {
                        TokenKind::RParen => depth += 1,
                        TokenKind::LParen => depth -= 1,
                        _ => {}
                    }
                }
                if k > 0 && tokens[k - 1].kind.is_ident("pub") {
                    j = k - 1;
                } else {
                    break;
                }
            }
            TokenKind::RBracket => {
                // An attribute `#[…]` group: scan back to its `#`.
                let mut depth = 1usize;
                let mut k = prev;
                while k > 0 && depth > 0 {
                    k -= 1;
                    match tokens[k].kind {
                        TokenKind::RBracket => depth += 1,
                        TokenKind::LBracket => depth -= 1,
                        _ => {}
                    }
                }
                if k > 0 && tokens[k - 1].kind == TokenKind::Pound {
                    j = k - 1;
                } else {
                    break;
                }
            }
            _ => break,
        }
    }
    let first_line = tokens.get(j).map(|t| t.line).unwrap_or(0);
    // Walk up through the contiguous comment block directly above the
    // item (doc lines may be interleaved with plain `//` remarks, e.g.
    // a rationale comment between the doc and an attribute): any doc
    // comment in that block documents the item.
    let mut expect = first_line.saturating_sub(1);
    let mut found = false;
    for c in comments.iter().rev() {
        if c.line > expect || c.has_code_before {
            continue;
        }
        if c.line < expect {
            break;
        }
        if c.text.starts_with("///") || c.text.starts_with("/**") {
            found = true;
            break;
        }
        expect = c.line.saturating_sub(1);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::rules::test_mask;

    fn parse(src: &str) -> ParsedItems {
        let out = lexer::lex(src);
        let mask = test_mask(&out.tokens);
        parse_items(&out.tokens, &out.comments, &mask)
    }

    #[test]
    fn fns_with_bodies_and_visibility() {
        let p = parse("pub fn a() -> u32 { 1 }\nfn b() {}\npub(crate) fn c() {}\n");
        assert_eq!(p.fns.len(), 3);
        assert_eq!(p.fns[0].name, "a");
        assert_eq!(p.fns[0].vis, Visibility::Public);
        assert_eq!(p.fns[1].vis, Visibility::Private);
        assert_eq!(p.fns[2].vis, Visibility::Restricted);
        assert!(!p.fns[0].body.is_empty());
    }

    #[test]
    fn impl_context_inherent_and_trait() {
        let p =
            parse("impl Foo { pub fn bar(&self) {} }\nimpl Display for Baz { fn fmt(&self) {} }\n");
        assert_eq!(p.fns[0].impl_type.as_deref(), Some("Foo"));
        assert_eq!(p.fns[1].impl_type.as_deref(), Some("Baz"));
        let p2 = parse("impl<T: Clone> Wrap<T> { fn get(&self) {} }\n");
        assert_eq!(p2.fns[0].impl_type.as_deref(), Some("Wrap"));
    }

    #[test]
    fn use_roots_and_leading_pathsep() {
        let p = parse("use hev_model::batch::CandidateBatch;\nuse ::serde::Serialize;\nfn f() { use std::fmt; }\n");
        let roots: Vec<&str> = p.uses.iter().map(|u| u.root.as_str()).collect();
        assert_eq!(roots, vec!["hev_model", "serde", "std"]);
    }

    #[test]
    fn named_items_and_docs() {
        let p = parse("/// Doc.\npub struct S;\npub enum E { A }\nconst K: u32 = 1;\n/// Documented.\npub fn d() {}\npub fn undoc() {}\n");
        assert_eq!(p.named[0].name, "S");
        assert_eq!(p.named[0].vis, Visibility::Public);
        assert_eq!(p.named[1].name, "E");
        assert_eq!(p.named[2].vis, Visibility::Private);
        let d = p.fns.iter().find(|f| f.name == "d").unwrap();
        assert!(d.has_doc);
        let u = p.fns.iter().find(|f| f.name == "undoc").unwrap();
        assert!(!u.has_doc);
    }

    #[test]
    fn doc_reaches_over_attributes() {
        let p = parse("/// Doc.\n#[inline]\npub fn f() {}\n");
        assert!(p.fns[0].has_doc);
    }

    #[test]
    fn test_gated_fns_are_marked() {
        let p = parse("#[cfg(test)]\nmod tests {\n fn helper() {}\n}\nfn lib() {}\n");
        let h = p.fns.iter().find(|f| f.name == "helper").unwrap();
        assert!(h.in_test);
        let l = p.fns.iter().find(|f| f.name == "lib").unwrap();
        assert!(!l.in_test);
    }

    #[test]
    fn nested_fns_are_found_and_bodies_span() {
        let src = "fn outer() {\n    fn inner() { x.unwrap(); }\n    inner();\n}\n";
        let p = parse(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].name, "outer");
        assert_eq!(p.fns[1].name, "inner");
        // outer's body span covers inner entirely.
        assert!(p.fns[0].body.start <= p.fns[1].body.start);
        assert!(p.fns[0].body.end >= p.fns[1].body.end);
    }

    #[test]
    fn trait_decl_without_body() {
        let p = parse("pub trait T { fn req(&self); fn def(&self) { self.req() } }\n");
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].body.is_empty());
        assert!(!p.fns[1].body.is_empty());
        assert_eq!(p.named[0].kind, "trait");
        assert_eq!(p.named[0].name, "T");
    }
}
