//! A hand-rolled Rust lexer: just enough tokenization for lint rules.
//!
//! The lexer is deliberately *not* a full Rust grammar. It produces a
//! flat token stream (identifiers, literals, a small operator set) with
//! line numbers, while skipping — but recording — comments, and skipping
//! string/char literals entirely so that pattern text inside strings or
//! docs can never trigger a rule. No `syn`/`quote`: the workspace builds
//! against vendored offline stand-ins and the linter must too.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind (identifier text is carried inline).
    pub kind: TokenKind,
    /// 1-based source line the token starts on.
    pub line: u32,
}

/// The kinds of token the rules need to distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`as`, `unwrap`, `HashMap`, …).
    Ident(String),
    /// An integer literal.
    Int,
    /// A floating-point literal (has a `.`, an exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// A string literal (contents discarded).
    Str,
    /// A char or byte literal (contents discarded).
    Char,
    /// A lifetime (`'a`).
    Lifetime,
    /// `.`
    Dot,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `!` (not part of `!=`)
    Not,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `::`
    PathSep,
    /// `#`
    Pound,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `?`
    Question,
    /// `-`
    Minus,
    /// Any other punctuation character.
    Other(char),
}

/// A comment, recorded for directive parsing.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// Raw comment text including the `//` / `/*` markers.
    pub text: String,
    /// Whether code tokens precede the comment on its own line
    /// (a trailing comment attaches to that line, not the next).
    pub has_code_before: bool,
}

/// Lexer output: the token stream plus every comment encountered.
#[derive(Debug, Default)]
pub struct LexOutput {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_' || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs simply end at end-of-file.
pub fn lex(src: &str) -> LexOutput {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        out: LexOutput::default(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    out: LexOutput,
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        self.b.get(self.i + ahead).copied().unwrap_or(0)
    }

    fn push(&mut self, kind: TokenKind, line: u32) {
        self.out.tokens.push(Token { kind, line });
    }

    fn run(mut self) -> LexOutput {
        // A shebang line (`#!/usr/bin/env …`) is valid at the very
        // start of a Rust source file and is not tokens; `#![attr]`
        // inner attributes are NOT shebangs and must still lex.
        if self.b.starts_with(b"#!") && self.peek(2) != b'[' {
            while self.i < self.b.len() && self.b[self.i] != b'\n' {
                self.i += 1;
            }
        }
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' if self.raw_or_byte_prefix() => {}
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.operator(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        let has_code_before = self.out.tokens.last().is_some_and(|t| t.line == line);
        self.out.comments.push(Comment {
            line,
            text: self.src[start..self.i].to_string(),
            has_code_before,
        });
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        let has_code_before = self.out.tokens.last().is_some_and(|t| t.line == line);
        self.i += 2;
        let mut depth = 1usize;
        while self.i < self.b.len() && depth > 0 {
            match self.b[self.i] {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'/' if self.peek(1) == b'*' => {
                    depth += 1;
                    self.i += 2;
                }
                b'*' if self.peek(1) == b'/' => {
                    depth -= 1;
                    self.i += 2;
                }
                _ => self.i += 1,
            }
        }
        self.out.comments.push(Comment {
            line,
            text: self.src[start..self.i.min(self.src.len())].to_string(),
            has_code_before,
        });
    }

    /// Consumes a `"…"` literal (escapes honored, newlines tracked).
    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b'"' => {
                    self.i += 1;
                    break;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokenKind::Str, line);
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'` or a raw
    /// identifier `r#ident`; returns true if it consumed anything.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let c = self.b[self.i];
        // b'x' byte char
        if c == b'b' && self.peek(1) == b'\'' {
            let line = self.line;
            self.i += 1; // consume 'b', then reuse char lexing
            self.char_literal(line);
            return true;
        }
        // b"…"
        if c == b'b' && self.peek(1) == b'"' {
            self.i += 1;
            self.string();
            return true;
        }
        let mut j = self.i + 1;
        if c == b'b' && self.peek(1) == b'r' {
            j += 1;
        } else if c == b'b' {
            return false;
        }
        // r#ident (raw identifier) — only for the plain `r` prefix.
        if c == b'r' && self.peek(1) == b'#' && is_ident_start(self.peek(2)) {
            self.i += 2;
            self.ident();
            return true;
        }
        // r"…" / r#"…"# / br#"…"# with any number of hashes.
        let mut hashes = 0usize;
        while self.b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if self.b.get(j) != Some(&b'"') {
            return false;
        }
        let line = self.line;
        self.i = j + 1;
        // Scan for `"` followed by `hashes` hashes.
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let mut k = 0;
                while k < hashes && self.b.get(self.i + 1 + k) == Some(&b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.i += 1 + hashes;
                    self.push(TokenKind::Str, line);
                    return true;
                }
            }
            self.i += 1;
        }
        self.push(TokenKind::Str, line);
        true
    }

    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'a  → lifetime unless it closes as a char literal ('a').
        if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
            self.i += 1;
            while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                self.i += 1;
            }
            self.push(TokenKind::Lifetime, line);
            return;
        }
        self.char_literal(line);
    }

    fn char_literal(&mut self, line: u32) {
        self.i += 1; // opening quote
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'\'' => {
                    self.i += 1;
                    break;
                }
                b'\n' => break, // malformed; don't eat the file
                _ => self.i += 1,
            }
        }
        self.push(TokenKind::Char, line);
    }

    fn ident(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        self.push(TokenKind::Ident(self.src[start..self.i].to_string()), line);
    }

    fn number(&mut self) {
        let line = self.line;
        let mut float = false;
        if self.b[self.i] == b'0' && matches!(self.peek(1), b'x' | b'o' | b'b') {
            self.i += 2;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_alphanumeric() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
            self.push(TokenKind::Int, line);
            return;
        }
        while self.i < self.b.len() && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_') {
            self.i += 1;
        }
        // Fractional part — but `1..n` is a range and `1.max()` a method.
        if self.peek(0) == b'.' && self.peek(1) != b'.' && !is_ident_start(self.peek(1)) {
            float = true;
            self.i += 1;
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E')
            && (self.peek(1).is_ascii_digit()
                || (matches!(self.peek(1), b'+' | b'-') && self.peek(2).is_ascii_digit()))
        {
            float = true;
            self.i += 1;
            if matches!(self.peek(0), b'+' | b'-') {
                self.i += 1;
            }
            while self.i < self.b.len()
                && (self.b[self.i].is_ascii_digit() || self.b[self.i] == b'_')
            {
                self.i += 1;
            }
        }
        // Suffix (u32, f64, …).
        let sfx_start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let sfx = &self.src[sfx_start..self.i];
        if sfx == "f32" || sfx == "f64" {
            float = true;
        }
        self.push(
            if float {
                TokenKind::Float
            } else {
                TokenKind::Int
            },
            line,
        );
    }

    fn operator(&mut self) {
        let line = self.line;
        let c = self.b[self.i];
        let kind = match c {
            b'=' if self.peek(1) == b'=' => {
                self.i += 1;
                TokenKind::EqEq
            }
            b'!' if self.peek(1) == b'=' => {
                self.i += 1;
                TokenKind::Ne
            }
            b':' if self.peek(1) == b':' => {
                self.i += 1;
                TokenKind::PathSep
            }
            b'.' => TokenKind::Dot,
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'!' => TokenKind::Not,
            b'#' => TokenKind::Pound,
            b';' => TokenKind::Semi,
            b',' => TokenKind::Comma,
            b'?' => TokenKind::Question,
            b'-' => TokenKind::Minus,
            other => TokenKind::Other(other as char),
        };
        self.i += 1;
        self.push(kind, line);
    }
}

impl TokenKind {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when the token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn idents_and_ops() {
        use TokenKind::*;
        assert_eq!(
            kinds("a.unwrap()"),
            vec![
                Ident("a".into()),
                Dot,
                Ident("unwrap".into()),
                LParen,
                RParen
            ]
        );
        assert_eq!(kinds("a != b == c"), {
            vec![
                Ident("a".into()),
                Ne,
                Ident("b".into()),
                EqEq,
                Ident("c".into()),
            ]
        });
        assert_eq!(
            kinds("std::env"),
            vec![Ident("std".into()), PathSep, Ident("env".into())]
        );
    }

    #[test]
    fn strings_and_comments_do_not_tokenize_contents() {
        let out = lex("let s = \"HashMap.unwrap()\"; // HashMap in comment");
        assert!(out
            .tokens
            .iter()
            .all(|t| !t.kind.is_ident("HashMap") && !t.kind.is_ident("unwrap")));
        assert_eq!(out.comments.len(), 1);
        assert!(out.comments[0].has_code_before);
    }

    #[test]
    fn raw_strings_and_chars() {
        let out = lex("let r = r#\"panic!()\"#; let c = '\\n'; let l: &'a str = x;");
        assert!(out.tokens.iter().all(|t| !t.kind.is_ident("panic")));
        assert!(out.tokens.iter().any(|t| t.kind == TokenKind::Lifetime));
        assert!(out.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let out = lex("fn r#type(r#match: u32) -> u32 { r#match }");
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind.is_ident("type"))
                .count(),
            1
        );
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind.is_ident("match"))
                .count(),
            2
        );
    }

    #[test]
    fn shebang_line_is_skipped_but_inner_attr_is_not() {
        let out = lex("#!/usr/bin/env run-cargo-script\nlet x = 1;\n");
        assert!(!out.tokens.iter().any(|t| t.kind.is_ident("usr")));
        assert_eq!(out.tokens[0].kind, TokenKind::Ident("let".into()));
        assert_eq!(out.tokens[0].line, 2);
        // `#![attr]` at file start is an inner attribute, not a shebang.
        let attr = lex("#![forbid(unsafe_code)]\n");
        assert!(attr.tokens.iter().any(|t| t.kind.is_ident("forbid")));
    }

    #[test]
    fn static_lifetime_is_not_a_char_literal() {
        let out = lex("fn f(s: &'static str) -> char { 's' }");
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            1
        );
        assert_eq!(
            out.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
        // The lifetime must not swallow `static str) -> char {`.
        assert!(out.tokens.iter().any(|t| t.kind.is_ident("char")));
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(kinds("1.5"), vec![Float]);
        assert_eq!(kinds("1_000"), vec![Int]);
        assert_eq!(kinds("2e-3"), vec![Float]);
        assert_eq!(kinds("3f64"), vec![Float]);
        assert_eq!(kinds("7u32"), vec![Int]);
        assert_eq!(kinds("0xFF"), vec![Int]);
        // Ranges and method calls on ints are not floats.
        assert_eq!(kinds("0..n")[0], Int);
        assert_eq!(kinds("1.max(2)")[0], Int);
    }

    #[test]
    fn multiline_block_comment_tracks_lines() {
        let out = lex("/* a\nb\nc */ x");
        let x = out.tokens.first().expect("token after comment");
        assert_eq!(x.line, 3);
    }
}
