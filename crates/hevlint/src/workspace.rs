//! The workspace model: crate manifests, the dependency graph, and the
//! `arch::layering` rule.
//!
//! hevlint reads every `Cargo.toml` under the root, `crates/`, and
//! `vendor/` with a deliberately minimal TOML scan (sections and
//! `key = value` lines — the only shapes these manifests use), and
//! checks the resulting crate graph against a declared layering table:
//!
//! - `hevlint` and `hev-trace` depend on **nothing** (they build first
//!   in a cold workspace);
//! - `hev-model` sits below the controller: it may use `hev-trace` and
//!   `serde`, never `hev-control`/`hev-serve`;
//! - `hev-control` may use the model/predictor/RL layers, never
//!   `hev-serve` or `hev-bench`;
//! - `hev-serve` sits on top of the controller;
//! - vendored stand-ins are **leaves**: they may depend on each other
//!   but never on a `crates/` crate;
//! - the bench harness and the umbrella crate are unconstrained tops.
//!
//! Beyond the manifest graph, every non-test `use` in a lint-scanned
//! file is resolved to its root crate and checked against the same
//! table, so a layering violation is reported at the offending `use`
//! line too, not just in the manifest.

use crate::diagnostics::{Finding, Severity};
use std::path::Path;

/// One dependency edge as written in a manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Dependency key (the crate name as used in `use` paths, modulo
    /// `-`/`_`).
    pub name: String,
    /// 1-based line of the dependency entry in the manifest.
    pub line: u32,
}

/// One crate of the workspace.
#[derive(Debug, Clone)]
pub struct CrateInfo {
    /// Package name from `[package] name`.
    pub name: String,
    /// Workspace-relative directory (`crates/core`, `vendor/rand`,
    /// `.` for the umbrella crate).
    pub dir: String,
    /// Workspace-relative manifest path.
    pub manifest: String,
    /// True for `vendor/` stand-ins.
    pub vendored: bool,
    /// `[dependencies]` entries (dev-dependencies are deliberately
    /// excluded: layering constrains the shipped graph, and test-only
    /// edges are already confined by cargo).
    pub deps: Vec<Dep>,
}

/// The parsed workspace: all crates, discovery order sorted by dir.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every discovered crate.
    pub crates: Vec<CrateInfo>,
}

/// Allowed `[dependencies]` for each constrained crate. `None` means
/// unconstrained (the bench harness and umbrella crate sit at the top
/// of the DAG and may use anything).
pub fn allowed_deps(crate_name: &str) -> Option<&'static [&'static str]> {
    match crate_name {
        "hevlint" => Some(&[]),
        "hev-trace" => Some(&[]),
        "drive-cycle" => Some(&["rand", "serde"]),
        "hev-model" => Some(&["hev-trace", "serde"]),
        "hev-rl" => Some(&["rand", "serde"]),
        "hev-predict" => Some(&["rand", "serde"]),
        "hev-control" => Some(&[
            "drive-cycle",
            "hev-trace",
            "hev-model",
            "hev-rl",
            "hev-predict",
            "rand",
            "serde",
            "serde_json",
        ]),
        "hev-serve" => Some(&["hev-trace", "hev-model", "hev-control", "rand"]),
        _ => None,
    }
}

impl Workspace {
    /// Discovers crates under `root` (the root manifest plus every
    /// `crates/*/Cargo.toml` and `vendor/*/Cargo.toml`), in sorted
    /// order so findings are deterministic.
    pub fn discover(root: &Path) -> Workspace {
        let mut ws = Workspace::default();
        let mut dirs: Vec<(String, std::path::PathBuf)> =
            vec![(".".to_string(), root.to_path_buf())];
        for top in ["crates", "vendor"] {
            let Ok(entries) = std::fs::read_dir(root.join(top)) else {
                continue;
            };
            let mut subdirs: Vec<std::path::PathBuf> =
                entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
            subdirs.sort();
            for d in subdirs {
                if d.is_dir() {
                    let rel = format!(
                        "{top}/{}",
                        d.file_name().and_then(|n| n.to_str()).unwrap_or("")
                    );
                    dirs.push((rel, d));
                }
            }
        }
        for (rel_dir, dir) in dirs {
            let manifest_path = dir.join("Cargo.toml");
            let Ok(src) = std::fs::read_to_string(&manifest_path) else {
                continue;
            };
            let manifest_rel = if rel_dir == "." {
                "Cargo.toml".to_string()
            } else {
                format!("{rel_dir}/Cargo.toml")
            };
            if let Some(info) = parse_manifest(&src, &rel_dir, &manifest_rel) {
                ws.crates.push(info);
            }
        }
        ws
    }

    /// The crate a workspace-relative file path belongs to, if any.
    pub fn crate_for_file<'a>(&'a self, rel_path: &str) -> Option<&'a CrateInfo> {
        let p = rel_path.replace('\\', "/");
        self.crates
            .iter()
            .filter(|c| c.dir != ".")
            .find(|c| p.starts_with(&format!("{}/", c.dir)))
            .or_else(|| self.crates.iter().find(|c| c.dir == "."))
    }

    /// Maps a `use`-path root identifier (`hev_model`) to the crate it
    /// names, when that crate exists in this workspace.
    pub fn crate_by_ident<'a>(&'a self, ident: &str) -> Option<&'a CrateInfo> {
        self.crates
            .iter()
            .find(|c| c.name.replace('-', "_") == ident)
    }

    /// Checks the manifest graph against the layering table. Findings
    /// are attributed to the manifest file and dependency line.
    pub fn layering_findings(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for c in &self.crates {
            let allowed = allowed_deps(&c.name);
            for dep in &c.deps {
                // Only workspace-known names are layered; external
                // registry deps (none in this offline workspace) pass.
                let Some(target) = self.crates.iter().find(|t| t.name == dep.name) else {
                    continue;
                };
                if c.vendored && !target.vendored {
                    out.push(layering_finding(
                        &c.manifest,
                        dep.line,
                        format!(
                            "vendored crate `{}` must stay a leaf: it may not depend on workspace crate `{}`",
                            c.name, dep.name
                        ),
                    ));
                    continue;
                }
                if let Some(allowed) = allowed {
                    if !allowed.contains(&dep.name.as_str()) {
                        out.push(layering_finding(
                            &c.manifest,
                            dep.line,
                            format!(
                                "`{}` may not depend on `{}` (allowed: {})",
                                c.name,
                                dep.name,
                                if allowed.is_empty() {
                                    "nothing".to_string()
                                } else {
                                    allowed.join(", ")
                                }
                            ),
                        ));
                    }
                }
            }
        }
        out
    }

    /// Checks one file's non-test `use` roots against the layering
    /// table. `snippet` supplies the source line for the finding.
    pub fn use_findings(
        &self,
        rel_path: &str,
        uses: &[crate::parser::UseRoot],
        snippet: impl Fn(u32) -> String,
    ) -> Vec<Finding> {
        let Some(own) = self.crate_for_file(rel_path) else {
            return Vec::new();
        };
        let Some(allowed) = allowed_deps(&own.name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for u in uses {
            if u.in_test {
                continue;
            }
            let Some(target) = self.crate_by_ident(&u.root) else {
                continue;
            };
            if target.name == own.name {
                continue;
            }
            if !allowed.contains(&target.name.as_str()) {
                out.push(Finding {
                    rule: "arch::layering",
                    file: rel_path.to_string(),
                    line: u.line,
                    snippet: snippet(u.line),
                    severity: Severity::Deny,
                    message: format!(
                        "`{}` may not use `{}` (allowed: {})",
                        own.name,
                        target.name,
                        if allowed.is_empty() {
                            "nothing".to_string()
                        } else {
                            allowed.join(", ")
                        }
                    ),
                });
            }
        }
        out
    }
}

fn layering_finding(manifest: &str, line: u32, message: String) -> Finding {
    Finding {
        rule: "arch::layering",
        file: manifest.to_string(),
        line,
        snippet: String::new(),
        severity: Severity::Deny,
        message,
    }
}

/// Parses the few manifest shapes this workspace uses: `[package]`
/// `name`, and `[dependencies]` entries as either inline
/// (`foo = { … }` / `foo = "1.0"`) or section
/// (`[dependencies.foo]`) form.
fn parse_manifest(src: &str, rel_dir: &str, manifest_rel: &str) -> Option<CrateInfo> {
    let mut name: Option<String> = None;
    let mut deps: Vec<Dep> = Vec::new();
    let mut section = String::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = (idx + 1) as u32;
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            if let Some(dep) = section.strip_prefix("dependencies.") {
                deps.push(Dep {
                    name: dep.to_string(),
                    line: line_no,
                });
            }
            continue;
        }
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section.as_str() {
            "package" if key == "name" => {
                name = Some(value.trim().trim_matches('"').to_string());
            }
            "dependencies" => deps.push(Dep {
                name: key.to_string(),
                line: line_no,
            }),
            _ => {}
        }
    }
    Some(CrateInfo {
        name: name?,
        dir: rel_dir.to_string(),
        manifest: manifest_rel.to_string(),
        vendored: rel_dir.starts_with("vendor/"),
        deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_parse_inline_and_section_deps() {
        let src = "[package]\nname = \"hev-model\"\n\n[dependencies]\nhev-trace = { workspace = true }\nserde = { workspace = true }\n\n[dependencies.extra]\npath = \"../extra\"\n\n[dev-dependencies]\nproptest = { workspace = true }\n";
        let c = parse_manifest(src, "crates/hev-model", "crates/hev-model/Cargo.toml").unwrap();
        assert_eq!(c.name, "hev-model");
        let names: Vec<&str> = c.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["hev-trace", "serde", "extra"]);
        assert!(!c.vendored);
    }

    #[test]
    fn layering_flags_model_depending_on_control() {
        let ws = Workspace {
            crates: vec![
                parse_manifest(
                    "[package]\nname = \"hev-model\"\n[dependencies]\nhev-control = { workspace = true }\n",
                    "crates/hev-model",
                    "crates/hev-model/Cargo.toml",
                )
                .unwrap(),
                parse_manifest(
                    "[package]\nname = \"hev-control\"\n",
                    "crates/core",
                    "crates/core/Cargo.toml",
                )
                .unwrap(),
            ],
        };
        let f = ws.layering_findings();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "arch::layering");
        assert_eq!(f[0].file, "crates/hev-model/Cargo.toml");
    }

    #[test]
    fn vendored_leaves_may_not_use_workspace_crates() {
        let ws = Workspace {
            crates: vec![
                parse_manifest(
                    "[package]\nname = \"rand\"\n[dependencies]\nhev-model = { path = \"../../crates/hev-model\" }\n",
                    "vendor/rand",
                    "vendor/rand/Cargo.toml",
                )
                .unwrap(),
                parse_manifest(
                    "[package]\nname = \"hev-model\"\n",
                    "crates/hev-model",
                    "crates/hev-model/Cargo.toml",
                )
                .unwrap(),
            ],
        };
        let f = ws.layering_findings();
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("leaf"));
    }

    #[test]
    fn vendored_may_depend_on_vendored() {
        let ws = Workspace {
            crates: vec![
                parse_manifest(
                    "[package]\nname = \"serde\"\n[dependencies]\nserde_derive = { path = \"../serde_derive\" }\n",
                    "vendor/serde",
                    "vendor/serde/Cargo.toml",
                )
                .unwrap(),
                parse_manifest(
                    "[package]\nname = \"serde_derive\"\n",
                    "vendor/serde_derive",
                    "vendor/serde_derive/Cargo.toml",
                )
                .unwrap(),
            ],
        };
        assert!(ws.layering_findings().is_empty());
    }

    #[test]
    fn crate_for_file_prefers_longest_then_umbrella() {
        let ws = Workspace {
            crates: vec![
                parse_manifest("[package]\nname = \"umbrella\"\n", ".", "Cargo.toml").unwrap(),
                parse_manifest(
                    "[package]\nname = \"hev-model\"\n",
                    "crates/hev-model",
                    "crates/hev-model/Cargo.toml",
                )
                .unwrap(),
            ],
        };
        assert_eq!(
            ws.crate_for_file("crates/hev-model/src/lib.rs")
                .unwrap()
                .name,
            "hev-model"
        );
        assert_eq!(ws.crate_for_file("src/lib.rs").unwrap().name, "umbrella");
    }
}
