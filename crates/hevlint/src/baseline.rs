//! Findings baselines: incremental adoption for new rule families.
//!
//! A baseline file records accepted findings as
//! `(rule, file, snippet)` triples — deliberately **not** line
//! numbers, so unrelated edits above a recorded finding do not
//! invalidate it. `--baseline PATH` suppresses exactly the recorded
//! multiset (a second identical violation in the same file still
//! fires); `HEVLINT_BLESS=1` rewrites the file from the current
//! findings. CI diffs the regenerated report against the committed
//! baseline and fails on any new finding, so the recorded debt can
//! only shrink.

use crate::diagnostics::Finding;

/// One accepted finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative file.
    pub file: String,
    /// Trimmed source line of the finding at record time.
    pub snippet: String,
}

/// A loaded baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// Accepted findings (a multiset: duplicates each cover one
    /// occurrence).
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Parses the baseline JSON produced by [`to_json`]. The parser is
    /// a tolerant hand-rolled scan (matching the writer below), so the
    /// linter stays dependency-free.
    pub fn parse(src: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for line in src.lines() {
            let line = line.trim().trim_end_matches(',');
            // Entry lines carry a rule field; the header/footer lines
            // (`{"version":1,"entries":[` / `]}`) do not.
            if !line.starts_with('{') || !line.contains("\"rule\":\"") {
                continue;
            }
            let rule = field(line, "rule");
            let file = field(line, "file");
            let snippet = field(line, "snippet");
            match (rule, file, snippet) {
                (Some(rule), Some(file), Some(snippet)) => entries.push(Entry {
                    rule,
                    file,
                    snippet,
                }),
                _ => return Err(format!("unparseable baseline entry: {line}")),
            }
        }
        Ok(Baseline { entries })
    }

    /// Splits findings into (kept, suppressed-count), consuming each
    /// baseline entry at most once. Returns the number of stale
    /// entries (recorded findings that no longer occur) as the third
    /// element, so blessing can be suggested.
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, usize, usize) {
        let mut remaining: Vec<&Entry> = self.entries.iter().collect();
        let mut kept = Vec::with_capacity(findings.len());
        let mut suppressed = 0usize;
        for f in findings {
            let hit = remaining
                .iter()
                .position(|e| e.rule == f.rule && e.file == f.file && e.snippet == f.snippet);
            match hit {
                Some(idx) => {
                    remaining.swap_remove(idx);
                    suppressed += 1;
                }
                None => kept.push(f),
            }
        }
        (kept, suppressed, remaining.len())
    }
}

/// Extracts `"key":"value"` from a single-line JSON object, unescaping
/// the writer's escapes.
fn field(line: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":\"");
    let start = line.find(&marker)? + marker.len();
    let bytes = line.as_bytes();
    let mut out = String::new();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => return Some(out),
            b'\\' => {
                let esc = bytes.get(i + 1)?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = line.get(i + 2..i + 6)?;
                        let code = u32::from_str_radix(hex, 16).ok()?;
                        out.push(char::from_u32(code)?);
                        i += 4;
                    }
                    _ => return None,
                }
                i += 2;
                continue;
            }
            _ => {
                // Multi-byte UTF-8: copy the full char.
                let s = &line[i..];
                let c = s.chars().next()?;
                out.push(c);
                i += c.len_utf8();
                continue;
            }
        }
    }
    None
}

/// Renders findings as a baseline file (sorted, deduplicated only by
/// identity — true duplicates are kept so the multiset round-trips).
pub fn to_json(findings: &[Finding]) -> String {
    let mut entries: Vec<(&str, &str, &str)> = findings
        .iter()
        .map(|f| (f.rule, f.file.as_str(), f.snippet.as_str()))
        .collect();
    entries.sort_unstable();
    let mut out = String::from("{\"version\":1,\"entries\":[");
    for (k, (rule, file, snippet)) in entries.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        escape(rule, &mut out);
        out.push_str("\",\"file\":\"");
        escape(file, &mut out);
        out.push_str("\",\"snippet\":\"");
        escape(snippet, &mut out);
        out.push_str("\"}");
    }
    out.push_str(if entries.is_empty() { "]}\n" } else { "\n]}\n" });
    out
}

fn escape(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostics::Severity;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 1,
            snippet: snippet.into(),
            severity: Severity::Deny,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips_and_suppresses_multiset() {
        let fs = vec![
            finding("panic::unwrap", "a.rs", "x.unwrap();"),
            finding("panic::unwrap", "a.rs", "x.unwrap();"),
            finding("float::eq", "b.rs", "x == 0.5"),
        ];
        let json = to_json(&fs);
        let b = Baseline::parse(&json).unwrap();
        assert_eq!(b.entries.len(), 3);
        // All three suppressed; a fourth identical unwrap would fire.
        let mut four = fs.clone();
        four.push(finding("panic::unwrap", "a.rs", "x.unwrap();"));
        let (kept, suppressed, stale) = b.apply(four);
        assert_eq!(suppressed, 3);
        assert_eq!(kept.len(), 1);
        assert_eq!(stale, 0);
    }

    #[test]
    fn stale_entries_are_counted() {
        let b =
            Baseline::parse(&to_json(&[finding("panic::unwrap", "gone.rs", "old();")])).unwrap();
        let (kept, suppressed, stale) = b.apply(vec![]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 0);
        assert_eq!(stale, 1);
    }

    #[test]
    fn line_changes_do_not_invalidate_entries() {
        let b =
            Baseline::parse(&to_json(&[finding("panic::unwrap", "a.rs", "x.unwrap();")])).unwrap();
        let mut moved = finding("panic::unwrap", "a.rs", "x.unwrap();");
        moved.line = 99;
        let (kept, suppressed, _) = b.apply(vec![moved]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
    }

    #[test]
    fn escapes_round_trip() {
        let f = finding("hygiene::print", "a.rs", "println!(\"x\\ty\");");
        let b = Baseline::parse(&to_json(std::slice::from_ref(&f))).unwrap();
        assert_eq!(b.entries[0].snippet, "println!(\"x\\ty\");");
        let (kept, suppressed, _) = b.apply(vec![f]);
        assert!(kept.is_empty());
        assert_eq!(suppressed, 1);
    }
}
