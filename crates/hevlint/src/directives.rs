//! The `// hevlint::allow(rule, reason)` suppression directive.
//!
//! A directive suppresses findings of `rule` (a full rule id like
//! `panic::unwrap`, or a whole family like `panic`) on exactly one line:
//! the directive's own line when it trails code, otherwise the next line
//! that contains any token. The reason is mandatory — an exception
//! without a justification is itself a violation — and a directive that
//! suppresses nothing is reported so stale exceptions can't accumulate.

use crate::diagnostics::{Finding, Severity};
use crate::lexer::{Comment, Token};

/// A parsed, well-formed allow directive.
#[derive(Debug, Clone)]
pub struct Directive {
    /// Rule id or family name the directive applies to.
    pub rule: String,
    /// Mandatory human justification.
    pub reason: String,
    /// Line the directive comment starts on.
    pub comment_line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// Set when the directive suppressed at least one finding.
    pub used: bool,
}

/// Directive parse results: well-formed directives plus findings for
/// malformed ones.
#[derive(Debug, Default)]
pub struct Directives {
    /// Well-formed directives, in source order.
    pub directives: Vec<Directive>,
    /// `directive::malformed` / `directive::unknown-rule` findings.
    pub findings: Vec<Finding>,
}

const MARKER: &str = "hevlint::allow";

/// Extracts directives from comments. `known_rule` reports whether a
/// rule id or family name exists, so typos are caught at the directive.
pub fn parse(
    comments: &[Comment],
    tokens: &[Token],
    file: &str,
    lines: &[&str],
    known_rule: impl Fn(&str) -> bool,
) -> Directives {
    let mut out = Directives::default();
    for c in comments {
        // Directives live in plain `//` / `/* */` comments only: doc
        // comments *describing* the syntax must not activate it.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find(MARKER) else {
            continue;
        };
        let snippet = snippet_at(lines, c.line);
        let rest = &c.text[pos + MARKER.len()..];
        let parsed = parse_args(rest);
        let (rule, reason) = match parsed {
            Some(rr) => rr,
            None => {
                out.findings.push(Finding {
                    rule: "directive::malformed",
                    file: file.to_string(),
                    line: c.line,
                    snippet,
                    severity: Severity::Deny,
                    message: format!(
                        "malformed directive; expected `// {MARKER}(rule, reason)` with a non-empty reason"
                    ),
                });
                continue;
            }
        };
        if !known_rule(&rule) {
            out.findings.push(Finding {
                rule: "directive::unknown-rule",
                file: file.to_string(),
                line: c.line,
                snippet,
                severity: Severity::Deny,
                message: format!("directive names unknown rule `{rule}`"),
            });
            continue;
        }
        let target_line = if c.has_code_before {
            c.line
        } else {
            tokens
                .iter()
                .map(|t| t.line)
                .find(|&l| l > c.line)
                .unwrap_or(c.line)
        };
        out.directives.push(Directive {
            rule,
            reason,
            comment_line: c.line,
            target_line,
            used: false,
        });
    }
    out
}

/// Parses `(rule, reason…)` after the marker. Returns `None` when the
/// parens are missing/unclosed, the rule is empty, or the reason is
/// empty.
fn parse_args(rest: &str) -> Option<(String, String)> {
    let rest = rest.trim_start();
    let inner = rest.strip_prefix('(')?;
    let close = inner.rfind(')')?;
    let inner = &inner[..close];
    let (rule, reason) = inner.split_once(',')?;
    let rule = rule.trim();
    let reason = reason.trim();
    if rule.is_empty() || reason.is_empty() {
        return None;
    }
    Some((rule.to_string(), reason.to_string()))
}

/// True when `directive_rule` (id or family) covers `finding_rule`.
pub fn covers(directive_rule: &str, finding_rule: &str) -> bool {
    finding_rule == directive_rule
        || finding_rule
            .strip_prefix(directive_rule)
            .is_some_and(|rest| rest.starts_with("::"))
}

/// Removes findings covered by a directive on their line, marking the
/// directive used. Callable more than once (e.g. once for the local
/// pass and once for workspace-pass findings); staleness is reported
/// separately by [`stale`] only after every pass has run, so a
/// family-prefix allow consumed by *any* member rule — including a
/// workspace rule — is never reported stale.
pub fn suppress(directives: &mut [Directive], findings: Vec<Finding>) -> (Vec<Finding>, usize) {
    let mut kept = Vec::with_capacity(findings.len());
    let mut suppressed = 0usize;
    for f in findings {
        let mut hit = false;
        for d in directives.iter_mut() {
            if d.target_line == f.line && covers(&d.rule, f.rule) {
                d.used = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}

/// Reports directives that suppressed nothing across all passes as
/// `directive::unused-allow` warnings.
pub fn stale(directives: &[Directive], file: &str, lines: &[&str]) -> Vec<Finding> {
    directives
        .iter()
        .filter(|d| !d.used)
        .map(|d| Finding {
            rule: "directive::unused-allow",
            file: file.to_string(),
            line: d.comment_line,
            snippet: snippet_at(lines, d.comment_line),
            severity: Severity::Warn,
            message: format!(
                "directive for `{}` suppresses nothing (targets line {})",
                d.rule, d.target_line
            ),
        })
        .collect()
}

/// Applies directives to findings in one shot: [`suppress`] followed by
/// [`stale`]. Single-pass callers (per-file linting) use this.
pub fn apply(
    directives: &mut [Directive],
    findings: Vec<Finding>,
    file: &str,
    lines: &[&str],
) -> (Vec<Finding>, usize) {
    let (mut kept, suppressed) = suppress(directives, findings);
    kept.extend(stale(directives, file, lines));
    (kept, suppressed)
}

/// The trimmed source line at 1-based `line` (empty if out of range).
pub fn snippet_at(lines: &[&str], line: u32) -> String {
    lines
        .get((line as usize).saturating_sub(1))
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    #[test]
    fn parses_rule_and_reason() {
        assert_eq!(
            parse_args("(panic::unwrap, documented invariant)"),
            Some(("panic::unwrap".into(), "documented invariant".into()))
        );
        assert_eq!(parse_args("(panic::unwrap)"), None);
        assert_eq!(parse_args("(panic::unwrap, )"), None);
        assert_eq!(parse_args("panic::unwrap, x"), None);
    }

    #[test]
    fn family_coverage() {
        assert!(covers("panic", "panic::unwrap"));
        assert!(covers("panic::unwrap", "panic::unwrap"));
        assert!(!covers("panic::unwrap", "panic::expect"));
        assert!(!covers("pan", "panic::unwrap"));
    }

    #[test]
    fn trailing_comment_targets_its_own_line() {
        let src = "let x = 1; // hevlint::allow(panic::unwrap, trailing)\nlet y;\n";
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let d = parse(&out.comments, &out.tokens, "f.rs", &lines, |_| true);
        assert_eq!(d.directives.len(), 1);
        assert_eq!(d.directives[0].target_line, 1);
    }

    #[test]
    fn standalone_comment_targets_next_code_line() {
        let src = "// hevlint::allow(panic::unwrap, below)\n\nlet y = 1;\n";
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let d = parse(&out.comments, &out.tokens, "f.rs", &lines, |_| true);
        assert_eq!(d.directives[0].target_line, 3);
    }
}
