//! Finding type plus JSON and human renderers.
//!
//! JSON is emitted by hand (no serde): the schema is four strings and a
//! number per finding, and hand-rolling keeps the linter dependency-free
//! so it builds before anything else in a cold workspace.

use std::fmt::Write as _;

/// How a rule's findings are treated by default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory: reported, but only fails the run under `--deny-all`.
    Warn,
    /// Violation: always fails the run.
    Deny,
}

impl Severity {
    /// Stable lowercase name used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id, e.g. `panic::unwrap`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Effective severity.
    pub severity: Severity,
    /// One-sentence explanation of the violation.
    pub message: String,
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders findings as a JSON array (stable field order, sorted input
/// expected). This is the payload golden tests pin exactly.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (k, f) in findings.iter().enumerate() {
        if k > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\":\"");
        json_escape(f.rule, &mut out);
        out.push_str("\",\"file\":\"");
        json_escape(&f.file, &mut out);
        let _ = write!(out, "\",\"line\":{},\"snippet\":\"", f.line);
        json_escape(&f.snippet, &mut out);
        out.push_str("\",\"severity\":\"");
        out.push_str(f.severity.as_str());
        out.push_str("\",\"message\":\"");
        json_escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

/// Renders the full machine-readable report (findings + summary).
/// Version 2 adds the workspace-crate count and the count of findings
/// absorbed by the loaded baseline to the summary block.
pub fn report_to_json(report: &crate::Report) -> String {
    let mut out = String::from("{\"version\":2,\"findings\":");
    out.push_str(&findings_to_json(&report.findings));
    let _ = write!(
        out,
        ",\"summary\":{{\"files_scanned\":{},\"crates\":{},\"findings\":{},\"suppressed\":{},\"baseline_suppressed\":{}}}}}",
        report.files_scanned,
        report.crates,
        report.findings.len(),
        report.suppressed,
        report.baseline_suppressed
    );
    out
}

/// Renders findings as human-readable `file:line` lines.
pub fn findings_to_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}:{}: [{}] {} ({})\n    {}",
            f.file,
            f.line,
            f.severity.as_str(),
            f.message,
            f.rule,
            f.snippet
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shapes() {
        let f = Finding {
            rule: "hygiene::print",
            file: "a/b.rs".into(),
            line: 3,
            snippet: "println!(\"x\\t\");".into(),
            severity: Severity::Deny,
            message: "no prints".into(),
        };
        let j = findings_to_json(&[f]);
        assert!(j.contains("\"rule\":\"hygiene::print\""));
        assert!(j.contains("\\\"x\\\\t\\\""));
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn report_wraps_summary() {
        let r = crate::Report {
            files_scanned: 12,
            crates: 9,
            suppressed: 3,
            baseline_suppressed: 2,
            ..crate::Report::default()
        };
        let j = report_to_json(&r);
        assert!(j.contains("\"version\":2"));
        assert!(j.contains("\"files_scanned\":12"));
        assert!(j.contains("\"crates\":9"));
        assert!(j.contains("\"suppressed\":3"));
        assert!(j.contains("\"baseline_suppressed\":2"));
    }
}
