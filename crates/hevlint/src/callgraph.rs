//! A name-based intra-workspace call-graph approximation, powering
//! `panic::reachable-from-serve` and `determinism::taint`.
//!
//! Nodes are the `fn` items the parser extracted; edges are name
//! matches between call sites and definitions:
//!
//! - `foo(…)` (unqualified) matches every workspace fn named `foo`;
//! - `.foo(…)` (method position) matches every fn named `foo`;
//! - `Type::foo(…)` matches fns named `foo` defined in an
//!   `impl Type` block, or free fns named `foo` whose defining file's
//!   stem is `Type` (module-qualified calls like `ladder::decide`);
//!   `Self::foo` and `self::foo` match like the unqualified form.
//!
//! This is an **over-approximation** (same-name fns on unrelated types
//! merge; dead branches count) chosen so that reachability never
//! misses a real path, and an **under-approximation** in exactly three
//! known ways (documented in DESIGN.md): calls through function
//! pointers/closures passed as values, calls hidden behind macro
//! expansion, and trait-object dispatch where the call is written on
//! the trait but the panic lives in an impl whose name differs.

use crate::diagnostics::{Finding, Severity};
use crate::lexer::{Token, TokenKind};
use crate::parser::{is_non_call_keyword, FnItem};
use crate::rules::Role;
use std::collections::{BTreeMap, BTreeSet};

/// One function node of the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Workspace-relative file the fn is defined in.
    pub file: String,
    /// File stem (`ladder` for `…/ladder.rs`), for module-qualified
    /// call matching.
    pub file_stem: String,
    /// The parsed item.
    pub item: FnItem,
    /// Role of the defining file.
    pub role: Role,
    /// Crate name of the defining file.
    pub crate_name: String,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// Panic-capable sites inside the body.
    pub panics: Vec<PanicSite>,
    /// Determinism-source kinds found in the body (empty = no source).
    pub sources: Vec<&'static str>,
}

/// One call site inside a fn body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called name.
    pub name: String,
    /// `Type::`/`module::` qualifier, when present (never `Self`).
    pub qualifier: Option<String>,
    /// 1-based line.
    pub line: u32,
}

/// One potentially panicking site inside a fn body.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What the site is (`.unwrap()`, `panic!`, `indexing`, …).
    pub what: &'static str,
    /// 1-based line.
    pub line: u32,
    /// True for slice-indexing sites (reported at depth ≤ 1 only —
    /// see [`Graph::reachability_findings`]).
    pub indexing: bool,
}

/// The assembled workspace call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All fn nodes, in file-then-source order (deterministic).
    pub nodes: Vec<FnNode>,
    /// name → node indices defining that name.
    by_name: BTreeMap<String, Vec<usize>>,
}

/// Wall-clock / entropy source identifiers (mirrors the local
/// `determinism::wall-clock` rule).
const CLOCK_SOURCES: &[&str] = &["Instant", "SystemTime", "thread_rng", "from_entropy"];

/// Extracts call sites, panic sites, and determinism sources from one
/// fn body. `amask` marks attribute tokens (indexing rule).
pub fn scan_body(
    tokens: &[Token],
    body: std::ops::Range<usize>,
    amask: &[bool],
) -> (Vec<CallSite>, Vec<PanicSite>, Vec<&'static str>) {
    let mut calls = Vec::new();
    let mut panics = Vec::new();
    let mut sources: BTreeSet<&'static str> = BTreeSet::new();
    for i in body.clone() {
        let Some(t) = tokens.get(i) else { break };
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(i + 1);
        match &t.kind {
            TokenKind::Ident(name) => {
                let followed_by_bang = next.is_some_and(|n| n.kind == TokenKind::Not);
                match name.as_str() {
                    "unwrap" | "expect"
                        if prev.is_some_and(|p| p.kind == TokenKind::Dot)
                            && next.is_some_and(|n| n.kind == TokenKind::LParen) =>
                    {
                        panics.push(PanicSite {
                            what: if name == "unwrap" {
                                ".unwrap()"
                            } else {
                                ".expect()"
                            },
                            line: t.line,
                            indexing: false,
                        });
                    }
                    "panic" | "unreachable" if followed_by_bang => {
                        panics.push(PanicSite {
                            what: if name == "panic" {
                                "panic!"
                            } else {
                                "unreachable!"
                            },
                            line: t.line,
                            indexing: false,
                        });
                    }
                    n if CLOCK_SOURCES.contains(&n) => {
                        sources.insert("wall-clock/entropy");
                    }
                    "env"
                        if next.is_some_and(|n| {
                            n.kind == TokenKind::PathSep || n.kind == TokenKind::Not
                        }) =>
                    {
                        sources.insert("environment");
                    }
                    "option_env" if followed_by_bang => {
                        sources.insert("environment");
                    }
                    "HashMap" | "HashSet" => {
                        sources.insert("hash-iteration");
                    }
                    _ => {}
                }
                // Call extraction: `name(` that is not a macro, a
                // declaration, or a control keyword.
                if next.is_some_and(|n| n.kind == TokenKind::LParen)
                    && !is_non_call_keyword(name)
                    && !prev.is_some_and(|p| p.kind.is_ident("fn"))
                {
                    let qualifier = match prev.map(|p| &p.kind) {
                        Some(TokenKind::PathSep) => i
                            .checked_sub(2)
                            .and_then(|q| tokens.get(q))
                            .and_then(|q| q.kind.ident())
                            .filter(|q| *q != "Self" && *q != "self")
                            .map(|q| q.to_string()),
                        _ => None,
                    };
                    calls.push(CallSite {
                        name: name.clone(),
                        qualifier,
                        line: t.line,
                    });
                }
            }
            // Slice indexing: `expr[` outside attributes.
            TokenKind::LBracket if !amask.get(i).copied().unwrap_or(false) => {
                let indexes = prev.is_some_and(|p| match &p.kind {
                    // `for x in [..]`, `return [..]` etc. are array
                    // literals, not indexing.
                    TokenKind::Ident(w) => !is_non_call_keyword(w),
                    TokenKind::RParen | TokenKind::RBracket | TokenKind::Question => true,
                    _ => false,
                });
                // A constant-literal index into a fixed-size array
                // (`rungs[3]`) is statically checkable and reviewed at
                // the site; only computed indices can be driven by
                // hostile input.
                let const_index =
                    matches!(tokens.get(i + 1).map(|n| &n.kind), Some(TokenKind::Int))
                        && matches!(
                            tokens.get(i + 2).map(|n| &n.kind),
                            Some(TokenKind::RBracket)
                        );
                // `vec![`-style macro brackets are preceded by `!`.
                if indexes && !const_index {
                    panics.push(PanicSite {
                        what: "indexing",
                        line: t.line,
                        indexing: true,
                    });
                }
            }
            _ => {}
        }
    }
    (calls, panics, sources.into_iter().collect())
}

impl Graph {
    /// Adds a file's fns to the graph.
    pub fn add_file(
        &mut self,
        rel_path: &str,
        crate_name: &str,
        role: Role,
        fns: &[FnItem],
        tokens: &[Token],
        amask: &[bool],
    ) {
        let stem = std::path::Path::new(rel_path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("")
            .to_string();
        for f in fns {
            if f.in_test {
                continue;
            }
            let (calls, panics, sources) = scan_body(tokens, f.body.clone(), amask);
            let idx = self.nodes.len();
            self.by_name.entry(f.name.clone()).or_default().push(idx);
            self.nodes.push(FnNode {
                file: rel_path.to_string(),
                file_stem: stem.clone(),
                item: f.clone(),
                role,
                crate_name: crate_name.to_string(),
                calls,
                panics,
                sources,
            });
        }
    }

    /// Node indices a call site from `caller` can resolve to.
    ///
    /// Name matches are narrowed shadowing-style: definitions in the
    /// caller's own file win over definitions in the caller's crate,
    /// which win over the rest of the workspace. Without this, every
    /// `parse(…)` in the workspace would edge into every other crate's
    /// private `parse` helper and drown the reachability/taint rules
    /// in cross-crate name collisions.
    fn resolve_from(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let filtered: Vec<usize> = match &call.qualifier {
            None => cands.clone(),
            Some(q) => cands
                .iter()
                .copied()
                .filter(|&i| {
                    let n = &self.nodes[i];
                    n.item.impl_type.as_deref() == Some(q.as_str())
                        || (n.item.impl_type.is_none() && n.file_stem == *q)
                })
                .collect(),
        };
        let same = |pick: &dyn Fn(&FnNode) -> &str| -> Vec<usize> {
            filtered
                .iter()
                .copied()
                .filter(|&i| pick(&self.nodes[i]) == pick(&self.nodes[caller]))
                .collect()
        };
        let same_file = same(&|n: &FnNode| n.file.as_str());
        if !same_file.is_empty() {
            return same_file;
        }
        let same_crate = same(&|n: &FnNode| n.crate_name.as_str());
        if !same_crate.is_empty() {
            return same_crate;
        }
        filtered
    }

    /// Deterministic BFS from `entries` (node indices), up to `hops`
    /// edges deep. Returns `(dist, parent)` per node (`u32::MAX` =
    /// unreachable).
    fn bfs(&self, entries: &[usize], hops: u32) -> (Vec<u32>, Vec<usize>) {
        let mut dist = vec![u32::MAX; self.nodes.len()];
        let mut parent = vec![usize::MAX; self.nodes.len()];
        let mut frontier: Vec<usize> = entries.to_vec();
        for &e in entries {
            dist[e] = 0;
        }
        let mut d = 0u32;
        while !frontier.is_empty() && d < hops {
            d += 1;
            let mut next = Vec::new();
            for &n in &frontier {
                for call in &self.nodes[n].calls {
                    for target in self.resolve_from(n, call) {
                        if dist[target] == u32::MAX {
                            dist[target] = d;
                            parent[target] = n;
                            next.push(target);
                        }
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }
        (dist, parent)
    }

    /// Human-readable qualified name of a node.
    fn qualified(&self, i: usize) -> String {
        match &self.nodes[i].item.impl_type {
            Some(t) => format!("{t}::{}", self.nodes[i].item.name),
            None => self.nodes[i].item.name.clone(),
        }
    }

    /// The entry → … → node call path, as `a → b → c`.
    fn path_to(&self, i: usize, parent: &[usize]) -> String {
        let mut chain = vec![i];
        let mut cur = i;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            chain.push(cur);
        }
        chain.reverse();
        chain
            .iter()
            .map(|&n| self.qualified(n))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// `panic::reachable-from-serve`: every panic site in a fn within
    /// `hops` call-graph edges of a hev-serve library fn. Slice
    /// indexing — far noisier and usually bounds-proven in hot loops —
    /// is only reported inside hev-serve entry fns themselves
    /// (depth 0); unwrap/expect/panic!/unreachable! follow the full
    /// hop budget.
    pub fn reachability_findings(
        &self,
        hops: u32,
        snippet: impl Fn(&str, u32) -> String,
    ) -> Vec<Finding> {
        let entries: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.crate_name == "hev-serve" && n.role == Role::Library)
            .map(|(i, _)| i)
            .collect();
        if entries.is_empty() {
            return Vec::new();
        }
        let (dist, parent) = self.bfs(&entries, hops);
        let mut seen: BTreeSet<(String, u32, &'static str)> = BTreeSet::new();
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if dist[i] == u32::MAX {
                continue;
            }
            // Harness-role fns are allowed to panic (consistent with
            // the local `panic::*` rules): a path that crosses into
            // the bench/driver layer is that layer's responsibility.
            if node.role != Role::Library {
                continue;
            }
            for p in &node.panics {
                if p.indexing && dist[i] > 0 {
                    continue;
                }
                if !seen.insert((node.file.clone(), p.line, p.what)) {
                    continue;
                }
                let via = if dist[i] == 0 {
                    format!("in hev-serve entry `{}`", self.qualified(i))
                } else {
                    format!(
                        "{} hop(s) from a hev-serve entry: {}",
                        dist[i],
                        self.path_to(i, &parent)
                    )
                };
                out.push(Finding {
                    rule: "panic::reachable-from-serve",
                    file: node.file.clone(),
                    line: p.line,
                    snippet: snippet(&node.file, p.line),
                    severity: Severity::Deny,
                    message: format!(
                        "{} can panic on hostile input and is {via}; degrade through a typed error or justify the invariant",
                        p.what
                    ),
                });
            }
        }
        out
    }

    /// `determinism::taint`: a library-role fn calling (≤ 2 hops) a fn
    /// whose body holds a wall-clock/entropy/environment/hash source.
    /// Reported at the call site in the library fn; fns that are
    /// themselves sources are already covered by the local rules.
    pub fn taint_findings(&self, snippet: impl Fn(&str, u32) -> String) -> Vec<Finding> {
        // tainted[i] = Some(source description) when node i is a
        // source (depth 0) or calls one within 1 hop — so a library
        // caller of `tainted` is within 2 hops of the source.
        let mut taint: Vec<Option<String>> = self
            .nodes
            .iter()
            .map(|n| (!n.sources.is_empty()).then(|| format!("reads {}", n.sources.join("+"))))
            .collect();
        // One propagation step: a fn calling a source is tainted too.
        let step: Vec<Option<String>> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if taint[i].is_some() {
                    return taint[i].clone();
                }
                for call in &n.calls {
                    for t in self.resolve_from(i, call) {
                        if let Some(src) = &taint[t] {
                            return Some(format!("{src} via `{}`", self.qualified(t)));
                        }
                    }
                }
                None
            })
            .collect();
        taint = step;
        let mut out = Vec::new();
        let mut seen: BTreeSet<(String, u32)> = BTreeSet::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.role != Role::Library || !node.sources.is_empty() {
                continue;
            }
            for call in &node.calls {
                for t in self.resolve_from(i, call) {
                    let Some(src) = &taint[t] else { continue };
                    if !seen.insert((node.file.clone(), call.line)) {
                        continue;
                    }
                    out.push(Finding {
                        rule: "determinism::taint",
                        file: node.file.clone(),
                        line: call.line,
                        snippet: snippet(&node.file, call.line),
                        severity: Severity::Deny,
                        message: format!(
                            "library fn `{}` calls `{}`, which {}; nondeterminism must not leak out of the harness role",
                            self.qualified_of(node),
                            call.name,
                            src
                        ),
                    });
                }
            }
        }
        out
    }

    fn qualified_of(&self, n: &FnNode) -> String {
        match &n.item.impl_type {
            Some(t) => format!("{t}::{}", n.item.name),
            None => n.item.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;
    use crate::parser::parse_items;
    use crate::rules::{attr_mask, test_mask};

    fn add(g: &mut Graph, path: &str, crate_name: &str, role: Role, src: &str) {
        let out = lexer::lex(src);
        let mask = test_mask(&out.tokens);
        let amask = attr_mask(&out.tokens);
        let items = parse_items(&out.tokens, &out.comments, &mask);
        g.add_file(path, crate_name, role, &items.fns, &out.tokens, &amask);
    }

    #[test]
    fn two_hop_panic_is_reachable_and_three_hop_is_not() {
        let mut g = Graph::default();
        add(
            &mut g,
            "crates/hev-serve/src/service.rs",
            "hev-serve",
            Role::Library,
            "pub fn handle() { middle(); }\n",
        );
        add(
            &mut g,
            "crates/core/src/a.rs",
            "hev-control",
            Role::Library,
            "pub fn middle() { deep(); }\npub fn deep() { deeper(); x.unwrap(); }\npub fn deeper() { y.unwrap(); }\n",
        );
        let f = g.reachability_findings(2, |_, _| String::new());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("2 hop(s)"));
        assert!(f[0].message.contains("handle → middle → deep"));
        let f3 = g.reachability_findings(3, |_, _| String::new());
        assert_eq!(f3.len(), 2);
    }

    #[test]
    fn indexing_reported_only_in_entry_fns() {
        let mut g = Graph::default();
        add(
            &mut g,
            "crates/hev-serve/src/wire.rs",
            "hev-serve",
            Role::Library,
            "pub fn parse(b: &[u8], i: usize) { let x = b[i]; helper(b, i); }\n",
        );
        add(
            &mut g,
            "crates/core/src/h.rs",
            "hev-control",
            Role::Library,
            "pub fn helper(b: &[u8], i: usize) { let y = b[i]; }\n",
        );
        let f = g.reachability_findings(2, |_, _| String::new());
        assert_eq!(f.len(), 1, "only the entry-fn indexing fires: {f:?}");
        assert_eq!(f[0].file, "crates/hev-serve/src/wire.rs");
    }

    #[test]
    fn qualified_calls_respect_impl_type_and_module_stem() {
        let mut g = Graph::default();
        add(
            &mut g,
            "crates/hev-serve/src/session.rs",
            "hev-serve",
            Role::Library,
            "impl Session { pub fn process(&self) { ladder::decide(); Other::make(); } }\n",
        );
        add(
            &mut g,
            "crates/hev-serve/src/ladder.rs",
            "hev-serve",
            Role::Library,
            "pub fn decide() { a.unwrap(); }\n",
        );
        add(
            &mut g,
            "crates/core/src/other.rs",
            "hev-control",
            Role::Library,
            "impl Wrong { pub fn make() { b.unwrap(); } }\n",
        );
        let f = g.reachability_findings(2, |_, _| String::new());
        // decide's unwrap fires (module-stem match); Wrong::make does
        // not (qualifier `Other` ≠ impl type `Wrong`). decide is also
        // an entry itself, so its unwrap is at depth 0 of another
        // entry — still exactly one finding per site.
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, "crates/hev-serve/src/ladder.rs");
    }

    #[test]
    fn taint_propagates_two_hops_into_library_code() {
        let mut g = Graph::default();
        add(
            &mut g,
            "crates/bench/src/timing.rs",
            "hev-bench",
            Role::Harness,
            "pub fn now_ms() -> u64 { Instant::now(); 0 }\npub fn wrapper() -> u64 { now_ms() }\n",
        );
        add(
            &mut g,
            "crates/hev-model/src/battery.rs",
            "hev-model",
            Role::Library,
            "pub fn step() { let t = wrapper(); }\n",
        );
        let f = g.taint_findings(|_, _| String::new());
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wall-clock"));
        assert_eq!(f[0].file, "crates/hev-model/src/battery.rs");
    }

    #[test]
    fn harness_callers_are_not_tainted() {
        let mut g = Graph::default();
        add(
            &mut g,
            "crates/bench/src/timing.rs",
            "hev-bench",
            Role::Harness,
            "pub fn now_ms() -> u64 { Instant::now(); 0 }\npub fn report() { now_ms(); }\n",
        );
        assert!(g.taint_findings(|_, _| String::new()).is_empty());
    }
}
