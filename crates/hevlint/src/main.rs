//! CLI for the workspace linter.
//!
//! ```text
//! hevlint [--root PATH] [--format human|json] [--deny-all]
//!         [--strict-indexing] [--reach-hops N] [--baseline PATH]
//!         [--list-rules] [--explain RULE]
//! ```
//!
//! Exit codes: 0 clean, 1 findings at the enforced level, 2 usage or
//! I/O error. `--deny-all` also fails on warn-level findings (CI mode);
//! the default only fails on deny-level findings.
//!
//! `--baseline PATH` suppresses findings recorded in the baseline file;
//! with `HEVLINT_BLESS=1` the file is regenerated from the current
//! findings instead. `--explain RULE` prints the rationale, a failing
//! example, and the expected fix for one rule.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hevlint::baseline::{self, Baseline};
use hevlint::diagnostics::{findings_to_human, report_to_json, Severity};
use hevlint::rules::{explain, RULES};
use hevlint::{lint_workspace, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hevlint [--root PATH] [--format human|json] [--deny-all] [--strict-indexing] [--reach-hops N] [--baseline PATH] [--list-rules] [--explain RULE]";

struct Args {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    strict_indexing: bool,
    reach_hops: u32,
    baseline: Option<PathBuf>,
    list_rules: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        strict_indexing: false,
        reach_hops: Options::default().reach_hops,
        baseline: None,
        list_rules: false,
        explain: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                _ => return Err("--format needs `human` or `json`".to_string()),
            },
            "--deny-all" => args.deny_all = true,
            "--strict-indexing" => args.strict_indexing = true,
            "--reach-hops" => {
                let v = it.next().ok_or("--reach-hops needs a number")?;
                args.reach_hops = v
                    .parse()
                    .map_err(|_| format!("--reach-hops: `{v}` is not a number"))?;
            }
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                args.baseline = Some(PathBuf::from(v));
            }
            "--list-rules" => args.list_rules = true,
            "--explain" => {
                let v = it.next().ok_or("--explain needs a rule id")?;
                args.explain = Some(v);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("hevlint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            let opt = if r.opt_in { " (opt-in)" } else { "" };
            println!("{:<34} {:<5}{} {}", r.id, r.severity.as_str(), opt, r.desc);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(rule) = &args.explain {
        let Some(e) = explain(rule) else {
            eprintln!("hevlint: unknown rule `{rule}` (see --list-rules)");
            return ExitCode::from(2);
        };
        println!("{rule}\n");
        println!("{}\n", e.rationale);
        println!("Example (fails):\n{}", indent(e.example));
        println!("Fix:\n{}", indent(e.fix));
        return ExitCode::SUCCESS;
    }

    let opts = Options {
        strict_indexing: args.strict_indexing,
        reach_hops: args.reach_hops,
    };
    let mut report = lint_workspace(&args.root, &opts);

    if let Some(path) = &args.baseline {
        let bless = std::env::var("HEVLINT_BLESS")
            .map(|v| v == "1")
            .unwrap_or(false);
        if bless {
            let json = baseline::to_json(&report.findings);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("hevlint: cannot write baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "hevlint: blessed {} finding(s) into {}",
                report.findings.len(),
                path.display()
            );
            report.baseline_suppressed = report.findings.len();
            report.findings.clear();
        } else {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hevlint: cannot read baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let b = match Baseline::parse(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("hevlint: bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let (kept, suppressed, stale) = b.apply(std::mem::take(&mut report.findings));
            report.findings = kept;
            report.baseline_suppressed = suppressed;
            if stale > 0 {
                eprintln!(
                    "hevlint: {stale} stale baseline entr{} in {} (re-bless with HEVLINT_BLESS=1)",
                    if stale == 1 { "y" } else { "ies" },
                    path.display()
                );
            }
        }
    }

    if args.json {
        println!("{}", report_to_json(&report));
    } else {
        print!("{}", findings_to_human(&report.findings));
    }

    let denials = report.has_denials();
    let warns = report.findings.iter().any(|f| f.severity == Severity::Warn);
    eprintln!(
        "hevlint: {} file(s) scanned across {} crate(s), {} finding(s), {} suppressed by allow directives, {} by baseline",
        report.files_scanned,
        report.crates,
        report.findings.len(),
        report.suppressed,
        report.baseline_suppressed
    );
    if denials || (args.deny_all && warns) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Indents every line of `s` by four spaces for the --explain blocks.
fn indent(s: &str) -> String {
    s.lines().map(|l| format!("    {l}\n")).collect::<String>()
}
