//! CLI for the workspace linter.
//!
//! ```text
//! hevlint [--root PATH] [--format human|json] [--deny-all]
//!         [--strict-indexing] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 findings at the enforced level, 2 usage or
//! I/O error. `--deny-all` also fails on warn-level findings (CI mode);
//! the default only fails on deny-level findings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hevlint::diagnostics::{findings_to_human, report_to_json, Severity};
use hevlint::rules::RULES;
use hevlint::{lint_workspace, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: hevlint [--root PATH] [--format human|json] [--deny-all] [--strict-indexing] [--list-rules]";

struct Args {
    root: PathBuf,
    json: bool,
    deny_all: bool,
    strict_indexing: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        json: false,
        deny_all: false,
        strict_indexing: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = PathBuf::from(v);
            }
            "--format" => match it.next().as_deref() {
                Some("human") => args.json = false,
                Some("json") => args.json = true,
                _ => return Err("--format needs `human` or `json`".to_string()),
            },
            "--deny-all" => args.deny_all = true,
            "--strict-indexing" => args.strict_indexing = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("hevlint: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for r in RULES {
            let opt = if r.opt_in { " (opt-in)" } else { "" };
            println!("{:<34} {:<5}{} {}", r.id, r.severity.as_str(), opt, r.desc);
        }
        return ExitCode::SUCCESS;
    }

    let opts = Options {
        strict_indexing: args.strict_indexing,
    };
    let report = lint_workspace(&args.root, &opts);

    if args.json {
        println!(
            "{}",
            report_to_json(&report.findings, report.files_scanned, report.suppressed)
        );
    } else {
        print!("{}", findings_to_human(&report.findings));
    }

    let denials = report.has_denials();
    let warns = report.findings.iter().any(|f| f.severity == Severity::Warn);
    eprintln!(
        "hevlint: {} file(s) scanned, {} finding(s), {} suppressed by allow directives",
        report.files_scanned,
        report.findings.len(),
        report.suppressed
    );
    if denials || (args.deny_all && warns) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
