//! Rule registry and the token-stream checks for every rule family.
//!
//! Rules operate on the flat token stream from [`crate::lexer`], so they
//! are *lexical*: deliberately narrow patterns with near-zero false
//! positives rather than full type-aware analysis. Each rule documents
//! exactly what it matches; what a lexical pass cannot see (e.g. `a == b`
//! on two `f64` variables) is out of scope and noted in DESIGN.md.

use crate::diagnostics::{Finding, Severity};
use crate::directives::snippet_at;
use crate::lexer::{Token, TokenKind};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code: every rule applies.
    Library,
    /// The allowlisted harness/bench/tooling timing layer: wall-clock,
    /// environment reads, and report printing are part of the job here,
    /// so the `determinism::wall-clock`, `determinism::env-read`, and
    /// `hygiene::print` rules are waived. All other rules still apply.
    Harness,
}

/// Per-file context a lint pass needs.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Library or harness role (derived from the path).
    pub role: Role,
    /// True for `src/lib.rs` crate roots (headers rule).
    pub is_crate_root: bool,
    /// Lint `panic::indexing` too (opt-in; see [`RULES`]).
    pub strict_indexing: bool,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id, `family::name`.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// True when the rule only runs under an opt-in flag.
    pub opt_in: bool,
    /// One-line description for `--list-rules` and docs.
    pub desc: &'static str,
}

/// Every rule the linter knows, in stable order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism::hash-collection",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no HashMap/HashSet: iteration order depends on hasher state; use BTreeMap/BTreeSet or sorted iteration",
    },
    RuleInfo {
        id: "determinism::wall-clock",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no Instant/SystemTime/thread_rng/from_entropy outside the harness/bench timing layer",
    },
    RuleInfo {
        id: "determinism::env-read",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no std::env reads (env::var, env!, option_env!) outside the harness/bench layer",
    },
    RuleInfo {
        id: "panic::unwrap",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no .unwrap() in library non-test code; propagate a typed error or document the invariant",
    },
    RuleInfo {
        id: "panic::expect",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no .expect() in library non-test code; propagate a typed error or document the invariant",
    },
    RuleInfo {
        id: "panic::macro",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no panic!/unreachable! in library non-test code (assert! is allowed: it states an invariant)",
    },
    RuleInfo {
        id: "panic::indexing",
        severity: Severity::Deny,
        opt_in: true,
        desc: "(opt-in: --strict-indexing) no bracket indexing/slicing; use .get()/.get_mut()",
    },
    RuleInfo {
        id: "float::eq",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no ==/!= against a float literal; compare with a tolerance or justify the exact sentinel",
    },
    RuleInfo {
        id: "float::lossy-cast",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no `as f32`, float-literal `as <int>`, or .ceil()/.floor()/.round()/.trunc() `as <int>`",
    },
    RuleInfo {
        id: "hygiene::print",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no print!/println!/eprint!/eprintln! in library code (harness/report layer is exempt)",
    },
    RuleInfo {
        id: "hygiene::dbg",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no dbg! anywhere",
    },
    RuleInfo {
        id: "hygiene::todo",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no todo!/unimplemented! in committed code",
    },
    RuleInfo {
        id: "headers::crate-lints",
        severity: Severity::Deny,
        opt_in: false,
        desc: "crate roots (src/lib.rs) must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
    },
    RuleInfo {
        id: "directive::malformed",
        severity: Severity::Deny,
        opt_in: false,
        desc: "a hevlint::allow directive must parse as (rule, reason) with a non-empty reason",
    },
    RuleInfo {
        id: "directive::unknown-rule",
        severity: Severity::Deny,
        opt_in: false,
        desc: "a hevlint::allow directive must name an existing rule or rule family",
    },
    RuleInfo {
        id: "directive::unused-allow",
        severity: Severity::Warn,
        opt_in: false,
        desc: "a hevlint::allow directive that suppresses nothing is stale and must be removed",
    },
];

/// True when `name` is a rule id or a family prefix of one.
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| {
        r.id == name
            || r.id
                .strip_prefix(name)
                .is_some_and(|rest| rest.starts_with("::"))
    })
}

/// Integer types for the lossy-cast rule.
const INT_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Float methods whose integer cast the lossy-cast rule flags.
const TRUNCATING_METHODS: &[&str] = &["ceil", "floor", "round", "trunc"];

/// Marks, per token, whether it is inside test-gated code: an item under
/// `#[cfg(test)]` / `#[cfg(any(.., test, ..))]` or a `#[test]` function.
/// The item is skipped up to its matching close brace (or `;` for
/// brace-less items such as gated `use` statements).
fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Pound
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::LBracket)
        {
            // Scan the attribute's bracket group.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::LBracket => depth += 1,
                    TokenKind::RBracket => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k if k.is_ident("test") => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Skip the gated item: everything up to the matching `}`
                // of its first brace group, or a top-level `;`.
                let mut k = j + 1;
                let mut brace = 0usize;
                while k < tokens.len() {
                    mask[k] = true;
                    match tokens[k].kind {
                        TokenKind::LBrace => brace += 1,
                        TokenKind::RBrace => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        TokenKind::Semi if brace == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(j + 1).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Marks tokens inside `#[...]` / `#![...]` attribute groups, so the
/// indexing rule doesn't fire on attribute brackets.
fn attr_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let at_attr = tokens[i].kind == TokenKind::Pound
            && (tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::LBracket)
                || (tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Not)
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| t.kind == TokenKind::LBracket)));
        if at_attr {
            let mut depth = 0usize;
            let mut j = i;
            while j < tokens.len() {
                mask[j] = true;
                match tokens[j].kind {
                    TokenKind::LBracket => depth += 1,
                    TokenKind::RBracket => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Runs every applicable rule over one file's token stream.
pub fn check(tokens: &[Token], ctx: &FileContext, lines: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tmask = test_mask(tokens);
    let amask = attr_mask(tokens);
    let mut push = |rule: &'static str, line: u32, message: String| {
        let severity = RULES
            .iter()
            .find(|r| r.id == rule)
            .map(|r| r.severity)
            .unwrap_or(Severity::Deny);
        findings.push(Finding {
            rule,
            file: ctx.rel_path.clone(),
            line,
            snippet: snippet_at(lines, line),
            severity,
            message,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if tmask[i] {
            continue;
        }
        let next = tokens.get(i + 1);
        let next2 = tokens.get(i + 2);
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        match &t.kind {
            TokenKind::Ident(name) => {
                let followed_by_bang = next.is_some_and(|n| n.kind == TokenKind::Not);
                match name.as_str() {
                    // determinism::hash-collection — any use of the types.
                    "HashMap" | "HashSet" => push(
                        "determinism::hash-collection",
                        t.line,
                        format!("`{name}` has hasher-dependent iteration order; use the BTree equivalent or sorted iteration"),
                    ),
                    // determinism::wall-clock — outside the harness layer.
                    "Instant" | "SystemTime" | "thread_rng" | "from_entropy"
                        if ctx.role == Role::Library =>
                    {
                        push(
                            "determinism::wall-clock",
                            t.line,
                            format!("`{name}` introduces wall-clock/entropy state outside the harness timing layer"),
                        )
                    }
                    // determinism::env-read — `env::…`, `env!`, `option_env!`.
                    "env" if ctx.role == Role::Library
                        && next.is_some_and(|n| {
                            n.kind == TokenKind::PathSep || n.kind == TokenKind::Not
                        }) =>
                    {
                        push(
                            "determinism::env-read",
                            t.line,
                            "environment reads make runs host-dependent; thread configuration through explicit parameters".to_string(),
                        )
                    }
                    "option_env" if ctx.role == Role::Library && followed_by_bang => push(
                        "determinism::env-read",
                        t.line,
                        "environment reads make runs host-dependent; thread configuration through explicit parameters".to_string(),
                    ),
                    // panic::unwrap / panic::expect — method position only.
                    "unwrap" | "expect"
                        if prev.is_some_and(|p| p.kind == TokenKind::Dot)
                            && next.is_some_and(|n| n.kind == TokenKind::LParen) =>
                    {
                        let rule: &'static str = if name == "unwrap" {
                            "panic::unwrap"
                        } else {
                            "panic::expect"
                        };
                        push(
                            rule,
                            t.line,
                            format!("`.{name}()` can panic; return a typed error or justify the invariant with an allow directive"),
                        )
                    }
                    "panic" | "unreachable" if followed_by_bang => push(
                        "panic::macro",
                        t.line,
                        format!("`{name}!` aborts the episode; degrade through a typed error path instead"),
                    ),
                    "todo" | "unimplemented" if followed_by_bang => push(
                        "hygiene::todo",
                        t.line,
                        format!("`{name}!` must not reach committed code"),
                    ),
                    "dbg" if followed_by_bang => push(
                        "hygiene::dbg",
                        t.line,
                        "`dbg!` is a debugging leftover".to_string(),
                    ),
                    "print" | "println" | "eprint" | "eprintln"
                        if ctx.role == Role::Library && followed_by_bang =>
                    {
                        push(
                            "hygiene::print",
                            t.line,
                            format!("`{name}!` in library code; route output through the caller or the report layer"),
                        )
                    }
                    // float::lossy-cast — `as f32` and float-literal casts.
                    "as" => {
                        if next.is_some_and(|n| n.kind.is_ident("f32")) {
                            push(
                                "float::lossy-cast",
                                t.line,
                                "`as f32` silently halves precision in physics code".to_string(),
                            );
                        } else if let Some(n) = next {
                            let to_int =
                                n.kind.ident().is_some_and(|id| INT_TYPES.contains(&id));
                            if to_int && prev.is_some_and(|p| p.kind == TokenKind::Float) {
                                push(
                                    "float::lossy-cast",
                                    t.line,
                                    "float literal cast to an integer truncates; make the rounding explicit".to_string(),
                                );
                            } else if to_int
                                && prev.is_some_and(|p| p.kind == TokenKind::RParen)
                                && i >= 4
                                && tokens.get(i - 2).is_some_and(|t| t.kind == TokenKind::LParen)
                                && tokens.get(i - 3).is_some_and(|t| {
                                    t.kind
                                        .ident()
                                        .is_some_and(|id| TRUNCATING_METHODS.contains(&id))
                                })
                                && tokens.get(i - 4).is_some_and(|t| t.kind == TokenKind::Dot)
                            {
                                push(
                                    "float::lossy-cast",
                                    t.line,
                                    "rounded float cast straight to an integer; saturate or bound the value explicitly".to_string(),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
            // float::eq — a float literal on either side of ==/!=
            // (one unary minus allowed on the right).
            TokenKind::EqEq | TokenKind::Ne => {
                let lhs_float = prev.is_some_and(|p| p.kind == TokenKind::Float);
                let rhs_float = match next {
                    Some(n) if n.kind == TokenKind::Float => true,
                    Some(n) if n.kind == TokenKind::Minus => {
                        next2.is_some_and(|n2| n2.kind == TokenKind::Float)
                    }
                    _ => false,
                };
                if lhs_float || rhs_float {
                    let op = if t.kind == TokenKind::EqEq {
                        "=="
                    } else {
                        "!="
                    };
                    push(
                        "float::eq",
                        t.line,
                        format!("exact `{op}` against a float literal; use a tolerance or justify the sentinel"),
                    );
                }
            }
            // panic::indexing (opt-in) — `expr[...]` outside attributes.
            TokenKind::LBracket if ctx.strict_indexing && !amask[i] => {
                let indexes = prev.is_some_and(|p| {
                    matches!(
                        p.kind,
                        TokenKind::Ident(_)
                            | TokenKind::RParen
                            | TokenKind::RBracket
                            | TokenKind::Question
                    )
                });
                if indexes {
                    push(
                        "panic::indexing",
                        t.line,
                        "bracket indexing can panic on out-of-range; prefer .get()/.get_mut()"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    if ctx.is_crate_root {
        let has = |outer: &str, inner: &str| {
            tokens.windows(6).any(|w| {
                w[0].kind == TokenKind::Pound
                    && w[1].kind == TokenKind::Not
                    && w[2].kind == TokenKind::LBracket
                    && w[3].kind.is_ident(outer)
                    && w[4].kind == TokenKind::LParen
                    && w[5].kind.is_ident(inner)
            })
        };
        if !has("forbid", "unsafe_code") {
            push(
                "headers::crate-lints",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
        if !(has("warn", "missing_docs")
            || has("deny", "missing_docs")
            || has("forbid", "missing_docs"))
        {
            push(
                "headers::crate-lints",
                1,
                "crate root is missing `#![warn(missing_docs)]` (or stricter)".to_string(),
            );
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn lint(src: &str) -> Vec<&'static str> {
        lint_role(src, Role::Library)
    }

    fn lint_role(src: &str, role: Role) -> Vec<&'static str> {
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileContext {
            rel_path: "x.rs".into(),
            role,
            is_crate_root: false,
            strict_indexing: false,
        };
        check(&out.tokens, &ctx, &lines)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_core_patterns() {
        assert_eq!(
            lint("let m: HashMap<u32, f64> = x;"),
            vec!["determinism::hash-collection"]
        );
        assert_eq!(lint("let v = o.unwrap();"), vec!["panic::unwrap"]);
        assert_eq!(lint("let v = o.expect(\"m\");"), vec!["panic::expect"]);
        assert_eq!(lint("panic!(\"boom\")"), vec!["panic::macro"]);
        assert_eq!(lint("if x == 0.5 {}"), vec!["float::eq"]);
        assert_eq!(lint("if x != -0.5 {}"), vec!["float::eq"]);
        assert_eq!(lint("let y = x as f32;"), vec!["float::lossy-cast"]);
        assert_eq!(
            lint("let y = x.ceil() as usize;"),
            vec!["float::lossy-cast"]
        );
        assert_eq!(lint("dbg!(x)"), vec!["hygiene::dbg"]);
        assert_eq!(lint("todo!()"), vec!["hygiene::todo"]);
        assert_eq!(lint("println!(\"x\")"), vec!["hygiene::print"]);
        assert_eq!(
            lint("let t = Instant::now();"),
            vec!["determinism::wall-clock"]
        );
        assert_eq!(
            lint("let v = std::env::var(\"X\");"),
            vec!["determinism::env-read"]
        );
    }

    #[test]
    fn narrow_patterns_do_not_overfire() {
        assert!(lint("let v = o.unwrap_or(0);").is_empty());
        assert!(lint("let v = unwrap(x);").is_empty(), "free fn, not method");
        assert!(
            lint("if a == b {}").is_empty(),
            "no literal, lexically unknowable"
        );
        assert!(lint("let n = 1 + 2;").is_empty());
        assert!(lint("let y = x as f64;").is_empty());
        assert!(
            lint("assert!(x > 0.0);").is_empty(),
            "assert! states an invariant"
        );
        assert!(lint("// HashMap unwrap() panic! in a comment").is_empty());
        assert!(lint("let s = \"panic!\";").is_empty());
    }

    #[test]
    fn harness_role_waives_timing_and_prints() {
        let src = "let t = Instant::now(); println!(\"x\"); let v = std::env::var(\"X\");";
        assert!(lint_role(src, Role::Harness).is_empty());
        // …but not panics or hash collections.
        assert_eq!(
            lint_role("let m = HashMap::new(); x.unwrap();", Role::Harness),
            vec!["determinism::hash-collection", "panic::unwrap"]
        );
    }

    #[test]
    fn test_gated_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(); }\n}\nfn lib() { y.unwrap(); }\n";
        assert_eq!(lint(src), vec!["panic::unwrap"]);
        let src2 = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lint(src2).is_empty());
        let src3 = "#[cfg(test)]\nuse std::collections::HashSet;\nfn lib() {}\n";
        assert!(lint(src3).is_empty());
    }

    #[test]
    fn strict_indexing_is_opt_in() {
        let src = "let v = xs[0];";
        assert!(lint(src).is_empty());
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileContext {
            rel_path: "x.rs".into(),
            role: Role::Library,
            is_crate_root: false,
            strict_indexing: true,
        };
        let rules: Vec<_> = check(&out.tokens, &ctx, &lines)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec!["panic::indexing"]);
        // Attributes and array types never fire.
        let src2 = "#[derive(Clone)]\nstruct S { a: [f64; 3] }";
        let out2 = lexer::lex(src2);
        let lines2: Vec<&str> = src2.lines().collect();
        assert!(check(&out2.tokens, &ctx, &lines2).is_empty());
    }

    #[test]
    fn crate_root_headers() {
        let ctx = FileContext {
            rel_path: "crates/x/src/lib.rs".into(),
            role: Role::Library,
            is_crate_root: true,
            strict_indexing: false,
        };
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        assert!(check(&out.tokens, &ctx, &lines).is_empty());
        let bad = "pub fn f() {}\n";
        let outb = lexer::lex(bad);
        let linesb: Vec<&str> = bad.lines().collect();
        assert_eq!(check(&outb.tokens, &ctx, &linesb).len(), 2);
    }

    #[test]
    fn known_rule_accepts_ids_and_families() {
        assert!(known_rule("panic::unwrap"));
        assert!(known_rule("panic"));
        assert!(known_rule("determinism"));
        assert!(!known_rule("panics"));
        assert!(!known_rule("nope::rule"));
    }
}
