//! Rule registry and the token-stream checks for every rule family.
//!
//! Rules operate on the flat token stream from [`crate::lexer`], so they
//! are *lexical*: deliberately narrow patterns with near-zero false
//! positives rather than full type-aware analysis. Each rule documents
//! exactly what it matches; what a lexical pass cannot see (e.g. `a == b`
//! on two `f64` variables) is out of scope and noted in DESIGN.md.

use crate::diagnostics::{Finding, Severity};
use crate::directives::snippet_at;
use crate::lexer::{Token, TokenKind};

/// Where a file sits in the workspace, which decides rule applicability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Library code: every rule applies.
    Library,
    /// The allowlisted harness/bench/tooling timing layer: wall-clock,
    /// environment reads, and report printing are part of the job here,
    /// so the `determinism::wall-clock`, `determinism::env-read`, and
    /// `hygiene::print` rules are waived. All other rules still apply.
    Harness,
}

/// Per-file context a lint pass needs.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path.
    pub rel_path: String,
    /// Library or harness role (derived from the path).
    pub role: Role,
    /// True for `src/lib.rs` crate roots (headers rule).
    pub is_crate_root: bool,
    /// Lint `panic::indexing` too (opt-in; see [`RULES`]).
    pub strict_indexing: bool,
}

/// Static description of one rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id, `family::name`.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// True when the rule only runs under an opt-in flag.
    pub opt_in: bool,
    /// One-line description for `--list-rules` and docs.
    pub desc: &'static str,
}

/// Every rule the linter knows, in stable order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "determinism::hash-collection",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no HashMap/HashSet: iteration order depends on hasher state; use BTreeMap/BTreeSet or sorted iteration",
    },
    RuleInfo {
        id: "determinism::wall-clock",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no Instant/SystemTime/thread_rng/from_entropy outside the harness/bench timing layer",
    },
    RuleInfo {
        id: "determinism::env-read",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no std::env reads (env::var, env!, option_env!) outside the harness/bench layer",
    },
    RuleInfo {
        id: "panic::unwrap",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no .unwrap() in library non-test code; propagate a typed error or document the invariant",
    },
    RuleInfo {
        id: "panic::expect",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no .expect() in library non-test code; propagate a typed error or document the invariant",
    },
    RuleInfo {
        id: "panic::macro",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no panic!/unreachable! in library non-test code (assert! is allowed: it states an invariant)",
    },
    RuleInfo {
        id: "panic::indexing",
        severity: Severity::Deny,
        opt_in: true,
        desc: "(opt-in: --strict-indexing) no bracket indexing/slicing; use .get()/.get_mut()",
    },
    RuleInfo {
        id: "float::eq",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no ==/!= against a float literal; compare with a tolerance or justify the exact sentinel",
    },
    RuleInfo {
        id: "float::lossy-cast",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no `as f32`, float-literal `as <int>`, or .ceil()/.floor()/.round()/.trunc() `as <int>`",
    },
    RuleInfo {
        id: "hygiene::print",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no print!/println!/eprint!/eprintln! in library code (harness/report layer is exempt)",
    },
    RuleInfo {
        id: "hygiene::dbg",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no dbg! anywhere",
    },
    RuleInfo {
        id: "hygiene::todo",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no todo!/unimplemented! in committed code",
    },
    RuleInfo {
        id: "headers::crate-lints",
        severity: Severity::Deny,
        opt_in: false,
        desc: "crate roots (src/lib.rs) must carry #![forbid(unsafe_code)] and #![warn(missing_docs)]",
    },
    RuleInfo {
        id: "arch::layering",
        severity: Severity::Deny,
        opt_in: false,
        desc: "crate dependencies must respect the declared layering (hev-model below hev-control below hev-serve; hevlint and hev-trace depend on nothing; vendored crates are leaves)",
    },
    RuleInfo {
        id: "panic::reachable-from-serve",
        severity: Severity::Deny,
        opt_in: false,
        desc: "no unwrap/expect/panic!/unreachable!/indexing reachable within N call-graph hops of a hev-serve request-handling entry point",
    },
    RuleInfo {
        id: "determinism::taint",
        severity: Severity::Deny,
        opt_in: false,
        desc: "library code must not call (within 2 hops) a function whose body reads wall-clock/entropy/environment or iterates a hash collection",
    },
    RuleInfo {
        id: "hygiene::dead-pub",
        severity: Severity::Warn,
        opt_in: false,
        desc: "a plain-pub item referenced nowhere else in the workspace (tests included) should be private or removed",
    },
    RuleInfo {
        id: "hygiene::missing-docs",
        severity: Severity::Warn,
        opt_in: false,
        desc: "every plain-pub fn carries a doc comment (extends rustc missing_docs into private modules)",
    },
    RuleInfo {
        id: "directive::malformed",
        severity: Severity::Deny,
        opt_in: false,
        desc: "a hevlint::allow directive must parse as (rule, reason) with a non-empty reason",
    },
    RuleInfo {
        id: "directive::unknown-rule",
        severity: Severity::Deny,
        opt_in: false,
        desc: "a hevlint::allow directive must name an existing rule or rule family",
    },
    RuleInfo {
        id: "directive::unused-allow",
        severity: Severity::Warn,
        opt_in: false,
        desc: "a hevlint::allow directive that suppresses nothing is stale and must be removed",
    },
];

/// True when `name` is a rule id or a family prefix of one.
pub fn known_rule(name: &str) -> bool {
    RULES.iter().any(|r| {
        r.id == name
            || r.id
                .strip_prefix(name)
                .is_some_and(|rest| rest.starts_with("::"))
    })
}

/// Long-form documentation for one rule: rationale, a minimal
/// violating example, and the expected fix. Printed by `--explain`.
#[derive(Debug, Clone, Copy)]
pub struct Explain {
    /// Why the rule exists in *this* workspace.
    pub rationale: &'static str,
    /// A minimal violating example.
    pub example: &'static str,
    /// How violations are expected to be fixed.
    pub fix: &'static str,
}

/// Returns the `--explain` text for a rule id, if the rule exists.
pub fn explain(id: &str) -> Option<Explain> {
    let e = match id {
        "determinism::hash-collection" => Explain {
            rationale: "HashMap/HashSet iteration order depends on the hasher's per-process seed, so any serialization, reduction, or tie-break that walks one diverges between runs and breaks the bit-identical --jobs contract.",
            example: "let mut m: HashMap<State, f64> = HashMap::new();\nfor (k, v) in &m { write(k, v); }",
            fix: "Use BTreeMap/BTreeSet (ordered, deterministic) or collect-and-sort before iterating.",
        },
        "determinism::wall-clock" => Explain {
            rationale: "Instant/SystemTime/thread_rng/from_entropy read machine state, so two runs of the same seed can diverge; only the harness/bench timing layer is allowed to measure wall time.",
            example: "let t0 = Instant::now(); // in crates/hev-model",
            fix: "Thread time/randomness in as explicit parameters (seeded RNG, virtual eval-count time), or move the measurement into the harness layer.",
        },
        "determinism::env-read" => Explain {
            rationale: "Environment reads make a run's output a function of the host, which silently breaks reproduction of the paper's tables across machines and CI.",
            example: "let jobs = std::env::var(\"JOBS\").ok();",
            fix: "Accept configuration through function parameters or CLI flags parsed in the harness layer.",
        },
        "determinism::taint" => Explain {
            rationale: "The local wall-clock/env rules are waived inside the harness role, but a library function that *calls into* that waived code inherits its nondeterminism; the call-graph pass propagates source taint one-two hops so the waiver cannot leak back into library code.",
            example: "// crates/hev-model (library role)\nfn step() { let dt = bench_timer_elapsed(); } // bench_timer_elapsed reads Instant",
            fix: "Invert the dependency: let the harness measure and pass results down, or move the caller into the harness role with a justified allow.",
        },
        "panic::unwrap" => Explain {
            rationale: "A panicking control path aborts the whole episode wave and, on the serve path, a whole session shard; library code must degrade through typed errors instead.",
            example: "let gear = table.get(&state).unwrap();",
            fix: "Propagate a typed error (?, let-else) or, for a proven invariant, keep the unwrap with `// hevlint::allow(panic::unwrap, <why it cannot fail>)`.",
        },
        "panic::expect" => Explain {
            rationale: "Same failure mode as panic::unwrap: .expect() turns a recoverable condition into an abort; the message string does not make the abort safer.",
            example: "let cfg = load().expect(\"config present\");",
            fix: "Return a typed error, or justify the invariant with an allow directive.",
        },
        "panic::macro" => Explain {
            rationale: "panic!/unreachable! abort the episode; the supervisor's degradation ladder can only catch what is expressed as a typed error. assert! is allowed because it states an invariant the tests exercise.",
            example: "match mode { Known(m) => step(m), _ => unreachable!() }",
            fix: "Degrade through a typed error (or a documented fallback control), reserving unreachable! for provably dead arms with an allow directive.",
        },
        "panic::indexing" => Explain {
            rationale: "xs[i] panics on out-of-range; in hot library loops the bound is usually provable, so this rule is opt-in (--strict-indexing) rather than part of the default gate.",
            example: "let q = table[state_index];",
            fix: "Use .get()/.get_mut() with an explicit fallback, or keep the indexing where the bound is structural.",
        },
        "panic::reachable-from-serve" => Explain {
            rationale: "hev-serve's contract is that hostile requests produce typed errors, never panics (DESIGN §12). A panic site N call-graph hops below a request-handling entry point is part of that attack surface even when it sits in another crate; this pass mechanizes the PR-8 hostile-panic audit.",
            example: "// crates/hev-serve\npub fn process(req: &Request) { helper(req.soc); }\n// crates/core\nfn helper(soc: f64) { let g = GEARS[idx(soc)]; } // idx can overflow",
            fix: "Convert the reachable site to a typed-error path (.get(), let-else), or justify the invariant on that line with `// hevlint::allow(panic::reachable-from-serve, <why hostile input cannot reach it>)`.",
        },
        "float::eq" => Explain {
            rationale: "Exact float equality against a literal is almost always a latent tolerance bug in physics code, and sentinel comparisons deserve a visible justification.",
            example: "if soc == 0.4 { recharge(); }",
            fix: "Compare with an explicit tolerance, or keep a true sentinel with an allow directive naming it.",
        },
        "float::lossy-cast" => Explain {
            rationale: "as f32 halves precision and float→int as-casts truncate and saturate silently; both have caused table-lookup drift in energy models.",
            example: "let idx = (soc * 100.0) as usize;",
            fix: "Make rounding explicit (.round()/.floor() with bounds) and keep intermediate math in f64.",
        },
        "hygiene::print" => Explain {
            rationale: "Library prints interleave nondeterministically under --jobs N and corrupt the byte-compared stdout; all reporting flows through the harness/report layer.",
            example: "println!(\"step {step}: soc={soc}\");",
            fix: "Return data to the caller or record it through hev-trace; only harness-role code prints.",
        },
        "hygiene::dbg" => Explain {
            rationale: "dbg! is a debugging leftover that prints to stderr and returns its argument — both effects are unwanted in committed code anywhere.",
            example: "let r = dbg!(reward);",
            fix: "Delete it (or replace with a hev-trace metric if the value matters).",
        },
        "hygiene::todo" => Explain {
            rationale: "todo!/unimplemented! are panics with a friendlier name; committed code must not contain known-unfinished paths.",
            example: "fn charge_depleting() { todo!() }",
            fix: "Implement the path or remove the stub.",
        },
        "hygiene::dead-pub" => Explain {
            rationale: "A plain-pub item that nothing else in the workspace (tests and examples included) references is unauditable API surface: rustc's dead_code lint cannot see across crates, so it rots silently.",
            example: "pub fn legacy_entry() {} // no other file mentions legacy_entry",
            fix: "Make it private/pub(crate), delete it, or — for genuinely external API — keep it with `// hevlint::allow(hygiene::dead-pub, <who consumes it>)`.",
        },
        "hygiene::missing-docs" => Explain {
            rationale: "rustc's missing_docs lint stops at private modules; this extends the workspace's #![warn(missing_docs)] discipline to every plain-pub fn a reader can reach in source.",
            example: "pub fn admit(req: &Request) -> Verdict { … } // no /// above",
            fix: "Add a /// doc comment stating contract and failure modes.",
        },
        "headers::crate-lints" => Explain {
            rationale: "Uniform crate roots guarantee the whole workspace forbids unsafe code and warns on undocumented public API, so a new crate cannot silently opt out.",
            example: "// src/lib.rs without #![forbid(unsafe_code)]",
            fix: "Add #![forbid(unsafe_code)] and #![warn(missing_docs)] at the top of src/lib.rs.",
        },
        "arch::layering" => Explain {
            rationale: "The crate DAG is a contract: hev-model must stay below hev-control/hev-serve so the physics stays reusable and the serve path's trust boundary is auditable; hevlint and hev-trace depend on nothing so they build first; vendored stand-ins are leaves. A dependency edge that violates the table couples layers the tests assume independent.",
            example: "# crates/hev-model/Cargo.toml\n[dependencies]\nhev-control = { workspace = true }",
            fix: "Invert the dependency (move the shared type down, or callback up); layering violations are not allow-listable in source — change the architecture or the declared table in hevlint::workspace.",
        },
        "directive::malformed" => Explain {
            rationale: "An exception without a parseable (rule, reason) pair is an exception without an audit trail.",
            example: "// hevlint::allow(panic::unwrap)",
            fix: "Write `// hevlint::allow(rule, reason)` with a non-empty reason.",
        },
        "directive::unknown-rule" => Explain {
            rationale: "A directive naming a non-existent rule suppresses nothing and usually hides a typo that leaves a real finding unsuppressed.",
            example: "// hevlint::allow(panic::unwarp, oops)",
            fix: "Name an existing rule id or family (see --list-rules).",
        },
        "directive::unused-allow" => Explain {
            rationale: "A directive that suppresses nothing is a stale exception; left in place it pre-authorizes a future violation nobody reviewed. A family-prefix allow counts as used when *any* member rule—including workspace-pass rules like panic::reachable-from-serve—consumes it.",
            example: "// hevlint::allow(panic::unwrap, fixed long ago)\nlet v = compute();",
            fix: "Delete the directive (it is re-addable with a fresh reason if the violation returns).",
        },
        _ => return None,
    };
    Some(e)
}

/// Integer types for the lossy-cast rule.
const INT_TYPES: &[&str] = &[
    "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16", "u32", "u64", "u128", "usize",
];

/// Float methods whose integer cast the lossy-cast rule flags.
const TRUNCATING_METHODS: &[&str] = &["ceil", "floor", "round", "trunc"];

/// Marks, per token, whether it is inside test-gated code: an item under
/// `#[cfg(test)]` / `#[cfg(any(.., test, ..))]` or a `#[test]` function.
/// The item is skipped up to its matching close brace (or `;` for
/// brace-less items such as gated `use` statements).
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].kind == TokenKind::Pound
            && tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::LBracket)
        {
            // Scan the attribute's bracket group.
            let mut depth = 0usize;
            let mut j = i + 1;
            let mut has_test = false;
            while j < tokens.len() {
                match &tokens[j].kind {
                    TokenKind::LBracket => depth += 1,
                    TokenKind::RBracket => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    k if k.is_ident("test") => has_test = true,
                    _ => {}
                }
                j += 1;
            }
            if has_test {
                // Skip the gated item: everything up to the matching `}`
                // of its first brace group, or a top-level `;`.
                let mut k = j + 1;
                let mut brace = 0usize;
                while k < tokens.len() {
                    mask[k] = true;
                    match tokens[k].kind {
                        TokenKind::LBrace => brace += 1,
                        TokenKind::RBrace => {
                            brace -= 1;
                            if brace == 0 {
                                break;
                            }
                        }
                        TokenKind::Semi if brace == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                for m in mask.iter_mut().take(j + 1).skip(i) {
                    *m = true;
                }
                i = k + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Marks tokens inside `#[...]` / `#![...]` attribute groups, so the
/// indexing rules don't fire on attribute brackets.
pub fn attr_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        let at_attr = tokens[i].kind == TokenKind::Pound
            && (tokens
                .get(i + 1)
                .is_some_and(|t| t.kind == TokenKind::LBracket)
                || (tokens.get(i + 1).is_some_and(|t| t.kind == TokenKind::Not)
                    && tokens
                        .get(i + 2)
                        .is_some_and(|t| t.kind == TokenKind::LBracket)));
        if at_attr {
            let mut depth = 0usize;
            let mut j = i;
            while j < tokens.len() {
                mask[j] = true;
                match tokens[j].kind {
                    TokenKind::LBracket => depth += 1,
                    TokenKind::RBracket => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Runs every applicable rule over one file's token stream.
pub fn check(tokens: &[Token], ctx: &FileContext, lines: &[&str]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let tmask = test_mask(tokens);
    let amask = attr_mask(tokens);
    let mut push = |rule: &'static str, line: u32, message: String| {
        let severity = RULES
            .iter()
            .find(|r| r.id == rule)
            .map(|r| r.severity)
            .unwrap_or(Severity::Deny);
        findings.push(Finding {
            rule,
            file: ctx.rel_path.clone(),
            line,
            snippet: snippet_at(lines, line),
            severity,
            message,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        if tmask[i] {
            continue;
        }
        let next = tokens.get(i + 1);
        let next2 = tokens.get(i + 2);
        let prev = i.checked_sub(1).and_then(|p| tokens.get(p));
        match &t.kind {
            TokenKind::Ident(name) => {
                let followed_by_bang = next.is_some_and(|n| n.kind == TokenKind::Not);
                match name.as_str() {
                    // determinism::hash-collection — any use of the types.
                    "HashMap" | "HashSet" => push(
                        "determinism::hash-collection",
                        t.line,
                        format!("`{name}` has hasher-dependent iteration order; use the BTree equivalent or sorted iteration"),
                    ),
                    // determinism::wall-clock — outside the harness layer.
                    "Instant" | "SystemTime" | "thread_rng" | "from_entropy"
                        if ctx.role == Role::Library =>
                    {
                        push(
                            "determinism::wall-clock",
                            t.line,
                            format!("`{name}` introduces wall-clock/entropy state outside the harness timing layer"),
                        )
                    }
                    // determinism::env-read — `env::…`, `env!`, `option_env!`.
                    "env" if ctx.role == Role::Library
                        && next.is_some_and(|n| {
                            n.kind == TokenKind::PathSep || n.kind == TokenKind::Not
                        }) =>
                    {
                        push(
                            "determinism::env-read",
                            t.line,
                            "environment reads make runs host-dependent; thread configuration through explicit parameters".to_string(),
                        )
                    }
                    "option_env" if ctx.role == Role::Library && followed_by_bang => push(
                        "determinism::env-read",
                        t.line,
                        "environment reads make runs host-dependent; thread configuration through explicit parameters".to_string(),
                    ),
                    // panic::unwrap / panic::expect — method position only.
                    "unwrap" | "expect"
                        if prev.is_some_and(|p| p.kind == TokenKind::Dot)
                            && next.is_some_and(|n| n.kind == TokenKind::LParen) =>
                    {
                        let rule: &'static str = if name == "unwrap" {
                            "panic::unwrap"
                        } else {
                            "panic::expect"
                        };
                        push(
                            rule,
                            t.line,
                            format!("`.{name}()` can panic; return a typed error or justify the invariant with an allow directive"),
                        )
                    }
                    "panic" | "unreachable" if followed_by_bang => push(
                        "panic::macro",
                        t.line,
                        format!("`{name}!` aborts the episode; degrade through a typed error path instead"),
                    ),
                    "todo" | "unimplemented" if followed_by_bang => push(
                        "hygiene::todo",
                        t.line,
                        format!("`{name}!` must not reach committed code"),
                    ),
                    "dbg" if followed_by_bang => push(
                        "hygiene::dbg",
                        t.line,
                        "`dbg!` is a debugging leftover".to_string(),
                    ),
                    "print" | "println" | "eprint" | "eprintln"
                        if ctx.role == Role::Library && followed_by_bang =>
                    {
                        push(
                            "hygiene::print",
                            t.line,
                            format!("`{name}!` in library code; route output through the caller or the report layer"),
                        )
                    }
                    // float::lossy-cast — `as f32` and float-literal casts.
                    "as" => {
                        if next.is_some_and(|n| n.kind.is_ident("f32")) {
                            push(
                                "float::lossy-cast",
                                t.line,
                                "`as f32` silently halves precision in physics code".to_string(),
                            );
                        } else if let Some(n) = next {
                            let to_int =
                                n.kind.ident().is_some_and(|id| INT_TYPES.contains(&id));
                            if to_int && prev.is_some_and(|p| p.kind == TokenKind::Float) {
                                push(
                                    "float::lossy-cast",
                                    t.line,
                                    "float literal cast to an integer truncates; make the rounding explicit".to_string(),
                                );
                            } else if to_int
                                && prev.is_some_and(|p| p.kind == TokenKind::RParen)
                                && i >= 4
                                && tokens.get(i - 2).is_some_and(|t| t.kind == TokenKind::LParen)
                                && tokens.get(i - 3).is_some_and(|t| {
                                    t.kind
                                        .ident()
                                        .is_some_and(|id| TRUNCATING_METHODS.contains(&id))
                                })
                                && tokens.get(i - 4).is_some_and(|t| t.kind == TokenKind::Dot)
                            {
                                push(
                                    "float::lossy-cast",
                                    t.line,
                                    "rounded float cast straight to an integer; saturate or bound the value explicitly".to_string(),
                                );
                            }
                        }
                    }
                    _ => {}
                }
            }
            // float::eq — a float literal on either side of ==/!=
            // (one unary minus allowed on the right).
            TokenKind::EqEq | TokenKind::Ne => {
                let lhs_float = prev.is_some_and(|p| p.kind == TokenKind::Float);
                let rhs_float = match next {
                    Some(n) if n.kind == TokenKind::Float => true,
                    Some(n) if n.kind == TokenKind::Minus => {
                        next2.is_some_and(|n2| n2.kind == TokenKind::Float)
                    }
                    _ => false,
                };
                if lhs_float || rhs_float {
                    let op = if t.kind == TokenKind::EqEq {
                        "=="
                    } else {
                        "!="
                    };
                    push(
                        "float::eq",
                        t.line,
                        format!("exact `{op}` against a float literal; use a tolerance or justify the sentinel"),
                    );
                }
            }
            // panic::indexing (opt-in) — `expr[...]` outside attributes.
            TokenKind::LBracket if ctx.strict_indexing && !amask[i] => {
                let indexes = prev.is_some_and(|p| {
                    matches!(
                        p.kind,
                        TokenKind::Ident(_)
                            | TokenKind::RParen
                            | TokenKind::RBracket
                            | TokenKind::Question
                    )
                });
                if indexes {
                    push(
                        "panic::indexing",
                        t.line,
                        "bracket indexing can panic on out-of-range; prefer .get()/.get_mut()"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }

    if ctx.is_crate_root {
        let has = |outer: &str, inner: &str| {
            tokens.windows(6).any(|w| {
                w[0].kind == TokenKind::Pound
                    && w[1].kind == TokenKind::Not
                    && w[2].kind == TokenKind::LBracket
                    && w[3].kind.is_ident(outer)
                    && w[4].kind == TokenKind::LParen
                    && w[5].kind.is_ident(inner)
            })
        };
        if !has("forbid", "unsafe_code") {
            push(
                "headers::crate-lints",
                1,
                "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
        if !(has("warn", "missing_docs")
            || has("deny", "missing_docs")
            || has("forbid", "missing_docs"))
        {
            push(
                "headers::crate-lints",
                1,
                "crate root is missing `#![warn(missing_docs)]` (or stricter)".to_string(),
            );
        }
    }

    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn lint(src: &str) -> Vec<&'static str> {
        lint_role(src, Role::Library)
    }

    fn lint_role(src: &str, role: Role) -> Vec<&'static str> {
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileContext {
            rel_path: "x.rs".into(),
            role,
            is_crate_root: false,
            strict_indexing: false,
        };
        check(&out.tokens, &ctx, &lines)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_core_patterns() {
        assert_eq!(
            lint("let m: HashMap<u32, f64> = x;"),
            vec!["determinism::hash-collection"]
        );
        assert_eq!(lint("let v = o.unwrap();"), vec!["panic::unwrap"]);
        assert_eq!(lint("let v = o.expect(\"m\");"), vec!["panic::expect"]);
        assert_eq!(lint("panic!(\"boom\")"), vec!["panic::macro"]);
        assert_eq!(lint("if x == 0.5 {}"), vec!["float::eq"]);
        assert_eq!(lint("if x != -0.5 {}"), vec!["float::eq"]);
        assert_eq!(lint("let y = x as f32;"), vec!["float::lossy-cast"]);
        assert_eq!(
            lint("let y = x.ceil() as usize;"),
            vec!["float::lossy-cast"]
        );
        assert_eq!(lint("dbg!(x)"), vec!["hygiene::dbg"]);
        assert_eq!(lint("todo!()"), vec!["hygiene::todo"]);
        assert_eq!(lint("println!(\"x\")"), vec!["hygiene::print"]);
        assert_eq!(
            lint("let t = Instant::now();"),
            vec!["determinism::wall-clock"]
        );
        assert_eq!(
            lint("let v = std::env::var(\"X\");"),
            vec!["determinism::env-read"]
        );
    }

    #[test]
    fn narrow_patterns_do_not_overfire() {
        assert!(lint("let v = o.unwrap_or(0);").is_empty());
        assert!(lint("let v = unwrap(x);").is_empty(), "free fn, not method");
        assert!(
            lint("if a == b {}").is_empty(),
            "no literal, lexically unknowable"
        );
        assert!(lint("let n = 1 + 2;").is_empty());
        assert!(lint("let y = x as f64;").is_empty());
        assert!(
            lint("assert!(x > 0.0);").is_empty(),
            "assert! states an invariant"
        );
        assert!(lint("// HashMap unwrap() panic! in a comment").is_empty());
        assert!(lint("let s = \"panic!\";").is_empty());
    }

    #[test]
    fn harness_role_waives_timing_and_prints() {
        let src = "let t = Instant::now(); println!(\"x\"); let v = std::env::var(\"X\");";
        assert!(lint_role(src, Role::Harness).is_empty());
        // …but not panics or hash collections.
        assert_eq!(
            lint_role("let m = HashMap::new(); x.unwrap();", Role::Harness),
            vec!["determinism::hash-collection", "panic::unwrap"]
        );
    }

    #[test]
    fn test_gated_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { x.unwrap(); panic!(); }\n}\nfn lib() { y.unwrap(); }\n";
        assert_eq!(lint(src), vec!["panic::unwrap"]);
        let src2 = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(lint(src2).is_empty());
        let src3 = "#[cfg(test)]\nuse std::collections::HashSet;\nfn lib() {}\n";
        assert!(lint(src3).is_empty());
    }

    #[test]
    fn strict_indexing_is_opt_in() {
        let src = "let v = xs[0];";
        assert!(lint(src).is_empty());
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        let ctx = FileContext {
            rel_path: "x.rs".into(),
            role: Role::Library,
            is_crate_root: false,
            strict_indexing: true,
        };
        let rules: Vec<_> = check(&out.tokens, &ctx, &lines)
            .into_iter()
            .map(|f| f.rule)
            .collect();
        assert_eq!(rules, vec!["panic::indexing"]);
        // Attributes and array types never fire.
        let src2 = "#[derive(Clone)]\nstruct S { a: [f64; 3] }";
        let out2 = lexer::lex(src2);
        let lines2: Vec<&str> = src2.lines().collect();
        assert!(check(&out2.tokens, &ctx, &lines2).is_empty());
    }

    #[test]
    fn crate_root_headers() {
        let ctx = FileContext {
            rel_path: "crates/x/src/lib.rs".into(),
            role: Role::Library,
            is_crate_root: true,
            strict_indexing: false,
        };
        let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\n";
        let out = lexer::lex(src);
        let lines: Vec<&str> = src.lines().collect();
        assert!(check(&out.tokens, &ctx, &lines).is_empty());
        let bad = "pub fn f() {}\n";
        let outb = lexer::lex(bad);
        let linesb: Vec<&str> = bad.lines().collect();
        assert_eq!(check(&outb.tokens, &ctx, &linesb).len(), 2);
    }

    #[test]
    fn known_rule_accepts_ids_and_families() {
        assert!(known_rule("panic::unwrap"));
        assert!(known_rule("panic"));
        assert!(known_rule("determinism"));
        assert!(!known_rule("panics"));
        assert!(!known_rule("nope::rule"));
    }
}
