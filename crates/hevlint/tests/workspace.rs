//! Workspace-pass integration tests.
//!
//! Each `tests/fixtures/ws/<name>` tree is a miniature cargo workspace
//! (umbrella manifest + member crates) seeded with deliberate
//! violations for exactly one v2 rule family. The findings are pinned
//! to exact JSON goldens under `tests/golden/ws_<name>.json`; as with
//! the per-file goldens, `HEVLINT_BLESS=1` regenerates them after a
//! deliberate rule change.
//!
//! The dogfood test at the bottom runs the full workspace pass over
//! this repository itself and asserts it stays deny-clean, and that the
//! committed `hevlint-baseline.json` covers every remaining warning
//! with no stale entries.

use hevlint::baseline::{self, Baseline};
use hevlint::diagnostics::findings_to_json;
use hevlint::lexer;
use hevlint::parser::matching_brace;
use hevlint::rules::{explain, known_rule, Explain, RuleInfo, RULES};
use hevlint::workspace::{allowed_deps, CrateInfo, Dep, Workspace};
use hevlint::{lint_workspace, Options, Report};
use std::path::{Path, PathBuf};

fn ws_fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/ws")
        .join(name)
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Compares a report's findings against `tests/golden/<golden>`,
/// blessing instead when `HEVLINT_BLESS=1` is set.
fn check_golden(golden: &str, report: &Report) {
    let actual = findings_to_json(&report.findings);
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(golden);
    if std::env::var_os("HEVLINT_BLESS").is_some() {
        std::fs::write(&path, format!("{actual}\n"))
            .unwrap_or_else(|e| panic!("cannot bless {golden}: {e}"));
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("golden {golden} unreadable ({e}); run with HEVLINT_BLESS=1 to create it")
    });
    assert_eq!(
        actual,
        expected.trim_end_matches('\n'),
        "{golden}: workspace diagnostics drifted (HEVLINT_BLESS=1 regenerates after a deliberate change)"
    );
}

/// `arch::layering`: the fixture's `hev-model` declares and uses a
/// dependency on `hev-control`, which the layering table forbids. The
/// manifest edge and one `use` are reported; a second `use` sits under
/// a family-prefix allow and must count as suppressed — and, because
/// that allow is consumed only by a workspace-pass rule, it must NOT be
/// reported as `directive::unused-allow` (the regression this fixture
/// pins).
#[test]
fn ws_layering_violation_and_family_allow() {
    let report = lint_workspace(&ws_fixture("layering"), &Options::default());
    assert_eq!(report.crates, 3, "umbrella + 2 members");
    assert_eq!(report.files_scanned, 2);
    assert_eq!(
        report.suppressed, 1,
        "family allow consumed by arch::layering"
    );
    assert!(
        !report
            .findings
            .iter()
            .any(|f| f.rule == "directive::unused-allow"),
        "allow consumed by a workspace rule reported stale: {:?}",
        report.findings
    );
    check_golden("ws_layering.json", &report);
}

/// `panic::reachable-from-serve`: panic sites one and two hops below a
/// serve-crate entry are reported; a three-hop site is outside the
/// default budget (its local `panic::macro` still fires), and a
/// depth-0 computed index in the serve entry itself is reported.
#[test]
fn ws_reach_panic_paths() {
    let report = lint_workspace(&ws_fixture("reach"), &Options::default());
    assert_eq!(report.crates, 3);
    assert_eq!(
        report.suppressed, 2,
        "family allow consumes the local panic::unwrap AND the reachability finding on the same line"
    );
    check_golden("ws_reach.json", &report);
}

/// Raising the hop budget pulls the three-hop panic site into range —
/// the CLI exposes this as `--reach-hops`.
#[test]
fn ws_reach_hop_budget_extends_range() {
    let opts = Options {
        reach_hops: 3,
        ..Options::default()
    };
    let deep = lint_workspace(&ws_fixture("reach"), &opts);
    let default = lint_workspace(&ws_fixture("reach"), &Options::default());
    let count = |r: &Report| {
        r.findings
            .iter()
            .filter(|f| f.rule == "panic::reachable-from-serve")
            .count()
    };
    assert!(
        count(&deep) > count(&default),
        "3-hop budget should reach the panic! in `deeper` (default {}, deep {})",
        count(&default),
        count(&deep)
    );
}

/// `determinism::taint`: library fns calling a harness clock source
/// directly, through one hop, and through two hops are all reported;
/// harness callers of the same fns are not.
#[test]
fn ws_taint_propagation() {
    let report = lint_workspace(&ws_fixture("taint"), &Options::default());
    assert_eq!(report.crates, 3);
    let taints: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.rule == "determinism::taint")
        .collect();
    assert!(
        taints.iter().all(|f| f.file.contains("crates/core")),
        "taint must only fire in library code: {taints:?}"
    );
    check_golden("ws_taint.json", &report);
}

/// `hygiene::dead-pub` / `hygiene::missing-docs`: exports referenced
/// nowhere else in the corpus are dead; `main`, test-only items, and
/// referenced exports are exempt.
#[test]
fn ws_deadpub_audit() {
    let report = lint_workspace(&ws_fixture("deadpub"), &Options::default());
    let dead: Vec<&str> = report
        .findings
        .iter()
        .filter(|f| f.rule == "hygiene::dead-pub")
        .map(|f| f.snippet.as_str())
        .collect();
    assert!(
        dead.iter().any(|s| s.contains("dead_helper")),
        "dead_helper should be flagged: {dead:?}"
    );
    assert!(
        !dead.iter().any(|s| s.contains("used_helper")),
        "used_helper is referenced from main.rs: {dead:?}"
    );
    check_golden("ws_deadpub.json", &report);
}

/// Every registered rule ships an `--explain` entry with all three
/// sections filled in, and `known_rule` agrees with the registry.
#[test]
fn every_rule_has_a_complete_explain_entry() {
    for rule in RULES {
        let info: &RuleInfo = rule;
        assert!(known_rule(info.id), "{} not known to known_rule", info.id);
        let e: Explain =
            explain(info.id).unwrap_or_else(|| panic!("rule {} has no --explain entry", info.id));
        assert!(!e.rationale.is_empty(), "{}: empty rationale", info.id);
        assert!(!e.example.is_empty(), "{}: empty example", info.id);
        assert!(!e.fix.is_empty(), "{}: empty fix", info.id);
    }
    assert!(!known_rule("no::such-rule"));
}

/// The manifest model exposed by `workspace`: discovery finds the
/// fixture members, `crate_by_ident` resolves `use`-path roots, and the
/// layering table pins the leaf crates.
#[test]
fn workspace_model_resolves_fixture_crates() {
    let ws = Workspace::discover(&ws_fixture("layering"));
    let model: &CrateInfo = ws
        .crate_by_ident("hev_model")
        .expect("hev-model resolves from its use-path ident");
    assert_eq!(model.dir, "crates/hev-model");
    let dep: &Dep = model
        .deps
        .iter()
        .find(|d| d.name == "hev-control")
        .expect("fixture declares the forbidden dependency");
    assert!(dep.line > 0);
    assert_eq!(allowed_deps("hevlint"), Some(&[][..]));
    assert!(allowed_deps("ws-layering-umbrella").is_none());
}

/// `matching_brace` pairs nested bodies correctly — the item parser
/// leans on it for every fn body extraction.
#[test]
fn matching_brace_pairs_nested_bodies() {
    let out = lexer::lex("fn a() { if x { y() } else { z() } }\n");
    let open = out
        .tokens
        .iter()
        .position(|t| t.kind == hevlint::lexer::TokenKind::LBrace)
        .expect("outer brace");
    let close = matching_brace(&out.tokens, open);
    assert_eq!(
        close,
        out.tokens.len() - 1,
        "outer brace pairs with the last token"
    );
}

/// Dogfood: the real workspace must be deny-clean under the default
/// options, and the committed baseline must cover every remaining
/// warning exactly (no new findings, no stale entries).
#[test]
fn dogfood_real_workspace_is_deny_clean_under_baseline() {
    let report = lint_workspace(&repo_root(), &Options::default());
    assert!(report.files_scanned > 50, "workspace walk looks broken");
    let denials: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.severity == hevlint::diagnostics::Severity::Deny)
        .collect();
    assert!(
        denials.is_empty(),
        "deny-severity findings in the workspace: {denials:#?}"
    );

    let baseline_path = repo_root().join("hevlint-baseline.json");
    let src = std::fs::read_to_string(&baseline_path)
        .expect("committed hevlint-baseline.json is readable");
    let baseline = Baseline::parse(&src).expect("committed baseline parses");
    let (kept, _suppressed, stale) = baseline.apply(report.findings);
    assert!(
        kept.is_empty(),
        "findings not covered by the committed baseline (fix them or re-bless with \
         HEVLINT_BLESS=1 cargo run -p hevlint -- --baseline hevlint-baseline.json): {kept:#?}"
    );
    assert_eq!(
        stale, 0,
        "stale baseline entries: re-bless with HEVLINT_BLESS=1 after fixing findings"
    );
}

/// The baseline JSON round-trips through parse: blessing then loading
/// yields a baseline that suppresses exactly the blessed findings.
#[test]
fn baseline_round_trips_workspace_findings() {
    let report = lint_workspace(&ws_fixture("deadpub"), &Options::default());
    let json = baseline::to_json(&report.findings);
    let parsed = Baseline::parse(&json).expect("blessed baseline parses");
    let total = report.findings.len();
    let (kept, suppressed, stale) = parsed.apply(report.findings);
    assert!(kept.is_empty());
    assert_eq!(suppressed, total);
    assert_eq!(stale, 0);
}
