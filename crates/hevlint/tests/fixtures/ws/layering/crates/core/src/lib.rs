//! Control layer of the layering fixture: the crate `hev-model` is
//! not allowed to reach.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

fn gain() -> f64 {
    1.25
}

fn headroom(x: f64) -> f64 {
    gain() * x
}
