//! Model layer of the layering fixture: deliberately depends upward on
//! the controller, violating `arch::layering` in both the manifest and
//! a `use`.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hev_control::headroom;
// hevlint::allow(arch, fixture: a family allow consumed only by a workspace-pass rule must not be reported stale)
use hev_control::gain;

fn scaled(x: f64) -> f64 {
    gain() + headroom(x)
}
