//! Library layer of the taint fixture: one fn calls a direct clock
//! source, another calls it through one hop — both leak
//! nondeterminism into the library role.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

fn step_direct() -> u64 {
    now_ms()
}

fn step_wrapped() -> u64 {
    stamp()
}

fn pure(x: u64) -> u64 {
    x + step_direct() + step_wrapped()
}
