//! Harness-role timing helpers for the taint fixture: the clock read
//! is legal here, but library code must not call into it.

fn now_ms() -> u64 {
    let _ = Instant::now();
    0
}

fn stamp() -> u64 {
    now_ms()
}

fn report() -> u64 {
    // Harness callers of tainted fns are fine: the rule only guards
    // the library role.
    stamp()
}
