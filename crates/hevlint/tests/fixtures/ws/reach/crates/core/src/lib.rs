//! Control layer of the reachability fixture: a one-hop panic path, a
//! two-hop path covered by a family allow, a three-hop path outside the
//! default budget, and indexing below depth 0 (never reported).
#![forbid(unsafe_code)]
#![warn(missing_docs)]

struct Table;

impl Table {
    fn best(&self, s: usize) -> f64 {
        let probe = lookup(s).unwrap();
        probe + self.argmax(s)
    }

    fn argmax(&self, s: usize) -> f64 {
        // hevlint::allow(panic, fixture: invariant covered for both the local rule and the workspace reachability rule)
        let v = lookup(s).unwrap();
        deeper(v, s)
    }
}

fn lookup(s: usize) -> Option<f64> {
    if s > 0 {
        Some(1.0)
    } else {
        None
    }
}

fn deeper(v: f64, s: usize) -> f64 {
    let table = [0.0, 1.0, 2.0];
    if v.is_nan() {
        panic!("three hops from the entry: outside the default reachability budget");
    }
    v + table[s % table.len()]
}
