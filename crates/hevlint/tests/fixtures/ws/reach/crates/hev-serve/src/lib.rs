//! Serve layer of the reachability fixture: every library fn here is a
//! reachability entry point.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

fn handle(q: &Table, s: usize) -> f64 {
    Table::best(q, s)
}

fn pick(xs: &[f64], i: usize) -> f64 {
    xs[i]
}
