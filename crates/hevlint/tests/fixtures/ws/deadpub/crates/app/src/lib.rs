//! Public-API audit fixture: one used export, one dead export, one
//! undocumented dead export, and a dead public struct.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Referenced from `main.rs`, so the audit keeps it.
pub fn used_helper(x: f64) -> f64 {
    x * 2.0
}

/// Documented but referenced nowhere else in the corpus.
pub fn dead_helper(x: f64) -> f64 {
    x + 1.0
}

pub fn undocumented(x: f64) -> f64 {
    x - 1.0
}

/// Referenced by no other file.
pub struct DeadConfig {
    /// Horizon length in steps.
    pub horizon: usize,
}

#[cfg(test)]
mod tests {
    /// Test-only pub items are outside the audit's scope.
    pub fn exempt() -> usize {
        1
    }

    #[test]
    fn exempt_is_callable() {
        assert_eq!(exempt(), 1);
    }
}
