//! Binary that consumes exactly one of the library's exports.

fn main() {
    let y = used_helper(21.0);
    let _ = y;
}
