pub fn f(a: Option<u32>) -> u32 {
    // hevlint::allow(panic::unwrap)
    // hevlint::allow(no::such::rule, the rule id does not exist)
    a.unwrap()
}
