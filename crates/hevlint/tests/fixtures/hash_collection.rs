pub fn distinct(xs: &[u32]) -> usize {
    let mut seen = std::collections::HashSet::new();
    xs.iter().filter(|x| seen.insert(**x)).count()
}
