pub fn narrow(x: f64) -> f32 {
    x as f32
}

pub fn bucket(x: f64) -> usize {
    x.floor() as usize
}
