pub fn one(a: Option<u32>) -> u32 {
    a.unwrap() // hevlint::allow(panic::unwrap, fixture: trailing form targets its own line)
}
