pub fn one(a: Option<u32>) -> u32 {
    // hevlint::allow(panic, fixture: family prefix covers panic::expect)
    a.expect("present by construction")
}
