#!/usr/bin/env run-cargo-script
// Lexer-hardening regression fixture: a shebang line, raw identifiers,
// and the `'static`-vs-char-literal ambiguity. None of this is a
// finding; a lexer regression would corrupt the token stream and
// fabricate findings from the decoy strings below.

/// Raw identifiers are ordinary identifiers to every rule.
fn r#type(r#match: &'static str) -> char {
    let decoy = "x.unwrap() and Instant::now() stay inside this string";
    let first = decoy.chars().next().unwrap_or('?');
    if r#match.is_empty() {
        return first;
    }
    's'
}
