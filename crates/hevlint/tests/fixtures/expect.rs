pub fn parsed(s: &str) -> u32 {
    s.parse().expect("caller guarantees digits")
}
