//! A crate root missing its mandatory lint headers.

pub fn f() {}
