pub fn lib_code(x: f64) -> f64 {
    x * 2.0
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let parsed: u32 = "7".parse().unwrap();
        assert_eq!(parsed, 7);
        let m = std::collections::HashMap::<u32, u32>::new();
        assert!(m.is_empty());
    }
}
