// hevlint::allow(panic::unwrap, fixture: nothing on the next line to suppress)
pub fn clean() -> u32 {
    7
}
