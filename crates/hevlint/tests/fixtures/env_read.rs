pub fn jobs() -> usize {
    match std::env::var("HEV_JOBS") {
        Ok(v) => v.parse().unwrap_or(1),
        Err(_) => 1,
    }
}
