pub fn both(a: Option<u32>, b: Option<u32>) -> u32 {
    // hevlint::allow(panic::unwrap, fixture: only the first unwrap is justified)
    let x = a.unwrap();
    let y = b.unwrap();
    x + y
}
