pub fn log_step(t: f64) {
    println!("t = {t}");
}
