pub fn elapsed_s(work: impl FnOnce()) -> f64 {
    let t0 = std::time::Instant::now();
    work();
    t0.elapsed().as_secs_f64()
}
