pub fn is_stopped(speed_mps: f64) -> bool {
    speed_mps == 0.0
}
