pub fn timed_report(work: impl FnOnce()) -> f64 {
    let t0 = std::time::Instant::now();
    work();
    let dt = t0.elapsed().as_secs_f64();
    println!("wall time: {dt:.3} s");
    dt
}
