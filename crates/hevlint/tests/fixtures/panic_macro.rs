pub fn gear_ratio(gear: usize) -> f64 {
    match gear {
        0 => 3.9,
        1 => 2.1,
        _ => unreachable!("gear out of range"),
    }
}
