pub fn future_feature() {
    todo!("regenerative braking curve")
}
