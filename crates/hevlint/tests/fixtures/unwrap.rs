pub fn first(xs: &[f64]) -> f64 {
    *xs.first().unwrap()
}
