pub fn probe(x: f64) -> f64 {
    dbg!(x)
}
