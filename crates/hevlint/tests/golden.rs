//! Fixture-based golden tests: one tiny `.rs` fixture per rule, each
//! pinned to the exact JSON diagnostics (`rule`, `file`, `line`,
//! `snippet`, `severity`, `message`) the linter emits for it.
//!
//! The expected output lives in `tests/golden/<name>.json`. After a
//! deliberate change to a rule's pattern or message, regenerate with
//!
//! ```text
//! HEVLINT_BLESS=1 cargo test -p hevlint --test golden
//! ```
//!
//! and review the golden diff like any other code change.
//!
//! The fixtures live under `tests/fixtures/`, which the workspace walk
//! skips (`SKIP_DIRS`), so deliberately-violating fixture code never
//! shows up in a real `hevlint` run.

use hevlint::diagnostics::findings_to_json;
use hevlint::{lint_source, Options};
use std::path::{Path, PathBuf};

/// One golden case: a fixture linted under a chosen workspace-relative
/// path (the path decides role and crate-root status).
struct Case {
    /// Fixture file name under `tests/fixtures/`.
    fixture: &'static str,
    /// Golden file name under `tests/golden/`.
    golden: &'static str,
    /// Workspace-relative path the linter is told the fixture lives at.
    rel_path: &'static str,
    /// Run with `--strict-indexing`.
    strict: bool,
    /// Expected number of findings suppressed by allow directives.
    suppressed: usize,
}

/// The fixture path feeds `role_for`, so `crates/fixtures/...` lints as
/// library code and `crates/bench/...` as harness code.
const CASES: &[Case] = &[
    Case {
        fixture: "hash_collection.rs",
        golden: "hash_collection.json",
        rel_path: "crates/fixtures/src/hash_collection.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "wall_clock.rs",
        golden: "wall_clock.json",
        rel_path: "crates/fixtures/src/wall_clock.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "env_read.rs",
        golden: "env_read.json",
        rel_path: "crates/fixtures/src/env_read.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "unwrap.rs",
        golden: "unwrap.json",
        rel_path: "crates/fixtures/src/unwrap.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "expect.rs",
        golden: "expect.json",
        rel_path: "crates/fixtures/src/expect.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "panic_macro.rs",
        golden: "panic_macro.json",
        rel_path: "crates/fixtures/src/panic_macro.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "float_eq.rs",
        golden: "float_eq.json",
        rel_path: "crates/fixtures/src/float_eq.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "lossy_cast.rs",
        golden: "lossy_cast.json",
        rel_path: "crates/fixtures/src/lossy_cast.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "print.rs",
        golden: "print.json",
        rel_path: "crates/fixtures/src/print.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "dbg.rs",
        golden: "dbg.json",
        rel_path: "crates/fixtures/src/dbg.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "todo.rs",
        golden: "todo.json",
        rel_path: "crates/fixtures/src/todo.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "indexing.rs",
        golden: "indexing_strict.json",
        rel_path: "crates/fixtures/src/indexing.rs",
        strict: true,
        suppressed: 0,
    },
    Case {
        fixture: "indexing.rs",
        golden: "indexing_default.json",
        rel_path: "crates/fixtures/src/indexing.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "allow_one.rs",
        golden: "allow_one.json",
        rel_path: "crates/fixtures/src/allow_one.rs",
        strict: false,
        suppressed: 1,
    },
    Case {
        fixture: "allow_trailing.rs",
        golden: "allow_trailing.json",
        rel_path: "crates/fixtures/src/allow_trailing.rs",
        strict: false,
        suppressed: 1,
    },
    Case {
        fixture: "allow_family.rs",
        golden: "allow_family.json",
        rel_path: "crates/fixtures/src/allow_family.rs",
        strict: false,
        suppressed: 1,
    },
    Case {
        fixture: "allow_unused.rs",
        golden: "allow_unused.json",
        rel_path: "crates/fixtures/src/allow_unused.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "allow_malformed.rs",
        golden: "allow_malformed.json",
        rel_path: "crates/fixtures/src/allow_malformed.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "test_exempt.rs",
        golden: "test_exempt.json",
        rel_path: "crates/fixtures/src/test_exempt.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "harness_timing.rs",
        golden: "harness_timing_harness.json",
        rel_path: "crates/bench/src/harness_timing.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "harness_timing.rs",
        golden: "harness_timing_library.json",
        rel_path: "crates/fixtures/src/harness_timing.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "headers_missing.rs",
        golden: "headers_missing.json",
        rel_path: "crates/fixtures/src/lib.rs",
        strict: false,
        suppressed: 0,
    },
    Case {
        fixture: "headers_ok.rs",
        golden: "headers_ok.json",
        rel_path: "crates/fixtures/src/lib.rs",
        strict: false,
        suppressed: 0,
    },
    // Lexer hardening: shebang line, r# raw identifiers, 'static
    // lifetimes, and string literals holding decoy violations must all
    // lex cleanly — the golden pins zero findings.
    Case {
        fixture: "lexer_hardening.rs",
        golden: "lexer_hardening.json",
        rel_path: "crates/fixtures/src/lexer_hardening.rs",
        strict: true,
        suppressed: 0,
    },
];

fn testdata(sub: &str, name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(sub)
        .join(name)
}

fn run_case(case: &Case) -> (String, usize) {
    let src = std::fs::read_to_string(testdata("fixtures", case.fixture))
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", case.fixture));
    let opts = Options {
        strict_indexing: case.strict,
        ..Options::default()
    };
    let (findings, suppressed) = lint_source(case.rel_path, &src, &opts);
    (findings_to_json(&findings), suppressed)
}

#[test]
fn golden_diagnostics_match() {
    let bless = std::env::var_os("HEVLINT_BLESS").is_some();
    for case in CASES {
        let (actual, suppressed) = run_case(case);
        assert_eq!(
            suppressed, case.suppressed,
            "{}: suppressed-count mismatch",
            case.golden
        );
        let golden_path = testdata("golden", case.golden);
        if bless {
            std::fs::write(&golden_path, format!("{actual}\n"))
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", case.golden));
            continue;
        }
        let expected = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
            panic!(
                "golden {} unreadable ({e}); run with HEVLINT_BLESS=1 to create it",
                case.golden
            )
        });
        assert_eq!(
            actual,
            expected.trim_end_matches('\n'),
            "{}: diagnostics drifted from golden (HEVLINT_BLESS=1 regenerates after a deliberate change)",
            case.golden
        );
    }
}

/// The ISSUE-level contract, asserted directly rather than through the
/// golden file: an allow directive suppresses precisely ONE finding —
/// the second identical violation on the next line still fires.
#[test]
fn allow_directive_suppresses_precisely_one_finding() {
    let case = CASES
        .iter()
        .find(|c| c.golden == "allow_one.json")
        .expect("allow_one case present");
    let src = std::fs::read_to_string(testdata("fixtures", case.fixture)).expect("fixture");
    let (findings, suppressed) = lint_source(case.rel_path, &src, &Options::default());
    assert_eq!(suppressed, 1, "exactly one finding suppressed");
    assert_eq!(findings.len(), 1, "the uncovered unwrap still fires");
    assert_eq!(findings[0].rule, "panic::unwrap");
    assert_eq!(findings[0].line, 4);
    assert_eq!(findings[0].snippet, "let y = b.unwrap();");
}

/// Same fixture, two roles: the harness path waives wall-clock and
/// print; the library path flags both.
#[test]
fn role_decides_timing_and_print_rules() {
    let src = std::fs::read_to_string(testdata("fixtures", "harness_timing.rs")).expect("fixture");
    let opts = Options::default();
    let (harness, _) = lint_source("crates/bench/src/harness_timing.rs", &src, &opts);
    assert!(
        harness.is_empty(),
        "harness role waives timing/print: {harness:?}"
    );
    let (library, _) = lint_source("crates/fixtures/src/harness_timing.rs", &src, &opts);
    let rules: Vec<_> = library.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["determinism::wall-clock", "hygiene::print"]);
}
