//! Exact-golden pins of the Prometheus text exposition's histogram
//! edges, plus the order-independence contract of [`Histogram::merge`].
//!
//! The exposition is a determinism-compared artifact (CI archives and
//! diffs `--metrics-prom` output), so its edge cases — the mandatory
//! `+Inf` bucket, explicit non-finite bounds, and never-observed
//! histograms — are pinned byte-for-byte, not just shape-checked.

use hev_trace::{Histogram, MetricsRegistry};
use proptest::prelude::*;

#[test]
fn histogram_exposition_is_byte_exact_including_inf_bucket() {
    let mut r = MetricsRegistry::new();
    r.histogram_observe("lat", &[1.0, 10.0], 0.5);
    r.histogram_observe("lat", &[1.0, 10.0], 5.0);
    r.histogram_observe("lat", &[1.0, 10.0], 50.0);
    assert_eq!(
        r.to_prometheus("hev_"),
        "# TYPE hev_lat histogram\n\
         hev_lat_bucket{le=\"1.0\"} 1\n\
         hev_lat_bucket{le=\"10.0\"} 2\n\
         hev_lat_bucket{le=\"+Inf\"} 3\n\
         hev_lat_sum 55.5\n\
         hev_lat_count 3\n"
    );
}

#[test]
fn empty_histogram_exposes_zeroed_series() {
    // A registered-but-never-observed histogram (merged with zero
    // counts) must still expose every series, all zero — absent series
    // break scrape-side rate() queries.
    let mut r = MetricsRegistry::new();
    r.histogram_merge("idle", &[1.0, 10.0], &[0, 0, 0], 0.0, 0);
    assert_eq!(
        r.to_prometheus("hev_"),
        "# TYPE hev_idle histogram\n\
         hev_idle_bucket{le=\"1.0\"} 0\n\
         hev_idle_bucket{le=\"10.0\"} 0\n\
         hev_idle_bucket{le=\"+Inf\"} 0\n\
         hev_idle_sum 0.0\n\
         hev_idle_count 0\n"
    );
}

#[test]
fn boundless_histogram_exposes_only_the_inf_bucket() {
    let mut r = MetricsRegistry::new();
    r.histogram_observe("any", &[], 7.0);
    assert_eq!(
        r.to_prometheus("hev_"),
        "# TYPE hev_any histogram\n\
         hev_any_bucket{le=\"+Inf\"} 1\n\
         hev_any_sum 7.0\n\
         hev_any_count 1\n"
    );
}

#[test]
fn explicit_infinite_bound_folds_into_the_inf_bucket() {
    // An explicit +Inf (or NaN) bound used to emit a duplicate
    // `le="+Inf"` series; it now folds into the mandatory one, keeping
    // one cumulative series per label value.
    let mut r = MetricsRegistry::new();
    r.histogram_observe("dur", &[1.0, f64::INFINITY], 0.5);
    r.histogram_observe("dur", &[1.0, f64::INFINITY], 99.0);
    let text = r.to_prometheus("hev_");
    assert_eq!(
        text,
        "# TYPE hev_dur histogram\n\
         hev_dur_bucket{le=\"1.0\"} 1\n\
         hev_dur_bucket{le=\"+Inf\"} 2\n\
         hev_dur_sum 99.5\n\
         hev_dur_count 2\n"
    );
    assert_eq!(text.matches("le=\"+Inf\"").count(), 1);
}

#[test]
fn merge_matches_observing_everything_in_one_histogram() {
    let bounds = [1.0, 10.0, 100.0];
    let mut a = Histogram::new(&bounds);
    let mut b = Histogram::new(&bounds);
    let mut all = Histogram::new(&bounds);
    for (i, x) in [0.5, 3.0, 42.0, 500.0, 7.0].iter().enumerate() {
        if i % 2 == 0 {
            a.observe(*x);
        } else {
            b.observe(*x);
        }
        all.observe(*x);
    }
    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, all);
    assert_eq!(ba, all);
}

proptest! {
    /// Cross-shard aggregation contract: splitting any observation
    /// stream across shards and merging the shard histograms in any
    /// order is byte-equivalent to one histogram observing everything.
    #[test]
    fn merge_is_order_independent(
        values in prop::collection::vec(0.0f64..1000.0, 1..64),
        shard_of in prop::collection::vec(0usize..3, 64),
    ) {
        let bounds = [1.0, 10.0, 100.0];
        let mut shards = [
            Histogram::new(&bounds),
            Histogram::new(&bounds),
            Histogram::new(&bounds),
        ];
        let mut direct = Histogram::new(&bounds);
        for (i, &x) in values.iter().enumerate() {
            shards[shard_of[i % shard_of.len()] % shards.len()].observe(x);
            direct.observe(x);
        }
        let mut forward = Histogram::new(&bounds);
        for s in shards.iter() {
            forward.merge(s);
        }
        let mut backward = Histogram::new(&bounds);
        for s in shards.iter().rev() {
            backward.merge(s);
        }
        prop_assert_eq!(&forward.counts, &direct.counts);
        prop_assert_eq!(forward.count, direct.count);
        prop_assert_eq!(&backward.counts, &direct.counts);
        prop_assert_eq!(backward.count, direct.count);
        // Sums are float additions in different orders; exact equality
        // is not promised, closeness is.
        prop_assert!((forward.sum - direct.sum).abs() <= 1e-9 * direct.sum.abs().max(1.0));
        prop_assert!((backward.sum - direct.sum).abs() <= 1e-9 * direct.sum.abs().max(1.0));
    }
}
