//! File sinks for collected telemetry — the harness-role half of the
//! crate.
//!
//! The recording API (registry, trace, recorder) is library-role: pure,
//! clock-free, deterministic. Actually writing the collected lines to
//! disk — and timing how long that took, for the run log — is harness
//! work, so it lives here, the one module `hevlint` waives the
//! wall-clock rule for (see `role_for` in `crates/hevlint`).

use std::io::Write;
use std::path::Path;
use std::time::Instant;

/// What a flush wrote: line count and wall-clock spent (the latter is
/// nondeterministic and must only feed the run log, never the
/// deterministic outputs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkReport {
    /// Lines written.
    pub lines: usize,
    /// Wall-clock seconds the write took.
    pub elapsed_s: f64,
}

/// Writes `lines` to `path` as JSONL (one line each, truncating any
/// existing file). The byte content is exactly the concatenation of the
/// lines in order — callers preserve determinism by passing lines in
/// task order.
pub fn write_jsonl(path: &Path, lines: &[String]) -> std::io::Result<SinkReport> {
    let t0 = Instant::now();
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    for line in lines {
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
    }
    file.flush()?;
    Ok(SinkReport {
        lines: lines.len(),
        elapsed_s: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_lines_in_order_and_reports() {
        let dir = std::env::temp_dir().join("hev-trace-sink-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.jsonl");
        let lines = vec!["{\"a\":1}".to_string(), "{\"b\":2}".to_string()];
        let report = write_jsonl(&path, &lines).unwrap();
        assert_eq!(report.lines, 2);
        assert!(report.elapsed_s >= 0.0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        std::fs::remove_file(&path).ok();
    }
}
