//! The metrics registry: named counters, gauges, and fixed-bound
//! histograms, with JSON and Prometheus text exposition.
//!
//! Names are kept in a `BTreeMap`, so every exposition lists metrics in
//! sorted order — byte-identical output for identical recordings, no
//! matter the insertion order. Histogram bucket bounds are fixed at
//! first observation (deterministic, never rebalanced).

use crate::json;
use std::collections::BTreeMap;

/// A fixed-bound histogram: `counts[i]` holds observations `x <=
/// bounds[i]` (exclusive of earlier buckets); the final slot counts the
/// overflow (`+Inf` bucket in Prometheus terms).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Ascending bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts; `bounds.len() + 1` entries.
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observations.
    pub count: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending bucket bounds.
    pub fn new(bounds: &[f64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, x: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| x <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum += x;
        self.count += 1;
    }

    /// Merges pre-aggregated bucket counts (e.g. accumulated inline by a
    /// hot loop) into this histogram. Slices longer than the histogram's
    /// own bucket count fold their tail into the overflow bucket.
    pub(crate) fn merge_counts(&mut self, counts: &[u64], sum: f64, count: u64) {
        for (i, &c) in counts.iter().enumerate() {
            let idx = i.min(self.counts.len() - 1);
            self.counts[idx] += c;
        }
        self.sum += sum;
        self.count += count;
    }

    /// Merges another histogram into this one, bucket by bucket.
    ///
    /// Merging is commutative and associative (every field is a plain
    /// sum), so cross-shard aggregation gives the same result in any
    /// merge order — the property the serve layer relies on when it
    /// folds per-shard histograms into one exposition. The other
    /// histogram's buckets are matched by position; a tail beyond this
    /// histogram's bucket count folds into the overflow bucket (the
    /// [`Self::merge_counts`] contract).
    pub fn merge(&mut self, other: &Histogram) {
        self.merge_counts(&other.counts, other.sum, other.count);
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonically accumulated unsigned count.
    Counter(u64),
    /// A point-in-time float.
    Gauge(f64),
    /// A fixed-bound distribution.
    Histogram(Histogram),
}

/// A registry of named metrics with deterministic (sorted) exposition.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the named counter (creating it at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(c) => *c += v,
            // A name can only hold one metric kind; a mismatched write
            // resets it to the new kind rather than corrupting the old.
            slot => *slot = MetricValue::Counter(v),
        }
    }

    /// Sets the named gauge.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.metrics.insert(name.to_string(), MetricValue::Gauge(v));
    }

    /// Records an observation into the named histogram, creating it with
    /// the given bounds on first use (later calls ignore `bounds`).
    pub fn histogram_observe(&mut self, name: &str, bounds: &[f64], x: f64) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(x),
            slot => {
                let mut h = Histogram::new(bounds);
                h.observe(x);
                *slot = MetricValue::Histogram(h);
            }
        }
    }

    /// Merges pre-aggregated bucket counts into the named histogram (see
    /// [`Histogram::merge_counts`]).
    pub fn histogram_merge(
        &mut self,
        name: &str,
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
        n: u64,
    ) {
        match self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.merge_counts(counts, sum, n),
            slot => {
                let mut h = Histogram::new(bounds);
                h.merge_counts(counts, sum, n);
                *slot = MetricValue::Histogram(h);
            }
        }
    }

    /// Removes every metric (the per-episode reset).
    pub fn clear(&mut self) {
        self.metrics.clear();
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The named metric, if registered.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.get(name)
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The registry as one JSON object (sorted keys, single line).
    /// Counters encode as integers, gauges as floats, histograms as
    /// `{"bounds":[..],"counts":[..],"sum":x,"count":n}`.
    pub fn snapshot_json(&self) -> String {
        let mut obj = json::Obj::new();
        for (name, metric) in &self.metrics {
            obj = match metric {
                MetricValue::Counter(c) => obj.u64(name, *c),
                MetricValue::Gauge(g) => obj.f64(name, *g),
                MetricValue::Histogram(h) => {
                    let inner = json::Obj::new()
                        .raw("bounds", &json::f64_array(&h.bounds))
                        .raw("counts", &json::u64_array(&h.counts))
                        .f64("sum", h.sum)
                        .u64("count", h.count)
                        .finish();
                    obj.raw(name, &inner)
                }
            };
        }
        obj.finish()
    }

    /// The registry in Prometheus text exposition format. Metric names
    /// are prefixed with `prefix` and sanitized to `[a-zA-Z0-9_]`;
    /// histograms expand to cumulative `_bucket{le=..}` series plus
    /// `_sum` and `_count`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let full = sanitize(&format!("{prefix}{name}"));
            match metric {
                MetricValue::Counter(c) => {
                    out.push_str(&format!("# TYPE {full} counter\n{full} {c}\n"));
                }
                MetricValue::Gauge(g) => {
                    out.push_str(&format!("# TYPE {full} gauge\n{full} "));
                    push_prom_f64(&mut out, *g);
                    out.push('\n');
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {full} histogram\n"));
                    let mut cumulative = 0u64;
                    for (i, &bound) in h.bounds.iter().enumerate() {
                        cumulative += h.counts.get(i).copied().unwrap_or(0);
                        // A non-finite bound would collide with the
                        // mandatory `+Inf` series below (duplicate or
                        // contradictory `le` labels); its observations
                        // stay in `cumulative` and surface there.
                        if !bound.is_finite() {
                            continue;
                        }
                        out.push_str(&format!("{full}_bucket{{le=\""));
                        push_prom_f64(&mut out, bound);
                        out.push_str(&format!("\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{full}_bucket{{le=\"+Inf\"}} {}\n{full}_sum ",
                        h.count
                    ));
                    push_prom_f64(&mut out, h.sum);
                    out.push_str(&format!("\n{full}_count {}\n", h.count));
                }
            }
        }
        out
    }
}

/// Prometheus float text form: shortest round-trip; non-finite values
/// use the exposition-format spellings `NaN`, `+Inf`, `-Inf`.
fn push_prom_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else if x.is_nan() {
        out.push_str("NaN");
    } else if x > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

/// Maps a metric name onto the Prometheus charset.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let mut r = MetricsRegistry::new();
        r.counter_add("steps", 3);
        r.counter_add("steps", 2);
        r.gauge_set("epsilon", 0.5);
        r.gauge_set("epsilon", 0.25);
        assert_eq!(r.get("steps"), Some(&MetricValue::Counter(5)));
        assert_eq!(r.get("epsilon"), Some(&MetricValue::Gauge(0.25)));
    }

    #[test]
    fn histogram_buckets_by_upper_bound() {
        let mut h = Histogram::new(&[1.0, 10.0]);
        for x in [0.5, 1.0, 5.0, 100.0] {
            h.observe(x);
        }
        assert_eq!(h.counts, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum - 106.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_merge_matches_observe() {
        let mut direct = Histogram::new(&[1.0, 10.0]);
        for x in [0.5, 5.0, 20.0] {
            direct.observe(x);
        }
        let mut merged = Histogram::new(&[1.0, 10.0]);
        merged.merge_counts(&[1, 1, 1], 25.5, 3);
        assert_eq!(direct, merged);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.gauge_set("z_last", 1.5);
        r.counter_add("a_first", 2);
        r.histogram_observe("m_mid", &[1.0], 0.5);
        let json = r.snapshot_json();
        assert_eq!(
            json,
            "{\"a_first\":2,\"m_mid\":{\"bounds\":[1.0],\"counts\":[1,0],\
             \"sum\":0.5,\"count\":1},\"z_last\":1.5}"
        );
        assert_eq!(json, r.clone().snapshot_json());
    }

    #[test]
    fn prometheus_exposition_has_cumulative_buckets() {
        let mut r = MetricsRegistry::new();
        r.counter_add("steps", 7);
        r.histogram_observe("td.abs", &[1.0, 10.0], 0.5);
        r.histogram_observe("td.abs", &[1.0, 10.0], 5.0);
        r.histogram_observe("td.abs", &[1.0, 10.0], 50.0);
        let text = r.to_prometheus("hev_");
        assert!(text.contains("# TYPE hev_steps counter\nhev_steps 7\n"));
        assert!(text.contains("hev_td_abs_bucket{le=\"1.0\"} 1\n"));
        assert!(text.contains("hev_td_abs_bucket{le=\"10.0\"} 2\n"));
        assert!(text.contains("hev_td_abs_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("hev_td_abs_count 3\n"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut r = MetricsRegistry::new();
        r.counter_add("steps", 1);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.snapshot_json(), "{}");
    }
}
