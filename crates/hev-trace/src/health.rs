//! A service health summary derived from registry counters.
//!
//! Serving layers record request dispositions as counters (requests,
//! shed, errors, quarantines) under a common prefix; this module folds
//! them into a three-state health verdict so dashboards and smoke tests
//! can assert on one field instead of re-deriving thresholds. The
//! summary is a pure function of the registry — deterministic like
//! every other exposition in this crate.

use crate::json::Obj;
use crate::registry::{MetricValue, MetricsRegistry};

/// The three-state verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthState {
    /// Every request served; no shedding, errors, or quarantines.
    Ok,
    /// Some requests were shed or answered with typed errors, but the
    /// service stayed within tolerances.
    Degraded,
    /// Quarantines occurred, or shed/error ratios exceeded 25 % — the
    /// service survived but needs attention.
    Critical,
}

impl HealthState {
    /// A stable snake_case name for encoding.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Ok => "ok",
            Self::Degraded => "degraded",
            Self::Critical => "critical",
        }
    }
}

/// Shed/error ratio beyond which the service counts as critical.
const CRITICAL_RATIO: f64 = 0.25;

/// A folded health verdict plus the ratios it was derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSummary {
    /// The verdict.
    pub state: HealthState,
    /// Requests observed.
    pub requests: u64,
    /// Shed fraction of all requests.
    pub shed_ratio: f64,
    /// Error fraction of all requests.
    pub error_ratio: f64,
    /// Quarantine events.
    pub quarantines: u64,
}

/// Reads a counter, defaulting to 0 when absent or of another kind.
fn counter(registry: &MetricsRegistry, name: &str) -> u64 {
    match registry.get(name) {
        Some(MetricValue::Counter(c)) => *c,
        _ => 0,
    }
}

impl HealthSummary {
    /// Folds the counters `<prefix>requests`, `<prefix>shed`,
    /// `<prefix>errors`, and `<prefix>quarantines` into a verdict
    /// (missing counters read as zero, so an empty registry is `Ok`).
    pub fn from_registry(registry: &MetricsRegistry, prefix: &str) -> Self {
        let requests = counter(registry, &format!("{prefix}requests"));
        let shed = counter(registry, &format!("{prefix}shed"));
        let errors = counter(registry, &format!("{prefix}errors"));
        let quarantines = counter(registry, &format!("{prefix}quarantines"));
        let ratio = |n: u64| {
            if requests == 0 {
                0.0
            } else {
                n as f64 / requests as f64
            }
        };
        let shed_ratio = ratio(shed);
        let error_ratio = ratio(errors);
        let state =
            if quarantines > 0 || shed_ratio > CRITICAL_RATIO || error_ratio > CRITICAL_RATIO {
                HealthState::Critical
            } else if shed > 0 || errors > 0 {
                HealthState::Degraded
            } else {
                HealthState::Ok
            };
        Self {
            state,
            requests,
            shed_ratio,
            error_ratio,
            quarantines,
        }
    }

    /// The summary as one JSON line.
    pub fn to_json(&self) -> String {
        Obj::new()
            .str("state", self.state.name())
            .u64("requests", self.requests)
            .f64("shed_ratio", self.shed_ratio)
            .f64("error_ratio", self.error_ratio)
            .u64("quarantines", self.quarantines)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_is_ok() {
        let summary = HealthSummary::from_registry(&MetricsRegistry::new(), "serve.");
        assert_eq!(summary.state, HealthState::Ok);
        assert_eq!(summary.requests, 0);
    }

    #[test]
    fn shedding_degrades_and_quarantines_are_critical() {
        let mut r = MetricsRegistry::new();
        r.counter_add("serve.requests", 100);
        r.counter_add("serve.shed", 3);
        let summary = HealthSummary::from_registry(&r, "serve.");
        assert_eq!(summary.state, HealthState::Degraded);
        assert!((summary.shed_ratio - 0.03).abs() < 1e-12);

        r.counter_add("serve.quarantines", 1);
        let summary = HealthSummary::from_registry(&r, "serve.");
        assert_eq!(summary.state, HealthState::Critical);
    }

    #[test]
    fn heavy_shedding_is_critical_without_quarantines() {
        let mut r = MetricsRegistry::new();
        r.counter_add("serve.requests", 100);
        r.counter_add("serve.shed", 30);
        assert_eq!(
            HealthSummary::from_registry(&r, "serve.").state,
            HealthState::Critical
        );
    }

    #[test]
    fn json_encoding_is_stable() {
        let mut r = MetricsRegistry::new();
        r.counter_add("serve.requests", 4);
        r.counter_add("serve.errors", 1);
        let json = HealthSummary::from_registry(&r, "serve.").to_json();
        assert_eq!(
            json,
            "{\"state\":\"degraded\",\"requests\":4,\"shed_ratio\":0.0,\
             \"error_ratio\":0.25,\"quarantines\":0}"
        );
    }
}
