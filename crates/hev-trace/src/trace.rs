//! Sampled decision tracing: one structured event per recorded step,
//! encoded as versioned JSONL.
//!
//! A [`StepEvent`] captures everything needed to replay a decision
//! post-hoc: the observed (continuous) state the discretization saw, the
//! encoded state index, the action-mask size, the inner-opt winner (the
//! applied `(i, gear, p_aux)` control), and the reward decomposition
//! (fuel term vs the `w·f_aux(p_aux)` auxiliary term). Sampling is by
//! step index — a pure function of the step number, never of time or
//! thread — so traces are byte-identical across worker counts.

use crate::json;

/// Version stamp written into every trace line as `"v"`; bump on
/// breaking layout changes.
pub const TRACE_SCHEMA_VERSION: u32 = 1;

/// One recorded control step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepEvent {
    /// Episode index within the run (training episodes first, then
    /// evaluation, in execution order).
    pub episode: u64,
    /// Episode kind: `"train"` or `"eval"`.
    pub kind: &'static str,
    /// Step index within the episode.
    pub step: u64,
    /// Simulation time, s.
    pub time_s: f64,
    /// Observed wheel power demand `p_dem`, W.
    pub p_dem_w: f64,
    /// Observed speed `v`, m/s.
    pub speed_mps: f64,
    /// Observed state of charge `q`.
    pub soc: f64,
    /// The predictor's demand forecast `pre`, W (0 without prediction).
    pub prediction_w: f64,
    /// Encoded state index, when the deciding policy exposed one.
    pub state: Option<u64>,
    /// Feasible actions in this step's mask, when exposed.
    pub feasible: Option<u64>,
    /// Chosen action index; `None` when the policy fell back outside its
    /// action space.
    pub action: Option<u64>,
    /// Applied battery current `i`, A.
    pub current_a: f64,
    /// Applied gear index.
    pub gear: u64,
    /// Applied auxiliary power `p_aux`, W.
    pub p_aux_w: f64,
    /// Shaped reward the learner saw this step.
    pub reward: f64,
    /// Fuel burned this step, g (the reward's fuel term before sign).
    pub fuel_g: f64,
    /// Auxiliary reward term `w·f_aux(p_aux)·ΔT`.
    pub aux_term: f64,
    /// State of charge after the step.
    pub soc_after: f64,
    /// Whether the harness had to substitute a fallback control.
    pub fallback: bool,
}

impl StepEvent {
    /// Encodes the event as a JSON object (no trailing newline), tagged
    /// with the schema version and the owning run's label.
    pub fn to_json(&self, run: &str) -> String {
        let mut obj = json::Obj::new()
            .u64("v", u64::from(TRACE_SCHEMA_VERSION))
            .str("event", "step")
            .str("run", run)
            .u64("episode", self.episode)
            .str("kind", self.kind)
            .u64("step", self.step)
            .f64("time_s", self.time_s)
            .f64("p_dem_w", self.p_dem_w)
            .f64("speed_mps", self.speed_mps)
            .f64("soc", self.soc)
            .f64("prediction_w", self.prediction_w);
        obj = match self.state {
            Some(s) => obj.u64("state", s),
            None => obj.raw("state", "null"),
        };
        obj = match self.feasible {
            Some(n) => obj.u64("feasible", n),
            None => obj.raw("feasible", "null"),
        };
        obj = match self.action {
            Some(a) => obj.u64("action", a),
            None => obj.raw("action", "null"),
        };
        obj.f64("current_a", self.current_a)
            .u64("gear", self.gear)
            .f64("p_aux_w", self.p_aux_w)
            .f64("reward", self.reward)
            .f64("fuel_g", self.fuel_g)
            .f64("aux_term", self.aux_term)
            .f64("soc_after", self.soc_after)
            .bool("fallback", self.fallback)
            .finish()
    }
}

/// Deterministic step sampling: record every `every`-th step of an
/// episode (`0` disables step tracing entirely).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSampler {
    /// Record steps whose index is a multiple of this; `0` = none.
    pub every: u64,
}

impl TraceSampler {
    /// A sampler recording every `every`-th step (`0` = none).
    pub fn new(every: u64) -> Self {
        Self { every }
    }

    /// Whether the given step index is sampled.
    pub fn samples(&self, step: u64) -> bool {
        self.every != 0 && step.is_multiple_of(self.every)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event() -> StepEvent {
        StepEvent {
            episode: 2,
            kind: "train",
            step: 17,
            time_s: 17.0,
            p_dem_w: 12_500.0,
            speed_mps: 9.5,
            soc: 0.61,
            prediction_w: 11_000.0,
            state: Some(143),
            feasible: Some(9),
            action: Some(4),
            current_a: -8.0,
            gear: 2,
            p_aux_w: 600.0,
            reward: -0.42,
            fuel_g: 0.35,
            aux_term: 0.0,
            soc_after: 0.612,
            fallback: false,
        }
    }

    #[test]
    fn step_event_encodes_versioned_json() {
        let line = event().to_json("fig2/UDDS/with/run0");
        assert!(line.starts_with("{\"v\":1,\"event\":\"step\","));
        assert!(line.contains("\"run\":\"fig2/UDDS/with/run0\""));
        assert!(line.contains("\"state\":143"));
        assert!(line.contains("\"action\":4"));
        assert!(line.contains("\"fuel_g\":0.35"));
        assert!(line.contains("\"fallback\":false"));
    }

    #[test]
    fn missing_decision_fields_encode_as_null() {
        let mut e = event();
        e.state = None;
        e.feasible = None;
        e.action = None;
        let line = e.to_json("r");
        assert!(line.contains("\"state\":null,\"feasible\":null,\"action\":null"));
    }

    #[test]
    fn sampler_is_a_pure_function_of_the_step_index() {
        let s = TraceSampler::new(4);
        let picks: Vec<u64> = (0..10).filter(|&k| s.samples(k)).collect();
        assert_eq!(picks, vec![0, 4, 8]);
        assert!(!TraceSampler::new(0).samples(0));
        assert!(TraceSampler::new(1).samples(7));
    }
}
