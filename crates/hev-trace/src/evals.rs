//! The thread-local peek-equivalent evaluation counter.
//!
//! Every control step of the RL controller pays many *peek-equivalent
//! evaluations* — feasibility probes, inner-optimization grid points,
//! ternary-search refinements — and the per-step evaluation count is the
//! quantity the staged pipeline in `hev_model` amortizes. The vehicle
//! model records each evaluation here (migrated from the former
//! `hev_model::instrument` module), and the telemetry layer reads
//! per-episode deltas via [`count`] snapshots — deterministic because
//! each episode runs on a single thread.
//!
//! Incrementing a thread-local `Cell` costs a few nanoseconds and never
//! contends across the parallel harness's workers. Callers that want a
//! complete count run their workload single-threaded (the harness's
//! `--jobs 1` mode) or difference [`count`] inside each worker.

use std::cell::Cell;

thread_local! {
    static EVALS: Cell<u64> = const { Cell::new(0) };
    static BATCH_LANES: Cell<u64> = const { Cell::new(0) };
    static BATCH_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// Records one peek-equivalent evaluation.
pub fn record() {
    EVALS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Records one batched-kernel sweep of `lanes` peek-equivalent
/// evaluations: the total advances by `lanes` — one eval per batch
/// *lane*, never one per call — so `evals/step` stays comparable with
/// the scalar-path baselines. Also tracks the number of batch calls, so
/// consumers can report the mean batch width. Zero-lane calls are
/// no-ops (an empty batch evaluates nothing and must not skew the
/// width statistic).
pub fn record_batch(lanes: u64) {
    if lanes == 0 {
        return;
    }
    EVALS.with(|c| c.set(c.get().wrapping_add(lanes)));
    BATCH_LANES.with(|c| c.set(c.get().wrapping_add(lanes)));
    BATCH_CALLS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Evaluations recorded through the batched kernel on this thread since
/// the last [`reset`] (a subset of [`count`]).
pub fn batch_lanes() -> u64 {
    BATCH_LANES.with(Cell::get)
}

/// Batched-kernel invocations on this thread since the last [`reset`];
/// `batch_lanes() / batch_calls()` is the mean batch width.
pub fn batch_calls() -> u64 {
    BATCH_CALLS.with(Cell::get)
}

/// Evaluations recorded on this thread since the last [`reset`] (a free-
/// running counter; per-episode consumers difference two snapshots with
/// [`since`]).
pub fn count() -> u64 {
    EVALS.with(Cell::get)
}

/// Resets this thread's counters (total, batch lanes, batch calls) to
/// zero.
pub fn reset() {
    EVALS.with(|c| c.set(0));
    BATCH_LANES.with(|c| c.set(0));
    BATCH_CALLS.with(|c| c.set(0));
}

/// Evaluations since an earlier [`count`] snapshot (wrapping-safe).
pub fn since(snapshot: u64) -> u64 {
    count().wrapping_sub(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_resets_and_differences() {
        reset();
        assert_eq!(count(), 0);
        record();
        record();
        assert_eq!(count(), 2);
        let snap = count();
        record();
        assert_eq!(since(snap), 1);
        reset();
        assert_eq!(count(), 0);
    }

    #[test]
    fn batch_records_one_eval_per_lane() {
        // Hand-counted scenario: two scalar evals, a 7-lane batch, a
        // 3-lane batch, and an empty batch. The total must be
        // 2 + 7 + 3 = 12 (one per lane, never one per call), the batch
        // subset 10, and the empty call must count neither a lane nor a
        // call.
        reset();
        record();
        record();
        record_batch(7);
        record_batch(3);
        record_batch(0);
        assert_eq!(count(), 12);
        assert_eq!(batch_lanes(), 10);
        assert_eq!(batch_calls(), 2);
        reset();
        assert_eq!(batch_lanes(), 0);
        assert_eq!(batch_calls(), 0);
    }
}
