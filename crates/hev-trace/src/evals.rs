//! The thread-local peek-equivalent evaluation counter.
//!
//! Every control step of the RL controller pays many *peek-equivalent
//! evaluations* — feasibility probes, inner-optimization grid points,
//! ternary-search refinements — and the per-step evaluation count is the
//! quantity the staged pipeline in `hev_model` amortizes. The vehicle
//! model records each evaluation here (migrated from the former
//! `hev_model::instrument` module), and the telemetry layer reads
//! per-episode deltas via [`count`] snapshots — deterministic because
//! each episode runs on a single thread.
//!
//! Incrementing a thread-local `Cell` costs a few nanoseconds and never
//! contends across the parallel harness's workers. Callers that want a
//! complete count run their workload single-threaded (the harness's
//! `--jobs 1` mode) or difference [`count`] inside each worker.

use std::cell::Cell;

thread_local! {
    static EVALS: Cell<u64> = const { Cell::new(0) };
    static BATCH_LANES: Cell<u64> = const { Cell::new(0) };
    static BATCH_CALLS: Cell<u64> = const { Cell::new(0) };
    static CTX_REBUILDS: Cell<u64> = const { Cell::new(0) };
    static CTX_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static CTX_CACHE_MISSES: Cell<u64> = const { Cell::new(0) };
}

/// Records one peek-equivalent evaluation.
pub fn record() {
    EVALS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Records one batched-kernel sweep of `lanes` peek-equivalent
/// evaluations: the total advances by `lanes` — one eval per batch
/// *lane*, never one per call — so `evals/step` stays comparable with
/// the scalar-path baselines. Also tracks the number of batch calls, so
/// consumers can report the mean batch width. Zero-lane calls are
/// no-ops (an empty batch evaluates nothing and must not skew the
/// width statistic).
pub fn record_batch(lanes: u64) {
    if lanes == 0 {
        return;
    }
    EVALS.with(|c| c.set(c.get().wrapping_add(lanes)));
    BATCH_LANES.with(|c| c.set(c.get().wrapping_add(lanes)));
    BATCH_CALLS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Records one `StepContext` rebuild — a full demand-to-gear precompute
/// of one timestep's battery-independent context. The cycle-level context table amortizes these: a steady-
/// state training run should record at most one rebuild per (cycle,
/// vehicle-config) pair, and the benchmark JSON pins that number.
pub fn record_ctx_rebuild() {
    CTX_REBUILDS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Context rebuilds recorded on this thread since the last [`reset`].
pub fn ctx_rebuilds() -> u64 {
    CTX_REBUILDS.with(Cell::get)
}

/// Records one hit in the per-step battery-context cache (the keyed
/// `CurrentContext` lookup succeeded without recomputation).
pub fn record_ctx_cache_hit() {
    CTX_CACHE_HITS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Records one miss in the per-step battery-context cache (the keyed
/// `CurrentContext` had to be computed and inserted).
pub fn record_ctx_cache_miss() {
    CTX_CACHE_MISSES.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Battery-context cache hits on this thread since the last [`reset`].
pub fn ctx_cache_hits() -> u64 {
    CTX_CACHE_HITS.with(Cell::get)
}

/// Battery-context cache misses on this thread since the last [`reset`].
pub fn ctx_cache_misses() -> u64 {
    CTX_CACHE_MISSES.with(Cell::get)
}

/// Evaluations recorded through the batched kernel on this thread since
/// the last [`reset`] (a subset of [`count`]).
pub fn batch_lanes() -> u64 {
    BATCH_LANES.with(Cell::get)
}

/// Batched-kernel invocations on this thread since the last [`reset`];
/// `batch_lanes() / batch_calls()` is the mean batch width.
pub fn batch_calls() -> u64 {
    BATCH_CALLS.with(Cell::get)
}

/// Evaluations recorded on this thread since the last [`reset`] (a free-
/// running counter; per-episode consumers difference two snapshots with
/// [`since`]).
pub fn count() -> u64 {
    EVALS.with(Cell::get)
}

/// Resets this thread's counters (total, batch lanes, batch calls,
/// context rebuilds, context-cache hits/misses) to zero.
pub fn reset() {
    EVALS.with(|c| c.set(0));
    BATCH_LANES.with(|c| c.set(0));
    BATCH_CALLS.with(|c| c.set(0));
    CTX_REBUILDS.with(|c| c.set(0));
    CTX_CACHE_HITS.with(|c| c.set(0));
    CTX_CACHE_MISSES.with(|c| c.set(0));
}

/// Evaluations since an earlier [`count`] snapshot (wrapping-safe).
pub fn since(snapshot: u64) -> u64 {
    count().wrapping_sub(snapshot)
}

/// One snapshot of every per-thread counter, taken with [`counts`].
///
/// Windowed consumers (per-episode telemetry, the lockstep episode wave's
/// per-lane attribution) difference two snapshots with [`Counts::since`]
/// and accumulate attributed deltas with [`Counts::add`]; both are
/// wrapping, like the underlying counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    /// Peek-equivalent evaluations ([`count`]).
    pub evals: u64,
    /// Evaluations recorded through the batched kernel ([`batch_lanes`]).
    pub batch_lanes: u64,
    /// Batched-kernel invocations ([`batch_calls`]).
    pub batch_calls: u64,
    /// Step-context rebuilds ([`ctx_rebuilds`]).
    pub ctx_rebuilds: u64,
    /// Battery-context cache hits ([`ctx_cache_hits`]).
    pub ctx_cache_hits: u64,
    /// Battery-context cache misses ([`ctx_cache_misses`]).
    pub ctx_cache_misses: u64,
}

impl Counts {
    /// The deltas accumulated since an `earlier` snapshot
    /// (field-wise wrapping subtraction).
    pub fn since(&self, earlier: &Counts) -> Counts {
        Counts {
            evals: self.evals.wrapping_sub(earlier.evals),
            batch_lanes: self.batch_lanes.wrapping_sub(earlier.batch_lanes),
            batch_calls: self.batch_calls.wrapping_sub(earlier.batch_calls),
            ctx_rebuilds: self.ctx_rebuilds.wrapping_sub(earlier.ctx_rebuilds),
            ctx_cache_hits: self.ctx_cache_hits.wrapping_sub(earlier.ctx_cache_hits),
            ctx_cache_misses: self.ctx_cache_misses.wrapping_sub(earlier.ctx_cache_misses),
        }
    }

    /// Accumulates `delta` into this tally (field-wise wrapping addition).
    pub fn add(&mut self, delta: &Counts) {
        self.evals = self.evals.wrapping_add(delta.evals);
        self.batch_lanes = self.batch_lanes.wrapping_add(delta.batch_lanes);
        self.batch_calls = self.batch_calls.wrapping_add(delta.batch_calls);
        self.ctx_rebuilds = self.ctx_rebuilds.wrapping_add(delta.ctx_rebuilds);
        self.ctx_cache_hits = self.ctx_cache_hits.wrapping_add(delta.ctx_cache_hits);
        self.ctx_cache_misses = self.ctx_cache_misses.wrapping_add(delta.ctx_cache_misses);
    }
}

/// Snapshots every counter on this thread at once.
pub fn counts() -> Counts {
    Counts {
        evals: count(),
        batch_lanes: batch_lanes(),
        batch_calls: batch_calls(),
        ctx_rebuilds: ctx_rebuilds(),
        ctx_cache_hits: ctx_cache_hits(),
        ctx_cache_misses: ctx_cache_misses(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_resets_and_differences() {
        reset();
        assert_eq!(count(), 0);
        record();
        record();
        assert_eq!(count(), 2);
        let snap = count();
        record();
        assert_eq!(since(snap), 1);
        reset();
        assert_eq!(count(), 0);
    }

    #[test]
    fn context_counters_accumulate_and_reset() {
        reset();
        record_ctx_rebuild();
        record_ctx_rebuild();
        record_ctx_cache_hit();
        record_ctx_cache_miss();
        record_ctx_cache_miss();
        record_ctx_cache_miss();
        assert_eq!(ctx_rebuilds(), 2);
        assert_eq!(ctx_cache_hits(), 1);
        assert_eq!(ctx_cache_misses(), 3);
        // Context bookkeeping never counts as a peek-equivalent eval.
        assert_eq!(count(), 0);
        reset();
        assert_eq!(ctx_rebuilds(), 0);
        assert_eq!(ctx_cache_hits(), 0);
        assert_eq!(ctx_cache_misses(), 0);
    }

    #[test]
    fn counts_snapshot_differences_every_counter() {
        reset();
        let start = counts();
        record();
        record_batch(4);
        record_ctx_rebuild();
        record_ctx_cache_hit();
        record_ctx_cache_miss();
        let delta = counts().since(&start);
        assert_eq!(delta.evals, 5);
        assert_eq!(delta.batch_lanes, 4);
        assert_eq!(delta.batch_calls, 1);
        assert_eq!(delta.ctx_rebuilds, 1);
        assert_eq!(delta.ctx_cache_hits, 1);
        assert_eq!(delta.ctx_cache_misses, 1);
        let mut tally = Counts::default();
        tally.add(&delta);
        tally.add(&delta);
        assert_eq!(tally.evals, 10);
        assert_eq!(tally.ctx_cache_misses, 2);
        reset();
    }

    #[test]
    fn batch_records_one_eval_per_lane() {
        // Hand-counted scenario: two scalar evals, a 7-lane batch, a
        // 3-lane batch, and an empty batch. The total must be
        // 2 + 7 + 3 = 12 (one per lane, never one per call), the batch
        // subset 10, and the empty call must count neither a lane nor a
        // call.
        reset();
        record();
        record();
        record_batch(7);
        record_batch(3);
        record_batch(0);
        assert_eq!(count(), 12);
        assert_eq!(batch_lanes(), 10);
        assert_eq!(batch_calls(), 2);
        reset();
        assert_eq!(batch_lanes(), 0);
        assert_eq!(batch_calls(), 0);
    }
}
