//! The thread-local peek-equivalent evaluation counter.
//!
//! Every control step of the RL controller pays many *peek-equivalent
//! evaluations* — feasibility probes, inner-optimization grid points,
//! ternary-search refinements — and the per-step evaluation count is the
//! quantity the staged pipeline in `hev_model` amortizes. The vehicle
//! model records each evaluation here (migrated from the former
//! `hev_model::instrument` module), and the telemetry layer reads
//! per-episode deltas via [`count`] snapshots — deterministic because
//! each episode runs on a single thread.
//!
//! Incrementing a thread-local `Cell` costs a few nanoseconds and never
//! contends across the parallel harness's workers. Callers that want a
//! complete count run their workload single-threaded (the harness's
//! `--jobs 1` mode) or difference [`count`] inside each worker.

use std::cell::Cell;

thread_local! {
    static EVALS: Cell<u64> = const { Cell::new(0) };
}

/// Records one peek-equivalent evaluation.
pub fn record() {
    EVALS.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Evaluations recorded on this thread since the last [`reset`] (a free-
/// running counter; per-episode consumers difference two snapshots with
/// [`since`]).
pub fn count() -> u64 {
    EVALS.with(Cell::get)
}

/// Resets this thread's counter to zero.
pub fn reset() {
    EVALS.with(|c| c.set(0));
}

/// Evaluations since an earlier [`count`] snapshot (wrapping-safe).
pub fn since(snapshot: u64) -> u64 {
    count().wrapping_sub(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_resets_and_differences() {
        reset();
        assert_eq!(count(), 0);
        record();
        record();
        assert_eq!(count(), 2);
        let snap = count();
        record();
        assert_eq!(since(snap), 1);
        reset();
        assert_eq!(count(), 0);
    }
}
