//! Deterministic telemetry for the HEV joint-control workspace.
//!
//! The controller makes three coupled decisions every step (battery
//! current, gear, auxiliary power); when a run underperforms or the
//! supervisor degrades to a fallback tier, the question is always *why*.
//! This crate is the answer's recording layer:
//!
//! * [`registry`] — a metrics registry (counters, gauges, histograms
//!   with fixed deterministic bucket bounds) with single-line JSON and
//!   Prometheus text exposition;
//! * [`trace`] — sampled structured step events (discretized state,
//!   action-mask size, inner-opt winner, reward terms) encoded as
//!   versioned JSONL;
//! * [`recorder`] — a fixed-size ring buffer of recent step events that
//!   dumps on supervisor degradation, non-finite control, or a caught
//!   panic (the flight recorder);
//! * [`evals`] — the thread-local peek-equivalent evaluation counter
//!   (migrated here from `hev_model::instrument`);
//! * [`health`] — a three-state service health verdict folded from
//!   serving counters (requests, shed, errors, quarantines);
//! * [`span`] — a hierarchical span profiler on the eval-count virtual
//!   clock, with per-phase cost attribution, Chrome-trace export, and a
//!   wall-clock lane installable only from the harness layer;
//! * [`sink`] / [`wallclock`] — the harness-role modules (the only ones
//!   allowed to touch the wall clock and filesystem): file-writing
//!   sinks, and the span profiler's wall-clock hook.
//!
//! # Determinism contract
//!
//! Everything outside [`sink`] is a pure function of what was recorded:
//! no wall clock, no environment, no hashing collections. Emitted lines
//! are therefore byte-identical across worker counts as long as callers
//! collect them per task and concatenate in task order (the pattern
//! `hev_bench::experiments` uses). Floats are formatted with Rust's
//! shortest-round-trip `{:?}` (matching the vendored `serde_json`), and
//! non-finite values — which the flight recorder exists to capture —
//! are encoded as the JSON strings `"NaN"`, `"inf"`, `"-inf"`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod evals;
pub mod health;
pub mod json;
pub mod recorder;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;
pub mod wallclock;

pub use health::{HealthState, HealthSummary};
pub use recorder::FlightRecorder;
pub use registry::{Histogram, MetricValue, MetricsRegistry};
pub use span::{SpanGuard, SpanNode, SpanTree};
pub use trace::{StepEvent, TraceSampler, TRACE_SCHEMA_VERSION};
