//! A minimal deterministic JSON writer.
//!
//! The crate is zero-dependency by design, so it encodes its own JSONL.
//! Formatting matches the workspace's vendored `serde_json`: floats use
//! Rust's shortest-round-trip `{:?}` with a forced `.0` on whole values,
//! so `1.0` never collapses to `1` and re-parsing recovers the exact
//! bits. Non-finite floats — which the flight recorder must be able to
//! record — become the JSON strings `"NaN"`, `"inf"`, `"-inf"` (JSON has
//! no literal for them).

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a float to `out`: shortest round-trip form for finite values
/// (forcing a `.0` on whole numbers), JSON strings for non-finite ones.
pub(crate) fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x:?}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else if x.is_nan() {
        out.push_str("\"NaN\"");
    } else if x > 0.0 {
        out.push_str("\"inf\"");
    } else {
        out.push_str("\"-inf\"");
    }
}

/// An in-progress JSON object, appended field by field.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
    any: bool,
}

impl Obj {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, k: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_str(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a float field (see [`write_f64`] for the encoding).
    pub fn f64(mut self, k: &str, v: f64) -> Self {
        self.key(k);
        write_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-encoded JSON.
    pub fn raw(mut self, k: &str, json: &str) -> Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Adds an array field of already-encoded JSON elements.
    pub fn raw_seq<'a, I: IntoIterator<Item = &'a str>>(mut self, k: &str, items: I) -> Self {
        self.key(k);
        self.buf.push('[');
        for (i, item) in items.into_iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(item);
        }
        self.buf.push(']');
        self
    }

    /// Closes the object and returns the encoded text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Encodes a float slice as a JSON array.
pub fn f64_array(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(&mut out, x);
    }
    out.push(']');
    out
}

/// Encodes an unsigned-integer slice as a JSON array.
pub fn u64_array(xs: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&x.to_string());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        write_str(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_round_trip_and_whole_values_keep_a_point() {
        let mut s = String::new();
        write_f64(&mut s, 1.0);
        assert_eq!(s, "1.0");
        let mut s = String::new();
        write_f64(&mut s, 0.1);
        assert_eq!(s, "0.1");
        let mut s = String::new();
        write_f64(&mut s, 1e300);
        assert_eq!(s.parse::<f64>().unwrap(), 1e300);
    }

    #[test]
    fn non_finite_floats_become_strings() {
        for (x, want) in [
            (f64::NAN, "\"NaN\""),
            (f64::INFINITY, "\"inf\""),
            (f64::NEG_INFINITY, "\"-inf\""),
        ] {
            let mut s = String::new();
            write_f64(&mut s, x);
            assert_eq!(s, want);
        }
    }

    #[test]
    fn objects_compose() {
        let o = Obj::new()
            .str("a", "x")
            .u64("b", 3)
            .f64("c", 2.5)
            .bool("d", false)
            .raw_seq("e", ["1", "2"])
            .finish();
        assert_eq!(o, "{\"a\":\"x\",\"b\":3,\"c\":2.5,\"d\":false,\"e\":[1,2]}");
        assert_eq!(Obj::new().finish(), "{}");
    }

    #[test]
    fn arrays_encode() {
        assert_eq!(f64_array(&[1.0, 0.5]), "[1.0,0.5]");
        assert_eq!(u64_array(&[0, 7]), "[0,7]");
    }
}
