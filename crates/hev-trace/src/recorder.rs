//! The flight recorder: a fixed-size ring buffer of recent step events
//! that dumps when something goes wrong.
//!
//! Two delivery paths share the recording:
//!
//! * **Deterministic** — the owner ([`FlightRecorder`]) dumps into the
//!   trace stream as a `flight_dump` JSONL line when the simulation loop
//!   detects a supervisor rejection or a non-finite control. The dump is
//!   a pure function of the recorded steps, so trace files stay
//!   byte-identical across worker counts.
//! * **Panic** — every recorded line is mirrored into a bounded
//!   thread-local ring ([`note_panic_context`]); when the harness
//!   catches a task panic it snapshots that ring ([`take_panic_ring`])
//!   on the same worker thread and attaches it to the `run_panic` run-log
//!   event. The run log is already the nondeterministic side channel, so
//!   this path never touches the deterministic outputs.

use crate::json;
use crate::trace::TRACE_SCHEMA_VERSION;
use std::cell::RefCell;
use std::collections::VecDeque;

/// A ring buffer of pre-encoded step-event JSON objects.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<String>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (`0` disables it).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            buf: VecDeque::with_capacity(capacity),
        }
    }

    /// Whether the recorder keeps anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records one encoded step event, evicting the oldest when full.
    /// Also mirrors the line into the thread-local panic ring.
    pub fn record(&mut self, event_json: String) {
        if self.capacity == 0 {
            return;
        }
        note_panic_context(&event_json);
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event_json);
    }

    /// Empties the ring (each episode starts clean).
    pub fn clear(&mut self) {
        self.buf.clear();
        clear_panic_ring();
    }

    /// Encodes the ring as one `flight_dump` JSONL line: the trigger, the
    /// offending step, and every buffered event (oldest first). Returns
    /// `None` when the recorder is disabled or empty.
    ///
    /// When the span profiler is active on this thread and a span is
    /// open, the dump also carries the active span path (`span_path`),
    /// so a degradation event is attributable to the phase that
    /// produced it from the dump alone. With profiling off the field is
    /// absent and the line is byte-identical to the unprofiled run.
    pub fn dump(&self, run: &str, episode: u64, trigger: &str, step: u64) -> Option<String> {
        if self.buf.is_empty() {
            return None;
        }
        let mut obj = json::Obj::new()
            .u64("v", u64::from(TRACE_SCHEMA_VERSION))
            .str("event", "flight_dump")
            .str("run", run)
            .u64("episode", episode)
            .str("trigger", trigger)
            .u64("step", step);
        if let Some(path) = crate::span::current_path() {
            obj = obj.str("span_path", &path);
        }
        Some(
            obj.raw_seq("events", self.buf.iter().map(String::as_str))
                .finish(),
        )
    }
}

/// The panic mirror keeps at most this many recent lines per thread.
const PANIC_RING_CAPACITY: usize = 32;

thread_local! {
    static PANIC_RING: RefCell<VecDeque<String>> =
        RefCell::new(VecDeque::with_capacity(PANIC_RING_CAPACITY));
}

/// Mirrors one encoded step event into this thread's panic ring.
pub fn note_panic_context(event_json: &str) {
    PANIC_RING.with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.len() == PANIC_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(event_json.to_string());
    });
}

/// Clears this thread's panic ring.
pub fn clear_panic_ring() {
    PANIC_RING.with(|ring| ring.borrow_mut().clear());
}

/// Takes (and clears) this thread's panic ring — called by the harness
/// on the worker that caught a panic, so the dump describes the steps
/// leading up to the death.
pub fn take_panic_ring() -> Vec<String> {
    PANIC_RING.with(|ring| ring.borrow_mut().drain(..).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_only_the_most_recent_events() {
        let mut r = FlightRecorder::new(2);
        r.record("{\"step\":0}".into());
        r.record("{\"step\":1}".into());
        r.record("{\"step\":2}".into());
        assert_eq!(r.len(), 2);
        let dump = r.dump("run", 0, "supervisor_degradation", 2).unwrap();
        assert!(!dump.contains("\"step\":0"));
        assert!(dump.contains("\"events\":[{\"step\":1},{\"step\":2}]"));
        assert!(dump.contains("\"trigger\":\"supervisor_degradation\""));
    }

    #[test]
    fn disabled_or_empty_recorder_never_dumps() {
        let mut off = FlightRecorder::new(0);
        off.record("{}".into());
        assert!(off.dump("r", 0, "t", 0).is_none());
        assert!(!off.is_enabled());
        assert!(FlightRecorder::new(4).dump("r", 0, "t", 0).is_none());
    }

    #[test]
    fn panic_ring_mirrors_and_drains() {
        clear_panic_ring();
        let mut r = FlightRecorder::new(4);
        r.record("{\"step\":9}".into());
        let lines = take_panic_ring();
        assert_eq!(lines, vec!["{\"step\":9}".to_string()]);
        assert!(take_panic_ring().is_empty());
    }

    #[test]
    fn dump_carries_the_active_span_path_only_while_profiling() {
        let mut r = FlightRecorder::new(2);
        r.record("{\"step\":3}".into());
        crate::span::begin_task();
        let dumped = {
            let _outer = crate::span::enter("control.step");
            let _inner = crate::span::enter("control.supervise");
            r.dump("run", 1, "supervisor_degradation", 3).unwrap()
        };
        let _ = crate::span::take_tree();
        assert!(dumped.contains("\"span_path\":\"control.step/control.supervise\""));
        // Profiling off: the field is absent, byte-identical to the
        // unprofiled artifact.
        let bare = r.dump("run", 1, "supervisor_degradation", 3).unwrap();
        assert!(!bare.contains("span_path"));
    }

    #[test]
    fn clear_resets_both_rings() {
        let mut r = FlightRecorder::new(4);
        r.record("{}".into());
        r.clear();
        assert!(r.is_empty());
        assert!(take_panic_ring().is_empty());
    }
}
