//! Hierarchical span profiler with a deterministic virtual clock.
//!
//! A span measures one named phase of work (`model.scored_sweep`,
//! `control.td_update`, `serve.ladder.full`, …) on the **virtual
//! clock**: candidate-evaluation counts read from the thread-local
//! [`crate::evals`] counters, plus the fused batch-lane count. Virtual
//! time is a pure function of the work performed, so every number a
//! span records is bit-identical at any `--jobs`, `--wave`, or serve
//! shard count — the profile is a deterministic artifact, compared
//! byte-for-byte in CI like the figures themselves.
//!
//! An optional **wall-clock lane** rides alongside: a harness-role
//! module ([`crate::wallclock`]) installs a nanosecond hook via
//! [`set_wall_clock`], and every span then also accumulates elapsed
//! wall time. Wall numbers are machine state, so they are excluded
//! from every determinism-compared serialization ([`SpanTree::to_json`]
//! and the Chrome trace) and appear only in the human-facing
//! attribution table.
//!
//! # Usage
//!
//! Profiling is off by default and [`enter`] is a cheap no-op (one
//! thread-local flag read). A harness task turns it on around its work:
//!
//! ```
//! use hev_trace::span;
//!
//! span::begin_task();
//! {
//!     let _s = span::enter("phase.outer");
//!     let _inner = span::enter("phase.inner");
//! } // guards drop in LIFO order
//! let tree = span::take_tree();
//! assert_eq!(tree.root.children["phase.outer"].calls, 1);
//! ```
//!
//! Trees from many tasks merge commutatively ([`SpanTree::merge`] sums
//! counts by name path), so the merged profile of a parallel run is
//! independent of completion order — the same argument the telemetry
//! files use, applied to the profile.

use crate::evals;
use crate::json::{self, Obj};
use crate::registry::MetricsRegistry;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Schema version of the span-tree JSON artifact.
pub const SPAN_SCHEMA_VERSION: u32 = 1;

/// Per-call eval-cost histogram bounds shared by every span node (the
/// final implicit bucket is the `+Inf` overflow).
pub const SPAN_EVAL_BOUNDS: [f64; 7] = [10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0, 10000.0];

/// Bucket count of the per-call histogram (bounds plus overflow).
const HIST_SLOTS: usize = SPAN_EVAL_BOUNDS.len() + 1;

/// Bucket index of one per-call eval cost, matching
/// `Histogram::observe` semantics (`x <= bound`).
fn bucket(evals: u64) -> usize {
    SPAN_EVAL_BOUNDS
        .iter()
        .position(|&b| evals as f64 <= b)
        .unwrap_or(SPAN_EVAL_BOUNDS.len())
}

/// One node of the thread-local recording arena. Children are indices
/// into the same arena; lookup is a linear scan (fan-out per phase is
/// small and names are `&'static str`, so the comparison is a pointer
/// check most of the time).
#[derive(Debug)]
struct Rec {
    name: &'static str,
    children: Vec<usize>,
    calls: u64,
    evals: u64,
    lanes: u64,
    wall_ns: u64,
    hist: [u64; HIST_SLOTS],
}

impl Rec {
    fn new(name: &'static str) -> Self {
        Self {
            name,
            children: Vec::new(),
            calls: 0,
            evals: 0,
            lanes: 0,
            wall_ns: 0,
            hist: [0; HIST_SLOTS],
        }
    }
}

/// The thread-local profiler state: an arena of recording nodes (index
/// 0 is the task root) plus the active span stack.
#[derive(Debug)]
struct Profiler {
    recs: Vec<Rec>,
    stack: Vec<usize>,
    /// Bumped by every [`begin_task`]/[`take_tree`]; a guard whose
    /// generation no longer matches is stale and drops silently.
    generation: u64,
    start: evals::Counts,
    start_wall: u64,
}

impl Profiler {
    fn new() -> Self {
        Self {
            recs: vec![Rec::new("task")],
            stack: Vec::new(),
            generation: 0,
            start: evals::Counts::default(),
            start_wall: 0,
        }
    }

    fn reset(&mut self) {
        self.recs.clear();
        self.recs.push(Rec::new("task"));
        self.stack.clear();
        self.generation = self.generation.wrapping_add(1);
    }

    /// Index of the current parent (top of stack, else the root).
    fn parent(&self) -> usize {
        self.stack.last().copied().unwrap_or(0)
    }

    /// Finds or creates the named child of `parent`.
    fn child(&mut self, parent: usize, name: &'static str) -> usize {
        if let Some(rec) = self.recs.get(parent) {
            for &c in &rec.children {
                if self
                    .recs
                    .get(c)
                    .is_some_and(|r| std::ptr::eq(r.name.as_ptr(), name.as_ptr()) || r.name == name)
                {
                    return c;
                }
            }
        }
        let idx = self.recs.len();
        self.recs.push(Rec::new(name));
        if let Some(rec) = self.recs.get_mut(parent) {
            rec.children.push(idx);
        }
        idx
    }

    /// Converts one arena node (and its subtree) into the public form.
    fn export(&self, idx: usize) -> SpanNode {
        let mut node = SpanNode::default();
        if let Some(rec) = self.recs.get(idx) {
            node.calls = rec.calls;
            node.evals = rec.evals;
            node.lanes = rec.lanes;
            node.wall_ns = rec.wall_ns;
            node.hist = rec.hist.to_vec();
            for &c in &rec.children {
                if let Some(child) = self.recs.get(c) {
                    node.children.insert(child.name, self.export(c));
                }
            }
        }
        node
    }
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static WALL: Cell<Option<fn() -> u64>> = const { Cell::new(None) };
    static PROFILER: RefCell<Profiler> = RefCell::new(Profiler::new());
}

/// Installs (or clears) the wall-clock hook for the current thread.
/// Library code never calls this; the harness-role
/// [`crate::wallclock::install`] does, keeping the hevlint wall-clock
/// rule honest: the span module itself reads no machine state.
pub fn set_wall_clock(hook: Option<fn() -> u64>) {
    WALL.with(|w| w.set(hook));
}

fn wall_now() -> u64 {
    WALL.with(|w| w.get()).map_or(0, |f| f())
}

/// Whether span recording is active on this thread.
pub fn enabled() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Starts recording a fresh span tree on this thread. Any spans from a
/// previous task that are still alive become stale no-ops (they check
/// the profiler generation at drop).
pub fn begin_task() {
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        p.reset();
        p.start = evals::counts();
        p.start_wall = wall_now();
    });
    ACTIVE.with(|a| a.set(true));
}

/// Stops recording and returns the finished tree. The root carries the
/// task's whole virtual-time window (one call, the full eval delta), so
/// root minus the children's total is the unattributed remainder.
pub fn take_tree() -> SpanTree {
    ACTIVE.with(|a| a.set(false));
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        let counts = evals::counts().since(&p.start);
        let wall = wall_now().wrapping_sub(p.start_wall);
        if let Some(root) = p.recs.get_mut(0) {
            root.calls = 1;
            root.evals = counts.evals;
            root.lanes = counts.batch_lanes;
            root.wall_ns = wall;
        }
        let tree = SpanTree { root: p.export(0) };
        p.reset();
        tree
    })
}

/// The dotted path of the currently open span stack (root excluded),
/// e.g. `control.step/control.supervise`. `None` when profiling is off
/// or no span is open — flight-recorder dumps use this to attach the
/// active phase to a degradation event without changing the disabled
/// artifact byte-for-byte.
pub fn current_path() -> Option<String> {
    if !enabled() {
        return None;
    }
    PROFILER.with(|p| {
        let p = p.borrow();
        if p.stack.is_empty() {
            return None;
        }
        let names: Vec<&str> = p
            .stack
            .iter()
            .filter_map(|&i| p.recs.get(i).map(|r| r.name))
            .collect();
        Some(names.join("/"))
    })
}

/// Opens a span. Returns a no-op guard when profiling is disabled (the
/// disabled cost is one thread-local flag read, and the guard records
/// nothing at drop). Spans nest by construction: the guard's drop
/// closes the span, so hold it for exactly the phase being measured.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing"]
pub fn enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            live: false,
            node: 0,
            generation: 0,
            start: evals::Counts::default(),
            start_wall: 0,
        };
    }
    PROFILER.with(|p| {
        let mut p = p.borrow_mut();
        let parent = p.parent();
        let node = p.child(parent, name);
        p.stack.push(node);
        SpanGuard {
            live: true,
            node,
            generation: p.generation,
            start: evals::counts(),
            start_wall: wall_now(),
        }
    })
}

/// RAII guard of one open span; dropping it closes the span and
/// accumulates the virtual-time (and optional wall-clock) deltas.
#[derive(Debug)]
pub struct SpanGuard {
    live: bool,
    node: usize,
    generation: u64,
    start: evals::Counts,
    start_wall: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let counts = evals::counts().since(&self.start);
        let wall = wall_now().wrapping_sub(self.start_wall);
        PROFILER.with(|p| {
            let mut p = p.borrow_mut();
            if p.generation != self.generation {
                return; // the task ended under this guard; nothing to record
            }
            if let Some(rec) = p.recs.get_mut(self.node) {
                rec.calls += 1;
                rec.evals += counts.evals;
                rec.lanes += counts.batch_lanes;
                rec.wall_ns += wall;
                rec.hist[bucket(counts.evals)] += 1;
            }
            // Pop this span (and, defensively, anything opened under it
            // that leaked past its guard).
            if let Some(pos) = p.stack.iter().rposition(|&i| i == self.node) {
                p.stack.truncate(pos);
            }
        });
    }
}

/// One aggregated node of a finished span tree: spans are keyed by
/// their name path, so repeated calls of the same phase under the same
/// parent fold into one node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanNode {
    /// Times the span was entered.
    pub calls: u64,
    /// Inclusive virtual time: candidate evaluations inside the span
    /// (children included).
    pub evals: u64,
    /// Inclusive fused batch-lane count.
    pub lanes: u64,
    /// Inclusive wall-clock nanoseconds (0 unless the harness installed
    /// the wall lane; never serialized into compared artifacts).
    pub wall_ns: u64,
    /// Per-call eval-cost histogram over [`SPAN_EVAL_BOUNDS`] (last
    /// slot is the overflow bucket).
    pub hist: Vec<u64>,
    /// Child spans by name (sorted — the exposition order).
    pub children: BTreeMap<&'static str, SpanNode>,
}

impl SpanNode {
    /// Inclusive evals of all direct children.
    fn children_evals(&self) -> u64 {
        self.children.values().map(|c| c.evals).sum()
    }

    /// Exclusive virtual time: inclusive minus the children's share
    /// (saturating — a child window can only nest inside its parent's,
    /// so this is exact for well-formed trees).
    pub fn exclusive_evals(&self) -> u64 {
        self.evals.saturating_sub(self.children_evals())
    }

    /// Sums `other` into `self`, recursively. Addition is commutative
    /// and children merge by name, so any merge order yields the same
    /// tree — the property that makes the merged profile of a parallel
    /// run worker-count-invariant.
    pub fn merge(&mut self, other: &SpanNode) {
        self.calls += other.calls;
        self.evals += other.evals;
        self.lanes += other.lanes;
        self.wall_ns += other.wall_ns;
        if self.hist.len() < other.hist.len() {
            self.hist.resize(other.hist.len(), 0);
        }
        for (acc, &h) in self.hist.iter_mut().zip(other.hist.iter()) {
            *acc += h;
        }
        for (name, child) in &other.children {
            self.children.entry(name).or_default().merge(child);
        }
    }

    fn to_json_obj(&self) -> String {
        let mut obj = Obj::new()
            .u64("calls", self.calls)
            .u64("evals", self.evals)
            .u64("lanes", self.lanes)
            .raw("hist", &json::u64_array(&self.hist));
        let mut children = Obj::new();
        for (name, child) in &self.children {
            children = children.raw(name, &child.to_json_obj());
        }
        obj = obj.raw("children", &children.finish());
        obj.finish()
    }
}

/// A finished, mergeable span tree. The root is the task window; its
/// children are the top-level instrumented phases.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTree {
    /// The task root.
    pub root: SpanNode,
}

impl SpanTree {
    /// Whether nothing was recorded (no calls anywhere, no window).
    pub fn is_empty(&self) -> bool {
        self.root.calls == 0 && self.root.children.is_empty()
    }

    /// Total virtual time of the merged task windows.
    pub fn total_evals(&self) -> u64 {
        self.root.evals
    }

    /// Sums `other` into `self` (see [`SpanNode::merge`]).
    pub fn merge(&mut self, other: &SpanTree) {
        self.root.merge(&other.root);
    }

    /// The deterministic single-line JSON artifact: virtual time only —
    /// the wall-clock lane is deliberately absent, so this string is
    /// byte-identical at every worker and shard count.
    pub fn to_json(&self) -> String {
        Obj::new()
            .u64("v", u64::from(SPAN_SCHEMA_VERSION))
            .str("clock", "virtual_evals")
            .raw("bounds", &json::f64_array(&SPAN_EVAL_BOUNDS))
            .raw("tree", &self.root.to_json_obj())
            .finish()
    }

    /// Chrome `trace_event` JSON (Perfetto-compatible): one complete
    /// (`"ph":"X"`) event per aggregated span, laid out depth-first on
    /// the virtual clock — `ts`/`dur` are candidate evaluations, not
    /// microseconds. Deterministic: derived from virtual time only.
    pub fn to_chrome_trace(&self, process_name: &str) -> String {
        let mut events: Vec<String> = Vec::new();
        events.push(
            Obj::new()
                .str("ph", "M")
                .u64("pid", 0)
                .u64("tid", 0)
                .str("name", "process_name")
                .raw("args", &Obj::new().str("name", process_name).finish())
                .finish(),
        );
        fn emit(events: &mut Vec<String>, name: &str, node: &SpanNode, ts: u64) {
            events.push(
                Obj::new()
                    .str("ph", "X")
                    .u64("pid", 0)
                    .u64("tid", 0)
                    .str("name", name)
                    .u64("ts", ts)
                    .u64("dur", node.evals)
                    .raw(
                        "args",
                        &Obj::new()
                            .u64("calls", node.calls)
                            .u64("evals", node.evals)
                            .u64("lanes", node.lanes)
                            .u64("exclusive_evals", node.exclusive_evals())
                            .finish(),
                    )
                    .finish(),
            );
            let mut cursor = ts;
            for (child_name, child) in &node.children {
                emit(events, child_name, child, cursor);
                cursor += child.evals;
            }
        }
        emit(&mut events, "task", &self.root, 0);
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }

    /// Flattens the tree into attribution rows, depth-first in name
    /// order (the order the table prints).
    pub fn attribution_rows(&self) -> Vec<AttributionRow> {
        let mut rows = Vec::new();
        fn walk(
            rows: &mut Vec<AttributionRow>,
            name: &str,
            node: &SpanNode,
            depth: usize,
            parent_evals: u64,
        ) {
            let pct = if parent_evals > 0 {
                100.0 * node.evals as f64 / parent_evals as f64
            } else {
                0.0
            };
            rows.push(AttributionRow {
                name: name.to_string(),
                depth,
                calls: node.calls,
                inclusive_evals: node.evals,
                exclusive_evals: node.exclusive_evals(),
                lanes: node.lanes,
                pct_of_parent: pct,
                wall_ns: node.wall_ns,
            });
            for (child_name, child) in &node.children {
                walk(rows, child_name, child, depth + 1, node.evals);
            }
        }
        walk(&mut rows, "task", &self.root, 0, self.root.evals);
        rows
    }

    /// The human-facing attribution table. Wall-clock milliseconds
    /// appear as a final column only when the harness installed the
    /// wall lane (any nonzero wall time anywhere in the tree).
    pub fn format_attribution_table(&self) -> String {
        let rows = self.attribution_rows();
        let with_wall = rows.iter().any(|r| r.wall_ns > 0);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<42} {:>10} {:>14} {:>14} {:>8} {:>7}",
            "span", "calls", "incl evals", "excl evals", "lanes", "%parent"
        ));
        if with_wall {
            out.push_str(&format!(" {:>10}", "wall ms"));
        }
        out.push('\n');
        for r in &rows {
            let label = format!("{}{}", "  ".repeat(r.depth), r.name);
            out.push_str(&format!(
                "{:<42} {:>10} {:>14} {:>14} {:>8} {:>6.1}%",
                label, r.calls, r.inclusive_evals, r.exclusive_evals, r.lanes, r.pct_of_parent
            ));
            if with_wall {
                out.push_str(&format!(" {:>10.2}", r.wall_ns as f64 / 1e6));
            }
            out.push('\n');
        }
        out
    }

    /// Registers each phase's per-call eval-cost histogram (name
    /// `span.<dotted.path>.evals` under `prefix`) so the profile flows
    /// into the existing Prometheus exposition.
    pub fn populate_registry(&self, registry: &mut MetricsRegistry, prefix: &str) {
        fn walk(registry: &mut MetricsRegistry, prefix: &str, path: &str, node: &SpanNode) {
            if !path.is_empty() {
                registry.histogram_merge(
                    &format!("{prefix}{path}.evals"),
                    &SPAN_EVAL_BOUNDS,
                    &node.hist,
                    node.evals as f64,
                    node.calls,
                );
            }
            for (name, child) in &node.children {
                let child_path = if path.is_empty() {
                    (*name).to_string()
                } else {
                    format!("{path}.{name}")
                };
                walk(registry, prefix, &child_path, child);
            }
        }
        walk(registry, prefix, "", &self.root);
    }
}

/// One row of the attribution table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// The span name (no path — depth conveys nesting).
    pub name: String,
    /// Nesting depth (0 = the task root).
    pub depth: usize,
    /// Times the span was entered.
    pub calls: u64,
    /// Inclusive virtual time in evals.
    pub inclusive_evals: u64,
    /// Exclusive virtual time in evals.
    pub exclusive_evals: u64,
    /// Fused batch-lane count.
    pub lanes: u64,
    /// Inclusive share of the parent's inclusive virtual time.
    pub pct_of_parent: f64,
    /// Inclusive wall-clock nanoseconds (0 without the wall lane).
    pub wall_ns: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives the evals counter by a known amount.
    fn burn(n: u64) {
        for _ in 0..n {
            evals::record();
        }
    }

    #[test]
    fn disabled_enter_is_a_no_op() {
        assert!(!enabled());
        let g = enter("anything");
        assert!(!g.live);
        drop(g);
        // No profiler state was touched; a fresh task starts clean.
        begin_task();
        let tree = take_tree();
        assert!(tree.root.children.is_empty());
    }

    #[test]
    fn nesting_attributes_inclusive_and_exclusive_time() {
        begin_task();
        {
            let _outer = enter("outer");
            burn(10);
            {
                let _inner = enter("inner");
                burn(5);
            }
            burn(2);
        }
        let tree = take_tree();
        assert!(!enabled());
        let outer = &tree.root.children["outer"];
        assert_eq!(outer.calls, 1);
        assert_eq!(outer.evals, 17);
        assert_eq!(outer.exclusive_evals(), 12);
        let inner = &outer.children["inner"];
        assert_eq!(inner.evals, 5);
        assert_eq!(inner.exclusive_evals(), 5);
        assert_eq!(tree.root.evals, 17);
        assert_eq!(tree.root.calls, 1);
    }

    #[test]
    fn repeated_spans_aggregate_by_name_path() {
        begin_task();
        for i in 0..3 {
            let _s = enter("phase");
            burn(i + 1);
        }
        let tree = take_tree();
        let phase = &tree.root.children["phase"];
        assert_eq!(phase.calls, 3);
        assert_eq!(phase.evals, 6);
        // Per-call costs 1, 2, 3 all land in the first (<=10) bucket.
        assert_eq!(phase.hist[0], 3);
        assert_eq!(phase.hist.iter().sum::<u64>(), 3);
    }

    #[test]
    fn current_path_tracks_the_open_stack() {
        assert_eq!(current_path(), None);
        begin_task();
        assert_eq!(current_path(), None);
        let _a = enter("a");
        let _b = enter("b");
        assert_eq!(current_path().as_deref(), Some("a/b"));
        drop(_b);
        assert_eq!(current_path().as_deref(), Some("a"));
        drop(_a);
        let _ = take_tree();
        assert_eq!(current_path(), None);
    }

    #[test]
    fn stale_guards_from_an_ended_task_record_nothing() {
        begin_task();
        let g = enter("leaked");
        let first = take_tree();
        assert_eq!(first.root.children["leaked"].calls, 0);
        begin_task();
        drop(g); // generation mismatch: must not touch the new task
        let second = take_tree();
        assert!(second.root.children.is_empty());
    }

    #[test]
    fn merge_is_order_independent() {
        let mut trees = Vec::new();
        for k in 0..3u64 {
            begin_task();
            {
                let _a = enter("a");
                burn(k + 1);
                let _b = enter("b");
                burn(2 * k + 1);
            }
            trees.push(take_tree());
        }
        let mut forward = SpanTree::default();
        for t in &trees {
            forward.merge(t);
        }
        let mut backward = SpanTree::default();
        for t in trees.iter().rev() {
            backward.merge(t);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.to_json(), backward.to_json());
        assert_eq!(forward.root.children["a"].calls, 3);
        assert_eq!(forward.root.children["a"].children["b"].evals, 1 + 3 + 5);
    }

    #[test]
    fn json_is_deterministic_and_wall_free() {
        begin_task();
        {
            let _s = enter("z.late");
            burn(1);
        }
        {
            let _s = enter("a.early");
            burn(1);
        }
        let mut tree = take_tree();
        tree.root.wall_ns = 123_456; // simulate a wall lane recording
        let json = tree.to_json();
        assert!(json.starts_with("{\"v\":1,\"clock\":\"virtual_evals\""));
        assert!(!json.contains("wall"), "wall lane must not serialize");
        // BTreeMap children: sorted name order regardless of entry order.
        let a = json.find("a.early").unwrap();
        let z = json.find("z.late").unwrap();
        assert!(a < z);
    }

    #[test]
    fn chrome_trace_lays_children_inside_the_parent_window() {
        begin_task();
        {
            let _outer = enter("outer");
            burn(4);
            let _inner = enter("inner");
            burn(6);
        }
        let tree = take_tree();
        let trace = tree.to_chrome_trace("profile-test");
        assert!(trace.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(trace.contains("\"name\":\"process_name\""));
        assert!(trace
            .contains("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"outer\",\"ts\":0,\"dur\":10"));
        assert!(trace.contains("\"name\":\"inner\",\"ts\":0,\"dur\":6"));
        assert!(trace.ends_with("]}"));
    }

    #[test]
    fn attribution_rows_and_table_cover_every_node() {
        begin_task();
        {
            let _o = enter("outer");
            burn(8);
            let _i = enter("inner");
            burn(2);
        }
        let tree = take_tree();
        let rows = tree.attribution_rows();
        assert_eq!(rows.len(), 3, "task, outer, inner");
        assert_eq!(rows[0].name, "task");
        assert_eq!(rows[1].name, "outer");
        assert_eq!(rows[1].inclusive_evals, 10);
        assert_eq!(rows[1].exclusive_evals, 8);
        assert!((rows[1].pct_of_parent - 100.0).abs() < 1e-9);
        assert_eq!(rows[2].depth, 2);
        let table = tree.format_attribution_table();
        assert!(table.contains("incl evals"));
        assert!(!table.contains("wall ms"), "no wall lane installed");
        assert!(table.contains("    inner"));
    }

    #[test]
    fn registry_histograms_expose_per_phase_costs() {
        begin_task();
        {
            let _o = enter("phase");
            burn(3);
            let _i = enter("sub");
            burn(1);
        }
        let tree = take_tree();
        let mut registry = MetricsRegistry::new();
        tree.populate_registry(&mut registry, "span.");
        let json = registry.snapshot_json();
        assert!(json.contains("\"span.phase.evals\""));
        assert!(json.contains("\"span.phase.sub.evals\""));
        let prom = registry.to_prometheus("hev_");
        assert!(prom.contains("hev_span_phase_evals_count 1"));
    }

    #[test]
    fn wall_lane_hook_feeds_wall_ns_and_only_wall_ns() {
        fn fake_clock() -> u64 {
            // A strictly increasing fake: each read advances by 1000ns.
            thread_local! { static T: Cell<u64> = const { Cell::new(0) }; }
            T.with(|t| {
                let v = t.get() + 1000;
                t.set(v);
                v
            })
        }
        set_wall_clock(Some(fake_clock));
        begin_task();
        {
            let _s = enter("timed");
            burn(1);
        }
        let tree = take_tree();
        set_wall_clock(None);
        let timed = &tree.root.children["timed"];
        assert!(timed.wall_ns > 0);
        assert_eq!(timed.evals, 1, "virtual clock unaffected by the hook");
        assert!(tree.format_attribution_table().contains("wall ms"));
    }
}
