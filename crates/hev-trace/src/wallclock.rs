//! The span profiler's wall-clock lane (Harness role under `hevlint`).
//!
//! [`crate::span`] keeps its own hands clean of machine state: it reads
//! wall time only through an installable hook, so the library role's
//! no-wall-clock rule holds for the profiler itself. This module is the
//! one place the hook's `Instant` lives, registered (like
//! `hev-trace/src/sink.rs`) under hevlint's Harness role. Harness code
//! installs the lane per worker thread around a profiled task; the
//! recorded nanoseconds surface only in the human-facing attribution
//! table, never in a determinism-compared artifact.

use std::sync::OnceLock;
use std::time::Instant;

/// One process-wide epoch: all threads measure against the same origin,
/// so per-span deltas are plain monotonic differences.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process epoch (the hook the span module calls
/// through a plain function pointer).
fn wall_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Installs the wall-clock lane on the current thread: spans recorded
/// here also accumulate elapsed wall time until [`uninstall`].
pub fn install() {
    crate::span::set_wall_clock(Some(wall_ns));
}

/// Removes the wall-clock lane from the current thread.
pub fn uninstall() {
    crate::span::set_wall_clock(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span;

    #[test]
    fn installed_lane_times_spans_and_uninstall_stops_it() {
        install();
        span::begin_task();
        {
            let _s = span::enter("timed.lane");
            // Burn enough wall time to register on a nanosecond clock.
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            assert!(acc > 0);
        }
        let timed = span::take_tree();
        uninstall();
        span::begin_task();
        {
            let _s = span::enter("timed.lane");
        }
        let untimed = span::take_tree();
        assert!(timed.root.children["timed.lane"].wall_ns > 0);
        assert_eq!(untimed.root.children["timed.lane"].wall_ns, 0);
        // The deterministic artifact is identical with or without the
        // lane: wall time never serializes.
        assert!(!timed.to_json().contains("wall_ns"));
    }
}
