//! The paper's exponential-weighting predictor (§4.2, Eq. 12).

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};

/// Exponentially weighted moving-average predictor:
/// `pre_i ← (1 − α)·pre_{i−1} + α·meas_{i−1}` (Eq. 12).
///
/// The paper selects this predictor because it balances prediction
/// quality against the state-space growth it causes in the RL algorithm.
///
/// # Examples
///
/// ```
/// use hev_predict::{Ewma, Predictor};
///
/// let mut p = Ewma::new(0.3);
/// p.observe(10.0);
/// p.observe(10.0);
/// assert!(p.predict() > 0.0 && p.predict() <= 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    prediction: f64,
    primed: bool,
}

impl Ewma {
    /// Creates the predictor with learning rate `α`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self {
            alpha,
            prediction: 0.0,
            primed: false,
        }
    }

    /// The learning rate `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Predictor for Ewma {
    fn observe(&mut self, measurement: f64) {
        if self.primed {
            self.prediction = (1.0 - self.alpha) * self.prediction + self.alpha * measurement;
        } else {
            // First observation primes the filter so early predictions do
            // not drag toward an arbitrary zero initialization.
            self.prediction = measurement;
            self.primed = true;
        }
    }

    fn predict(&self) -> f64 {
        self.prediction
    }

    fn reset(&mut self) {
        self.prediction = 0.0;
        self.primed = false;
    }

    fn name(&self) -> &'static str {
        "ewma"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_primes() {
        let mut p = Ewma::new(0.2);
        p.observe(42.0);
        assert_eq!(p.predict(), 42.0);
    }

    #[test]
    fn recurrence_matches_eq12() {
        let mut p = Ewma::new(0.25);
        p.observe(0.0); // prime
        p.observe(8.0);
        assert!((p.predict() - 2.0).abs() < 1e-12); // 0.75·0 + 0.25·8
        p.observe(8.0);
        assert!((p.predict() - 3.5).abs() < 1e-12); // 0.75·2 + 0.25·8
    }

    #[test]
    fn converges_to_constant_signal() {
        let mut p = Ewma::new(0.3);
        for _ in 0..200 {
            p.observe(7.0);
        }
        assert!((p.predict() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn alpha_one_is_persistence() {
        let mut p = Ewma::new(1.0);
        p.observe(1.0);
        p.observe(9.0);
        assert_eq!(p.predict(), 9.0);
    }

    #[test]
    fn higher_alpha_tracks_faster() {
        let mut slow = Ewma::new(0.1);
        let mut fast = Ewma::new(0.6);
        for p in [&mut slow, &mut fast] {
            p.observe(0.0);
        }
        for _ in 0..3 {
            slow.observe(10.0);
            fast.observe(10.0);
        }
        assert!(fast.predict() > slow.predict());
    }

    #[test]
    fn reset_clears_priming() {
        let mut p = Ewma::new(0.5);
        p.observe(5.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
        p.observe(3.0);
        assert_eq!(p.predict(), 3.0); // re-primed
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn validates_alpha() {
        Ewma::new(0.0);
    }
}
