//! The predictor abstraction.

/// An online one-step-ahead predictor of a scalar driving-profile signal
/// (the paper predicts the propulsion power demand, §4.2).
///
/// Implementations observe one measurement per time step and expose a
/// prediction of the next value. They must be cheap: the prediction runs
/// inside the controller's per-step loop.
pub trait Predictor {
    /// Feeds the measurement of the just-elapsed step.
    fn observe(&mut self, measurement: f64);

    /// The current prediction of the next measurement.
    fn predict(&self) -> f64;

    /// Resets all internal state (between episodes or drivers).
    fn reset(&mut self);

    /// A short human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Mean squared one-step prediction error of a predictor over a signal
/// (a convenience for evaluation and tests).
pub fn mean_squared_error<P: Predictor>(predictor: &mut P, signal: &[f64]) -> f64 {
    assert!(signal.len() >= 2, "need at least two samples");
    let mut sum = 0.0;
    let mut n = 0usize;
    predictor.reset();
    for w in signal.windows(2) {
        predictor.observe(w[0]);
        let e = predictor.predict() - w[1];
        sum += e * e;
        n += 1;
    }
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A predictor that always answers with the last observation
    /// (persistence forecast) — used to test the helper.
    struct Persistence(f64);

    impl Predictor for Persistence {
        fn observe(&mut self, m: f64) {
            self.0 = m;
        }
        fn predict(&self) -> f64 {
            self.0
        }
        fn reset(&mut self) {
            self.0 = 0.0;
        }
        fn name(&self) -> &'static str {
            "persistence"
        }
    }

    #[test]
    fn mse_zero_on_constant_signal() {
        let mut p = Persistence(0.0);
        assert_eq!(mean_squared_error(&mut p, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn mse_positive_on_varying_signal() {
        let mut p = Persistence(0.0);
        let mse = mean_squared_error(&mut p, &[0.0, 1.0, 0.0, 1.0]);
        assert!((mse - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn mse_needs_two_samples() {
        let mut p = Persistence(0.0);
        mean_squared_error(&mut p, &[1.0]);
    }
}
