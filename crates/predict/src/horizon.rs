//! Multi-step-horizon prediction on top of any one-step predictor.

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};

/// Predicts the *mean signal level over the next `horizon` steps* by
/// iterating a one-step predictor on its own outputs.
///
/// For an EWMA base this collapses to the EWMA value itself (a fixed
/// point), but for trend-following bases (Markov chain, MLP) the rollout
/// genuinely extrapolates. The RL state benefits from a horizon matched
/// to the controller's effective discount horizon `1/(1−γ)`.
///
/// # Examples
///
/// ```
/// use hev_predict::{Horizon, MarkovChain, Predictor};
///
/// let mut p = Horizon::new(MarkovChain::new(0.0, 10.0, 10), 5);
/// for x in [2.0, 8.0, 2.0, 8.0, 2.0] {
///     p.observe(x);
/// }
/// assert!(p.predict().is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Horizon<P> {
    base: P,
    horizon: usize,
}

impl<P: Predictor + Clone> Horizon<P> {
    /// Wraps a one-step predictor with an `horizon`-step rollout.
    ///
    /// # Panics
    ///
    /// Panics if `horizon == 0`.
    pub fn new(base: P, horizon: usize) -> Self {
        assert!(horizon > 0, "horizon must be positive");
        Self { base, horizon }
    }

    /// The rollout length.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The wrapped one-step predictor.
    pub fn base(&self) -> &P {
        &self.base
    }
}

impl<P: Predictor + Clone> Predictor for Horizon<P> {
    fn observe(&mut self, measurement: f64) {
        self.base.observe(measurement);
    }

    fn predict(&self) -> f64 {
        // Roll the base predictor forward on its own outputs.
        let mut rollout = self.base.clone();
        let mut sum = 0.0;
        for _ in 0..self.horizon {
            let step = rollout.predict();
            sum += step;
            rollout.observe(step);
        }
        sum / self.horizon as f64
    }

    fn reset(&mut self) {
        self.base.reset();
    }

    fn name(&self) -> &'static str {
        "horizon"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewma::Ewma;
    use crate::markov::MarkovChain;

    #[test]
    fn ewma_rollout_is_fixed_point() {
        let mut base = Ewma::new(0.4);
        base.observe(3.0);
        base.observe(9.0);
        let one_step = base.predict();
        let h = Horizon::new(base, 8);
        assert!((h.predict() - one_step).abs() < 1e-12);
    }

    #[test]
    fn markov_rollout_averages_the_attractor() {
        let mut chain = MarkovChain::new(0.0, 10.0, 10);
        // Deterministic alternation between ~2 and ~8.
        for _ in 0..50 {
            chain.observe(2.0);
            chain.observe(8.0);
        }
        let h = Horizon::new(chain, 2);
        // Over an even horizon the mean of the alternation ≈ 5.
        assert!((h.predict() - 5.0).abs() < 0.8, "got {}", h.predict());
    }

    #[test]
    fn observe_feeds_base() {
        let mut h = Horizon::new(Ewma::new(1.0), 3);
        h.observe(7.0);
        assert_eq!(h.predict(), 7.0);
    }

    #[test]
    fn reset_propagates() {
        let mut h = Horizon::new(Ewma::new(0.5), 3);
        h.observe(7.0);
        h.reset();
        assert_eq!(h.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "horizon must be positive")]
    fn zero_horizon_rejected() {
        Horizon::new(Ewma::new(0.5), 0);
    }
}
