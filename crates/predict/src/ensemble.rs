//! Inverse-error-weighted ensemble of predictors.

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};

/// Combines two predictors, weighting each by the inverse of its
/// exponentially averaged squared one-step error.
///
/// The better predictor on the recent signal automatically dominates; on
/// regime changes the weights re-adapt. (A two-member ensemble keeps the
/// type simple and static — nest `Ensemble<Ensemble<…>, …>` for more
/// members.)
///
/// # Examples
///
/// ```
/// use hev_predict::{Ensemble, Ewma, MovingAverage, Predictor};
///
/// let mut p = Ensemble::new(Ewma::new(0.3), MovingAverage::new(10), 0.05);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     p.observe(x);
/// }
/// assert!(p.predict().is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ensemble<A, B> {
    a: A,
    b: B,
    /// Exponential forgetting rate of the error averages.
    error_rate: f64,
    err_a: f64,
    err_b: f64,
}

impl<A: Predictor, B: Predictor> Ensemble<A, B> {
    /// Combines predictors `a` and `b`; `error_rate` controls how fast
    /// the error averages forget (e.g. 0.05).
    ///
    /// # Panics
    ///
    /// Panics if `error_rate` is outside `(0, 1]`.
    pub fn new(a: A, b: B, error_rate: f64) -> Self {
        assert!(
            error_rate > 0.0 && error_rate <= 1.0,
            "error_rate must be in (0, 1]"
        );
        Self {
            a,
            b,
            error_rate,
            err_a: 1.0,
            err_b: 1.0,
        }
    }

    /// The current weight of the first member, in `[0, 1]`.
    pub fn weight_a(&self) -> f64 {
        let wa = 1.0 / self.err_a.max(1e-12);
        let wb = 1.0 / self.err_b.max(1e-12);
        wa / (wa + wb)
    }
}

impl<A: Predictor, B: Predictor> Predictor for Ensemble<A, B> {
    fn observe(&mut self, measurement: f64) {
        // Score both members on the measurement they were about to
        // predict, then let them observe it.
        let ea = self.a.predict() - measurement;
        let eb = self.b.predict() - measurement;
        let r = self.error_rate;
        self.err_a = (1.0 - r) * self.err_a + r * ea * ea;
        self.err_b = (1.0 - r) * self.err_b + r * eb * eb;
        self.a.observe(measurement);
        self.b.observe(measurement);
    }

    fn predict(&self) -> f64 {
        let w = self.weight_a();
        w * self.a.predict() + (1.0 - w) * self.b.predict()
    }

    fn reset(&mut self) {
        self.a.reset();
        self.b.reset();
        self.err_a = 1.0;
        self.err_b = 1.0;
    }

    fn name(&self) -> &'static str {
        "ensemble"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ewma::Ewma;
    use crate::moving_average::MovingAverage;
    use crate::traits::mean_squared_error;

    #[test]
    fn weights_start_even() {
        let e = Ensemble::new(Ewma::new(0.3), MovingAverage::new(5), 0.1);
        assert!((e.weight_a() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn better_member_gains_weight() {
        // Persistence (EWMA α=1) is perfect on a constant signal; a
        // 2-sample moving average is too — use a drifting signal where
        // persistence wins.
        let mut e = Ensemble::new(Ewma::new(1.0), MovingAverage::new(20), 0.2);
        for i in 0..100 {
            e.observe(i as f64);
        }
        assert!(e.weight_a() > 0.8, "weight {}", e.weight_a());
    }

    #[test]
    fn ensemble_not_worse_than_worst_member() {
        let signal: Vec<f64> = (0..200).map(|i| (i as f64 * 0.3).sin() * 5.0).collect();
        let mut ewma = Ewma::new(0.5);
        let mut mavg = MovingAverage::new(15);
        let mut ens = Ensemble::new(Ewma::new(0.5), MovingAverage::new(15), 0.1);
        let worst =
            mean_squared_error(&mut ewma, &signal).max(mean_squared_error(&mut mavg, &signal));
        let ens_mse = mean_squared_error(&mut ens, &signal);
        assert!(
            ens_mse <= worst * 1.05,
            "ensemble {ens_mse} vs worst {worst}"
        );
    }

    #[test]
    fn reset_restores_even_weights() {
        let mut e = Ensemble::new(Ewma::new(1.0), MovingAverage::new(20), 0.2);
        for i in 0..50 {
            e.observe(i as f64);
        }
        e.reset();
        assert!((e.weight_a() - 0.5).abs() < 1e-12);
        assert_eq!(e.predict(), 0.0);
    }

    #[test]
    #[should_panic(expected = "error_rate must be in (0, 1]")]
    fn validates_error_rate() {
        Ensemble::new(Ewma::new(0.5), Ewma::new(0.2), 0.0);
    }
}
