//! A small multilayer perceptron trained online — the "artificial neural
//! network" alternative the paper mentions in §4.2.
//!
//! One hidden tanh layer, stochastic gradient descent on the squared
//! one-step prediction error, inputs = the last `k` measurements scaled
//! to `[-1, 1]`. Deliberately tiny: it must run inside the controller's
//! per-step loop.

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};

/// Online MLP predictor.
///
/// # Examples
///
/// ```
/// use hev_predict::{MlpPredictor, Predictor};
///
/// let mut p = MlpPredictor::new(4, 8, 0.05, 1_000.0, 77);
/// for i in 0..200 {
///     p.observe(if i % 2 == 0 { 500.0 } else { -500.0 });
/// }
/// assert!(p.predict().abs() <= 1_000.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpPredictor {
    history_len: usize,
    hidden: usize,
    learning_rate: f64,
    /// Scale: inputs/outputs are divided by this to live near `[-1, 1]`.
    scale: f64,
    /// Input→hidden weights, row-major `[hidden][history_len + 1]` (last
    /// column is the bias).
    w1: Vec<f64>,
    /// Hidden→output weights `[hidden + 1]` (last is the bias).
    w2: Vec<f64>,
    history: Vec<f64>,
}

impl MlpPredictor {
    /// Creates a predictor reading the last `history_len` measurements
    /// through `hidden` tanh units. `scale` should be the expected signal
    /// magnitude; `seed` fixes the weight initialization.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero or `learning_rate`/`scale` are not
    /// positive.
    pub fn new(
        history_len: usize,
        hidden: usize,
        learning_rate: f64,
        scale: f64,
        seed: u64,
    ) -> Self {
        assert!(history_len > 0 && hidden > 0, "sizes must be positive");
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(scale > 0.0, "scale must be positive");
        // Deterministic xorshift initialization in [-0.5, 0.5].
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let w1 = (0..hidden * (history_len + 1))
            .map(|_| next() * 0.8)
            .collect();
        let w2 = (0..hidden + 1).map(|_| next() * 0.8).collect();
        Self {
            history_len,
            hidden,
            learning_rate,
            scale,
            w1,
            w2,
            history: Vec::with_capacity(history_len),
        }
    }

    /// Number of past measurements fed to the network.
    pub fn history_len(&self) -> usize {
        self.history_len
    }

    fn inputs(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.history_len];
        for (i, &h) in self.history.iter().rev().enumerate() {
            if i >= self.history_len {
                break;
            }
            x[i] = (h / self.scale).clamp(-3.0, 3.0);
        }
        x
    }

    fn forward(&self, x: &[f64]) -> (Vec<f64>, f64) {
        let mut hidden_out = Vec::with_capacity(self.hidden);
        for h in 0..self.hidden {
            let row = &self.w1[h * (self.history_len + 1)..(h + 1) * (self.history_len + 1)];
            let mut z = row[self.history_len]; // bias
            for (xi, wi) in x.iter().zip(row) {
                z += xi * wi;
            }
            hidden_out.push(z.tanh());
        }
        let mut y = self.w2[self.hidden]; // bias
        for (hi, wi) in hidden_out.iter().zip(&self.w2) {
            y += hi * wi;
        }
        (hidden_out, y)
    }

    // Index-based loops keep the three parallel weight slices in sync.
    #[allow(clippy::needless_range_loop)]
    fn train_step(&mut self, target_scaled: f64) {
        let x = self.inputs();
        let (hidden_out, y) = self.forward(&x);
        let err = y - target_scaled;
        // Output layer.
        let lr = self.learning_rate;
        for h in 0..self.hidden {
            let grad_w2 = err * hidden_out[h];
            // Hidden layer, through tanh'(z) = 1 − tanh².
            let dh = err * self.w2[h] * (1.0 - hidden_out[h] * hidden_out[h]);
            let row = &mut self.w1[h * (self.history_len + 1)..(h + 1) * (self.history_len + 1)];
            for (xi, wi) in x.iter().zip(row.iter_mut()) {
                *wi -= lr * dh * xi;
            }
            row[self.history_len] -= lr * dh;
            self.w2[h] -= lr * grad_w2;
        }
        self.w2[self.hidden] -= lr * err;
    }
}

impl Predictor for MlpPredictor {
    fn observe(&mut self, measurement: f64) {
        if self.history.len() >= self.history_len {
            // Train on the transition (previous history → this value).
            self.train_step((measurement / self.scale).clamp(-3.0, 3.0));
        }
        self.history.push(measurement);
        let keep = self.history_len;
        if self.history.len() > keep {
            self.history.remove(0);
        }
    }

    fn predict(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let (_, y) = self.forward(&self.inputs());
        (y * self.scale).clamp(-10.0 * self.scale, 10.0 * self.scale)
    }

    fn reset(&mut self) {
        self.history.clear();
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::mean_squared_error;

    #[test]
    fn initialization_is_deterministic() {
        let a = MlpPredictor::new(3, 4, 0.05, 1.0, 9);
        let b = MlpPredictor::new(3, 4, 0.05, 1.0, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn learns_constant_signal() {
        let mut p = MlpPredictor::new(3, 6, 0.1, 1.0, 1);
        for _ in 0..500 {
            p.observe(0.8);
        }
        assert!((p.predict() - 0.8).abs() < 0.1, "got {}", p.predict());
    }

    #[test]
    fn learns_alternating_signal_better_than_mean() {
        let mut p = MlpPredictor::new(4, 8, 0.08, 1.0, 2);
        let signal: Vec<f64> = (0..400)
            .map(|i| if i % 2 == 0 { 0.9 } else { -0.9 })
            .collect();
        for &x in &signal[..300] {
            p.observe(x);
        }
        // After training, its one-step error on the tail should beat a
        // mean predictor (which would have MSE ≈ 0.81).
        let mut correct = 0;
        for w in signal[300..].windows(2) {
            let pred = p.predict();
            if (pred > 0.0) == (w[1] > 0.0) {
                correct += 1;
            }
            p.observe(w[1]);
        }
        assert!(correct > 80, "only {correct}/99 correct signs");
    }

    #[test]
    fn prediction_is_bounded() {
        let mut p = MlpPredictor::new(3, 4, 0.5, 1.0, 3);
        for i in 0..100 {
            p.observe((i as f64).sin() * 5.0);
        }
        assert!(p.predict().abs() <= 10.0);
    }

    #[test]
    fn empty_history_predicts_zero() {
        assert_eq!(MlpPredictor::new(3, 4, 0.1, 1.0, 4).predict(), 0.0);
    }

    #[test]
    fn reset_clears_history_but_keeps_weights() {
        let mut p = MlpPredictor::new(3, 4, 0.1, 1.0, 5);
        for _ in 0..50 {
            p.observe(0.5);
        }
        let w = p.w2.clone();
        p.reset();
        assert_eq!(p.predict(), 0.0);
        assert_eq!(p.w2, w);
    }

    #[test]
    fn beats_naive_zero_on_smooth_signal() {
        let signal: Vec<f64> = (0..300).map(|i| (i as f64 * 0.2).sin()).collect();
        let mut p = MlpPredictor::new(4, 8, 0.05, 1.0, 6);
        // Pre-train on the signal once.
        for &x in &signal {
            p.observe(x);
        }
        let mse = mean_squared_error(&mut p, &signal);
        // Signal variance is 0.5; the trained net should do better.
        assert!(mse < 0.5, "mse {mse}");
    }
}
