//! Online predictors of driving-profile characteristics (paper §4.2).
//!
//! The DAC'15 controller feeds a one-step-ahead prediction of the
//! propulsion power demand into the RL state. The paper adopts the
//! exponential weighting function (Eq. 12) — [`Ewma`] here — and notes
//! that "other methods such as artificial neural network (ANN) can also
//! be utilized"; this crate additionally provides a windowed
//! [`MovingAverage`], a quantized [`MarkovChain`], and a small online
//! [`MlpPredictor`], all behind the [`Predictor`] trait so they can be
//! swapped in the controller for the predictor ablation.
//!
//! # Examples
//!
//! ```
//! use hev_predict::{Ewma, Predictor};
//!
//! let mut predictor = Ewma::new(0.3);
//! for power_demand in [1_000.0, 2_000.0, 1_500.0] {
//!     predictor.observe(power_demand);
//! }
//! println!("next demand ≈ {:.0} W", predictor.predict());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ensemble;
pub mod ewma;
pub mod horizon;
pub mod markov;
pub mod mlp;
pub mod moving_average;
pub mod traits;

pub use ensemble::Ensemble;
pub use ewma::Ewma;
pub use horizon::Horizon;
pub use markov::MarkovChain;
pub use mlp::MlpPredictor;
pub use moving_average::MovingAverage;
pub use traits::{mean_squared_error, Predictor};
