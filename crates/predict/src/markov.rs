//! First-order Markov-chain predictor over quantized signal levels.

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};

/// Learns a first-order Markov chain over `n` quantized levels of the
/// signal and predicts the expected next level's center value.
///
/// Unseen transitions fall back to a persistence forecast (the current
/// level's center). This is the classic stochastic driver model used by
/// stochastic-DP energy-management papers, packaged as an online
/// predictor.
///
/// # Examples
///
/// ```
/// use hev_predict::{MarkovChain, Predictor};
///
/// let mut p = MarkovChain::new(-10.0, 10.0, 8);
/// for x in [0.0, 5.0, 0.0, 5.0, 0.0] {
///     p.observe(x);
/// }
/// assert!(p.predict().is_finite());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    min: f64,
    max: f64,
    n: usize,
    /// Transition counts, row-major `[from][to]`.
    counts: Vec<u32>,
    last_level: Option<usize>,
}

impl MarkovChain {
    /// Creates a predictor over `n` uniform levels spanning `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `min >= max`.
    pub fn new(min: f64, max: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one level");
        assert!(min < max, "need min < max");
        Self {
            min,
            max,
            n,
            counts: vec![0; n * n],
            last_level: None,
        }
    }

    /// Number of quantization levels.
    pub fn levels(&self) -> usize {
        self.n
    }

    // The negated comparison is deliberate: it routes NaN to level 0.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    fn level_of(&self, x: f64) -> usize {
        if !(x > self.min) {
            return 0;
        }
        if x >= self.max {
            return self.n - 1;
        }
        (((x - self.min) / (self.max - self.min) * self.n as f64) as usize).min(self.n - 1)
    }

    fn center(&self, level: usize) -> f64 {
        let w = (self.max - self.min) / self.n as f64;
        self.min + (level as f64 + 0.5) * w
    }

    /// The learned transition probability `P(to | from)`; `None` if `from`
    /// was never observed.
    pub fn transition_probability(&self, from: usize, to: usize) -> Option<f64> {
        let row = &self.counts[from * self.n..(from + 1) * self.n];
        let total: u32 = row.iter().sum();
        if total == 0 {
            None
        } else {
            Some(row[to] as f64 / total as f64)
        }
    }
}

impl Predictor for MarkovChain {
    fn observe(&mut self, measurement: f64) {
        let level = self.level_of(measurement);
        if let Some(prev) = self.last_level {
            self.counts[prev * self.n + level] += 1;
        }
        self.last_level = Some(level);
    }

    fn predict(&self) -> f64 {
        let Some(current) = self.last_level else {
            return 0.0;
        };
        let row = &self.counts[current * self.n..(current + 1) * self.n];
        let total: u32 = row.iter().sum();
        if total == 0 {
            return self.center(current); // persistence fallback
        }
        row.iter()
            .enumerate()
            .map(|(to, &c)| self.center(to) * c as f64 / total as f64)
            .sum()
    }

    fn reset(&mut self) {
        self.counts.fill(0);
        self.last_level = None;
    }

    fn name(&self) -> &'static str {
        "markov-chain"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unseen_state_predicts_persistence() {
        let mut p = MarkovChain::new(0.0, 10.0, 10);
        p.observe(4.2);
        // Level of 4.2 is bin 4 with center 4.5.
        assert!((p.predict() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn learns_deterministic_alternation() {
        let mut p = MarkovChain::new(0.0, 10.0, 10);
        for _ in 0..50 {
            p.observe(1.0);
            p.observe(9.0);
        }
        // Currently at the 9-level; next is always the 1-level (center 1.5).
        assert!((p.predict() - 1.5).abs() < 1e-9);
        p.observe(1.0);
        assert!((p.predict() - 9.5).abs() < 1e-9);
    }

    #[test]
    fn transition_probabilities_normalize() {
        let mut p = MarkovChain::new(0.0, 10.0, 4);
        for x in [1.0, 4.0, 9.0, 1.0, 4.0, 1.0] {
            p.observe(x);
        }
        let from = 0; // level of 1.0
        let total: f64 = (0..4)
            .map(|to| p.transition_probability(from, to).unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_observation_predicts_zero() {
        assert_eq!(MarkovChain::new(0.0, 1.0, 2).predict(), 0.0);
    }

    #[test]
    fn reset_forgets_everything() {
        let mut p = MarkovChain::new(0.0, 10.0, 4);
        p.observe(1.0);
        p.observe(9.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
        assert!(p.transition_probability(0, 3).is_none());
    }

    #[test]
    fn clamps_out_of_range() {
        let mut p = MarkovChain::new(0.0, 10.0, 5);
        p.observe(-100.0);
        p.observe(100.0);
        // Transition recorded from level 0 to level 4.
        assert_eq!(p.transition_probability(0, 4), Some(1.0));
    }
}
