//! Windowed moving-average predictor.

use crate::traits::Predictor;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Predicts the next value as the mean of the last `window` observations.
///
/// A simple alternative to [`Ewma`](crate::Ewma) with a hard memory
/// horizon instead of an exponential one.
///
/// # Examples
///
/// ```
/// use hev_predict::{MovingAverage, Predictor};
///
/// let mut p = MovingAverage::new(3);
/// for x in [3.0, 6.0, 9.0] {
///     p.observe(x);
/// }
/// assert!((p.predict() - 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingAverage {
    window: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl MovingAverage {
    /// Creates a predictor averaging over the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Self {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0.0,
        }
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }
}

impl Predictor for MovingAverage {
    fn observe(&mut self, measurement: f64) {
        self.buf.push_back(measurement);
        self.sum += measurement;
        while self.buf.len() > self.window {
            let Some(front) = self.buf.pop_front() else {
                break;
            };
            self.sum -= front;
        }
    }

    fn predict(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }

    fn name(&self) -> &'static str {
        "moving-average"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_predicts_zero() {
        assert_eq!(MovingAverage::new(4).predict(), 0.0);
    }

    #[test]
    fn partial_window_averages_what_it_has() {
        let mut p = MovingAverage::new(10);
        p.observe(2.0);
        p.observe(4.0);
        assert!((p.predict() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn full_window_slides() {
        let mut p = MovingAverage::new(2);
        for x in [1.0, 2.0, 3.0, 4.0] {
            p.observe(x);
        }
        assert!((p.predict() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut p = MovingAverage::new(2);
        p.observe(100.0);
        p.reset();
        assert_eq!(p.predict(), 0.0);
    }

    #[test]
    fn long_run_sum_stays_accurate() {
        let mut p = MovingAverage::new(5);
        for i in 0..10_000 {
            p.observe((i % 7) as f64);
        }
        let tail: f64 = (9_995..10_000).map(|i| (i % 7) as f64).sum::<f64>() / 5.0;
        assert!((p.predict() - tail).abs() < 1e-9);
    }
}
