//! Property-based tests of the RL toolkit's invariants.

use hev_rl::{
    CustomBins, EligibilityTraces, EpsilonGreedy, ExplorationPolicy, ProductSpace, QTable,
    Schedule, TdLambda, TdLambdaConfig, TraceKind, UniformGrid,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Every input maps to a valid bin, and bin centers map to their own
    /// bin.
    #[test]
    fn uniform_grid_total_and_consistent(
        min in -1e6f64..1e6,
        width in 1e-3f64..1e6,
        n in 1usize..200,
        x in -1e7f64..1e7,
    ) {
        let g = UniformGrid::new(min, min + width, n);
        prop_assert!(g.index(x) < n);
        for i in 0..n {
            prop_assert_eq!(g.index(g.center(i)), i);
        }
    }

    /// Bin index is monotone in the input.
    #[test]
    fn uniform_grid_monotone(
        a in -1e6f64..1e6,
        b in -1e6f64..1e6,
        n in 1usize..100,
    ) {
        let g = UniformGrid::new(-1e6, 1e6, n);
        if a <= b {
            prop_assert!(g.index(a) <= g.index(b));
        } else {
            prop_assert!(g.index(a) >= g.index(b));
        }
    }

    /// Custom bins partition the real line: the index is monotone and
    /// jumps exactly at the edges.
    #[test]
    fn custom_bins_partition(raw in proptest::collection::vec(-1e6f64..1e6, 1..20)) {
        let mut edges = raw;
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        edges.dedup();
        // Ensure strict separation survives the 1e-9 probe below.
        edges.dedup_by(|b, a| (*b - *a).abs() < 1e-6);
        let bins = CustomBins::new(edges.clone());
        for (i, &e) in edges.iter().enumerate() {
            prop_assert_eq!(bins.index(e), i + 1);
            prop_assert_eq!(bins.index(e - 1e-9), i);
        }
    }

    /// Flatten/unflatten is a bijection.
    #[test]
    fn product_space_bijection(dims in proptest::collection::vec(1usize..6, 1..5)) {
        let space = ProductSpace::new(dims);
        for flat in 0..space.len() {
            prop_assert_eq!(space.flatten(&space.unflatten(flat)), flat);
        }
    }

    /// Trace decay never increases eligibility, and the list never
    /// exceeds its capacity.
    #[test]
    fn traces_bounded(
        visits in proptest::collection::vec((0usize..30, 0usize..4), 1..60),
        factor in 0.1f64..0.99,
        cap in 1usize..20,
    ) {
        let mut t = EligibilityTraces::new(cap, TraceKind::Accumulating);
        let mut last_max = f64::INFINITY;
        for (s, a) in visits {
            t.visit(s, a);
            prop_assert!(t.len() <= cap);
            let max_e = t.iter().map(|(_, _, e)| e).fold(0.0, f64::max);
            t.decay(factor);
            let max_after = t.iter().map(|(_, _, e)| e).fold(0.0, f64::max);
            prop_assert!(max_after <= max_e + 1e-12);
            last_max = max_after.min(last_max);
        }
    }

    /// Q-table argmax always returns an eligible action.
    #[test]
    fn argmax_respects_mask(
        values in proptest::collection::vec(-100.0f64..100.0, 5),
        mask_bits in 1u8..31,
    ) {
        let mut q = QTable::new(1, 5, 0.0);
        for (a, &v) in values.iter().enumerate() {
            q.set(0, a, v);
        }
        let mask: Vec<bool> = (0..5).map(|a| mask_bits & (1 << a) != 0).collect();
        let chosen = q.argmax(0, Some(&mask));
        prop_assert!(mask[chosen]);
        // And it is maximal among eligible actions.
        for (a, &ok) in mask.iter().enumerate() {
            if ok {
                prop_assert!(values[chosen] >= values[a]);
            }
        }
    }

    /// ε-greedy never selects a masked action, for any ε.
    #[test]
    fn epsilon_greedy_respects_mask(
        eps in 0.0f64..1.0,
        mask_bits in 1u8..15,
        seed in 0u64..1000,
    ) {
        let policy = EpsilonGreedy::new(eps);
        let q_row = [1.0, -2.0, 3.0, 0.5];
        let mask: Vec<bool> = (0..4).map(|a| mask_bits & (1 << a) != 0).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            prop_assert!(mask[policy.select(&q_row, &mask, &mut rng)]);
        }
    }

    /// TD(λ) with zero reward everywhere keeps Q at its initialization.
    #[test]
    fn td_lambda_zero_rewards_are_fixed_point(
        transitions in proptest::collection::vec((0usize..10, 0usize..3, 0usize..10), 1..50),
        q_init in -5.0f64..5.0,
    ) {
        let mut learner = TdLambda::new(
            10,
            3,
            TdLambdaConfig { q_init, ..TdLambdaConfig::default() },
        );
        for (s, a, s_next) in transitions {
            // δ = 0 + γ·q_init − q_init ≠ 0 in general… only with the
            // *undiscounted* fixed point. Use reward that exactly offsets:
            let r = q_init - learner.config().gamma * q_init;
            learner.update(s, a, r, s_next, None);
            // Every entry stays at q_init.
            prop_assert!((learner.q().get(s, a) - q_init).abs() < 1e-9);
        }
    }

    /// Schedules never go below their floor.
    #[test]
    fn schedules_respect_floor(
        initial in 0.01f64..2.0,
        decay in 0.5f64..0.999,
        tau in 1.0f64..100.0,
        k in 0usize..10_000,
    ) {
        let floor = initial * 0.1;
        let e = Schedule::Exponential { initial, decay, floor };
        let h = Schedule::Harmonic { initial, tau, floor };
        prop_assert!(e.at(k) >= floor - 1e-12);
        prop_assert!(h.at(k) >= floor - 1e-12);
        prop_assert!(e.at(k) <= initial + 1e-12);
        prop_assert!(h.at(k) <= initial + 1e-12);
    }
}
