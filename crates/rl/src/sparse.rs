//! Sparse (hash-map-backed) action-value storage for very large state
//! spaces.
//!
//! The dense [`QTable`](crate::QTable) allocates `n_states × n_actions`
//! entries up front — fine for the paper's ~10⁴-state spaces, wasteful
//! for finer discretizations (a 10⁶-state space at 15 actions is 120 MB
//! dense but only as large as its visited set here).
//!
//! Storage is a `BTreeMap`, not a `HashMap`: every iteration and
//! serialization path walks entries in `(state, action)` key order, so
//! snapshots and diagnostics are bit-identical regardless of insertion
//! order or hasher seed (`hevlint`'s `determinism::hash-collection` rule
//! enforces this workspace-wide).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A sparse `Q(s, a)` table: unvisited entries read as the default value
/// and consume no memory.
///
/// # Examples
///
/// ```
/// use hev_rl::SparseQTable;
///
/// let mut q = SparseQTable::new(4, -1.0);
/// assert_eq!(q.get(1_000_000, 2), -1.0); // default, no allocation
/// q.set(1_000_000, 2, 0.5);
/// assert_eq!(q.get(1_000_000, 2), 0.5);
/// assert_eq!(q.stored_entries(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseQTable {
    n_actions: usize,
    default: f64,
    entries: BTreeMap<(usize, usize), f64>,
    visits: BTreeMap<(usize, usize), u32>,
}

impl SparseQTable {
    /// Creates a table with the given action count; every entry reads as
    /// `default` until written.
    ///
    /// # Panics
    ///
    /// Panics if `n_actions == 0`.
    pub fn new(n_actions: usize, default: f64) -> Self {
        assert!(n_actions > 0, "need at least one action");
        Self {
            n_actions,
            default,
            entries: BTreeMap::new(),
            visits: BTreeMap::new(),
        }
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    /// The default (unwritten) value.
    pub fn default_value(&self) -> f64 {
        self.default
    }

    /// Number of explicitly stored entries.
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// The value `Q(s, a)`.
    pub fn get(&self, s: usize, a: usize) -> f64 {
        debug_assert!(a < self.n_actions);
        *self.entries.get(&(s, a)).unwrap_or(&self.default)
    }

    /// Sets `Q(s, a)`.
    pub fn set(&mut self, s: usize, a: usize, value: f64) {
        debug_assert!(a < self.n_actions);
        self.entries.insert((s, a), value);
    }

    /// Adds `delta` to `Q(s, a)`.
    pub fn add(&mut self, s: usize, a: usize, delta: f64) {
        let v = self.get(s, a);
        self.set(s, a, v + delta);
    }

    /// The greedy action in state `s`, restricted to `mask`; ties break
    /// low. Matches [`QTable::argmax`](crate::QTable::argmax).
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and no action is eligible.
    pub fn argmax(&self, s: usize, mask: Option<&[bool]>) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for a in 0..self.n_actions {
            if let Some(m) = mask {
                if !m[a] {
                    continue;
                }
            }
            let v = self.get(s, a);
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        // hevlint::allow(panic, documented invariant: see the # Panics section; masks come from the action-feasibility layer which always leaves one action)
        best.expect("at least one action must be eligible").0
    }

    /// The maximum action value in state `s`, restricted to `mask`.
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and no action is eligible.
    pub fn max(&self, s: usize, mask: Option<&[bool]>) -> f64 {
        let a = self.argmax(s, mask);
        self.get(s, a)
    }

    /// Records a visit to `(s, a)`.
    pub fn visit(&mut self, s: usize, a: usize) {
        *self.visits.entry((s, a)).or_insert(0) += 1;
    }

    /// How many times `(s, a)` was visited.
    pub fn visit_count(&self, s: usize, a: usize) -> u32 {
        *self.visits.get(&(s, a)).unwrap_or(&0)
    }

    /// Number of state-action pairs visited at least once.
    pub fn coverage(&self) -> usize {
        self.visits.len()
    }

    /// Iterates the explicitly stored entries in ascending
    /// `(state, action)` order.
    ///
    /// The order is deterministic (BTreeMap key order), so snapshot and
    /// export paths that walk the table produce identical output for
    /// identical contents, independent of write order.
    pub fn iter_entries(&self) -> impl Iterator<Item = ((usize, usize), f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates the visited `(state, action)` pairs and their counts in
    /// ascending key order.
    pub fn iter_visits(&self) -> impl Iterator<Item = ((usize, usize), u32)> + '_ {
        self.visits.iter().map(|(&k, &v)| (k, v))
    }

    /// The greedy action among visited eligible actions, or `None`.
    pub fn argmax_visited(&self, s: usize, mask: Option<&[bool]>) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for a in 0..self.n_actions {
            if let Some(m) = mask {
                if !m[a] {
                    continue;
                }
            }
            if self.visit_count(s, a) == 0 {
                continue;
            }
            let v = self.get(s, a);
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        best.map(|(a, _)| a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qtable::QTable;

    #[test]
    fn default_until_written() {
        let q = SparseQTable::new(3, -2.5);
        assert_eq!(q.get(99, 1), -2.5);
        assert_eq!(q.stored_entries(), 0);
    }

    #[test]
    fn set_add_roundtrip() {
        let mut q = SparseQTable::new(2, 0.0);
        q.add(7, 1, 3.0);
        q.add(7, 1, -1.0);
        assert_eq!(q.get(7, 1), 2.0);
        assert_eq!(q.stored_entries(), 1);
    }

    #[test]
    fn argmax_matches_dense_semantics() {
        let mut sparse = SparseQTable::new(4, 0.0);
        let mut dense = QTable::new(10, 4, 0.0);
        let writes = [
            (3usize, 2usize, 5.0f64),
            (3, 1, -1.0),
            (3, 0, 5.0),
            (9, 3, 0.1),
        ];
        for &(s, a, v) in &writes {
            sparse.set(s, a, v);
            dense.set(s, a, v);
        }
        for s in [3usize, 9, 5] {
            assert_eq!(sparse.argmax(s, None), dense.argmax(s, None), "state {s}");
            assert_eq!(sparse.max(s, None), dense.max(s, None));
        }
        let mask = [false, true, true, false];
        assert_eq!(sparse.argmax(3, Some(&mask)), dense.argmax(3, Some(&mask)));
    }

    #[test]
    fn visits_and_visited_argmax() {
        let mut q = SparseQTable::new(3, 0.0);
        assert_eq!(q.argmax_visited(0, None), None);
        q.set(0, 2, -5.0);
        q.visit(0, 2);
        assert_eq!(q.argmax_visited(0, None), Some(2));
        assert_eq!(q.visit_count(0, 2), 1);
        assert_eq!(q.coverage(), 1);
    }

    #[test]
    fn memory_stays_proportional_to_writes() {
        let mut q = SparseQTable::new(15, 0.0);
        for s in (0..1_000_000).step_by(100_000) {
            q.set(s, 0, 1.0);
        }
        assert_eq!(q.stored_entries(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn argmax_needs_eligible_action() {
        SparseQTable::new(2, 0.0).argmax(0, Some(&[false, false]));
    }

    #[test]
    fn iteration_order_is_sorted_and_insertion_independent() {
        let writes = [(9usize, 1usize, -0.25f64), (2, 0, 0.5), (9, 0, 1.0)];
        let mut fwd = SparseQTable::new(2, 0.0);
        let mut rev = SparseQTable::new(2, 0.0);
        for &(s, a, v) in &writes {
            fwd.set(s, a, v);
            fwd.visit(s, a);
        }
        for &(s, a, v) in writes.iter().rev() {
            rev.set(s, a, v);
            rev.visit(s, a);
        }
        let order: Vec<_> = fwd.iter_entries().collect();
        assert_eq!(
            order,
            vec![((2, 0), 0.5), ((9, 0), 1.0), ((9, 1), -0.25)],
            "entries iterate in (state, action) order"
        );
        assert_eq!(order, rev.iter_entries().collect::<Vec<_>>());
        assert_eq!(
            fwd.iter_visits().collect::<Vec<_>>(),
            rev.iter_visits().collect::<Vec<_>>()
        );
    }
}
