//! Hyper-parameter schedules (learning rate and exploration over
//! training time).

use serde::{Deserialize, Serialize};

/// A scalar schedule over episode indices.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// A constant value.
    Constant(f64),
    /// Exponential decay `v₀·d^k`, floored.
    Exponential {
        /// Initial value.
        initial: f64,
        /// Per-episode multiplicative decay in `(0, 1]`.
        decay: f64,
        /// Lower bound.
        floor: f64,
    },
    /// Harmonic decay `v₀ / (1 + k/τ)`, floored — the classic
    /// stochastic-approximation schedule.
    Harmonic {
        /// Initial value.
        initial: f64,
        /// Time constant `τ` in episodes.
        tau: f64,
        /// Lower bound.
        floor: f64,
    },
}

impl Schedule {
    /// The value at episode `k` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if the schedule's parameters are invalid.
    pub fn at(&self, k: usize) -> f64 {
        match *self {
            Schedule::Constant(v) => {
                assert!(v.is_finite(), "constant must be finite");
                v
            }
            Schedule::Exponential {
                initial,
                decay,
                floor,
            } => {
                assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
                (initial * decay.powi(k as i32)).max(floor)
            }
            Schedule::Harmonic {
                initial,
                tau,
                floor,
            } => {
                assert!(tau > 0.0, "tau must be positive");
                (initial / (1.0 + k as f64 / tau)).max(floor)
            }
        }
    }

    /// The episode index after which the schedule first reaches (or
    /// passes) its floor; `None` for constants or never-floored
    /// schedules.
    pub fn episodes_to_floor(&self) -> Option<usize> {
        match *self {
            Schedule::Constant(_) => None,
            Schedule::Exponential {
                initial,
                decay,
                floor,
            } => {
                if floor <= 0.0 || initial <= floor || decay >= 1.0 {
                    return None;
                }
                // hevlint::allow(float::lossy-cast, episode count: constructor validation keeps initial > floor > 0 and 0 < decay < 1, so the ceil is a small positive integer)
                Some(((floor / initial).ln() / decay.ln()).ceil() as usize)
            }
            Schedule::Harmonic {
                initial,
                tau,
                floor,
            } => {
                if floor <= 0.0 || initial <= floor {
                    return None;
                }
                // hevlint::allow(float::lossy-cast, episode count: constructor validation keeps initial > floor > 0 and tau > 0, so the ceil is a small positive integer)
                Some(((initial / floor - 1.0) * tau).ceil() as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant(0.1);
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(1_000), 0.1);
        assert_eq!(s.episodes_to_floor(), None);
    }

    #[test]
    fn exponential_decays_to_floor() {
        let s = Schedule::Exponential {
            initial: 1.0,
            decay: 0.5,
            floor: 0.1,
        };
        assert_eq!(s.at(0), 1.0);
        assert_eq!(s.at(1), 0.5);
        assert_eq!(s.at(10), 0.1);
        let k = s.episodes_to_floor().unwrap();
        assert!(s.at(k) <= 0.1 + 1e-12);
        assert!(s.at(k.saturating_sub(1)) > 0.1);
    }

    #[test]
    fn harmonic_halves_at_tau() {
        let s = Schedule::Harmonic {
            initial: 0.2,
            tau: 50.0,
            floor: 0.0,
        };
        assert!((s.at(50) - 0.1).abs() < 1e-12);
        assert!(s.at(0) > s.at(10));
    }

    #[test]
    fn harmonic_floor_reached() {
        let s = Schedule::Harmonic {
            initial: 1.0,
            tau: 10.0,
            floor: 0.25,
        };
        let k = s.episodes_to_floor().unwrap();
        assert_eq!(k, 30);
        assert_eq!(s.at(40), 0.25);
    }

    #[test]
    fn schedules_are_monotone_nonincreasing() {
        for s in [
            Schedule::Exponential {
                initial: 0.5,
                decay: 0.9,
                floor: 0.01,
            },
            Schedule::Harmonic {
                initial: 0.5,
                tau: 20.0,
                floor: 0.01,
            },
        ] {
            let mut prev = f64::INFINITY;
            for k in 0..200 {
                let v = s.at(k);
                assert!(v <= prev + 1e-15);
                prev = v;
            }
        }
    }
}
