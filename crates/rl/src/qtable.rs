//! Dense tabular action-value storage.

use serde::{Deserialize, Serialize};

/// A dense `Q(s, a)` table with visit counting.
///
/// # Examples
///
/// ```
/// use hev_rl::QTable;
///
/// let mut q = QTable::new(10, 4, 0.0);
/// q.set(3, 2, 1.5);
/// assert_eq!(q.get(3, 2), 1.5);
/// assert_eq!(q.argmax(3, None), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QTable {
    n_states: usize,
    n_actions: usize,
    q: Vec<f64>,
    visits: Vec<u32>,
}

impl QTable {
    /// Creates a table with every entry initialized to `init`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(n_states: usize, n_actions: usize, init: f64) -> Self {
        assert!(
            n_states > 0 && n_actions > 0,
            "table dimensions must be positive"
        );
        Self {
            n_states,
            n_actions,
            q: vec![init; n_states * n_actions],
            visits: vec![0; n_states * n_actions],
        }
    }

    /// Number of states.
    pub fn n_states(&self) -> usize {
        self.n_states
    }

    /// Number of actions.
    pub fn n_actions(&self) -> usize {
        self.n_actions
    }

    #[inline]
    fn idx(&self, s: usize, a: usize) -> usize {
        debug_assert!(s < self.n_states && a < self.n_actions);
        s * self.n_actions + a
    }

    /// The value `Q(s, a)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the indices are out of range.
    #[inline]
    pub fn get(&self, s: usize, a: usize) -> f64 {
        self.q[self.idx(s, a)]
    }

    /// Sets `Q(s, a)`.
    #[inline]
    pub fn set(&mut self, s: usize, a: usize, value: f64) {
        let i = self.idx(s, a);
        self.q[i] = value;
    }

    /// Adds `delta` to `Q(s, a)`.
    #[inline]
    pub fn add(&mut self, s: usize, a: usize, delta: f64) {
        let i = self.idx(s, a);
        self.q[i] += delta;
    }

    /// The action-value row of state `s`.
    pub fn row(&self, s: usize) -> &[f64] {
        &self.q[s * self.n_actions..(s + 1) * self.n_actions]
    }

    /// The greedy action in state `s`, restricted to `mask` (an action is
    /// eligible where `mask[a]` is true). With no mask all actions are
    /// eligible. Ties break toward the lowest index.
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and no action is eligible.
    pub fn argmax(&self, s: usize, mask: Option<&[bool]>) -> usize {
        let row = self.row(s);
        let mut best: Option<(usize, f64)> = None;
        for (a, &v) in row.iter().enumerate() {
            if let Some(m) = mask {
                if !m[a] {
                    continue;
                }
            }
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        // hevlint::allow(panic, documented invariant: see the # Panics section; masks come from the action-feasibility layer which always leaves one action)
        best.expect("at least one action must be eligible").0
    }

    /// The maximum action value in state `s`, restricted to `mask`.
    ///
    /// # Panics
    ///
    /// Panics if a mask is given and no action is eligible.
    pub fn max(&self, s: usize, mask: Option<&[bool]>) -> f64 {
        let a = self.argmax(s, mask);
        self.get(s, a)
    }

    /// The greedy action among *visited* eligible actions, or `None` if
    /// no eligible action has been visited. With pessimistic true values
    /// (all rewards negative) and zero initialization, unvisited entries
    /// look spuriously attractive; greedy evaluation uses this to avoid
    /// them.
    pub fn argmax_visited(&self, s: usize, mask: Option<&[bool]>) -> Option<usize> {
        let row = self.row(s);
        let mut best: Option<(usize, f64)> = None;
        for (a, &v) in row.iter().enumerate() {
            if let Some(m) = mask {
                if !m[a] {
                    continue;
                }
            }
            if self.visit_count(s, a) == 0 {
                continue;
            }
            if best.is_none_or(|(_, bv)| v > bv) {
                best = Some((a, v));
            }
        }
        best.map(|(a, _)| a)
    }

    /// Records a visit to `(s, a)`, saturating at `u32::MAX`.
    pub fn visit(&mut self, s: usize, a: usize) {
        let i = self.idx(s, a);
        self.visits[i] = self.visits[i].saturating_add(1);
    }

    /// How many times `(s, a)` was visited.
    pub fn visit_count(&self, s: usize, a: usize) -> u32 {
        self.visits[self.idx(s, a)]
    }

    /// Number of state-action pairs visited at least once.
    pub fn coverage(&self) -> usize {
        self.visits.iter().filter(|&&v| v > 0).count()
    }

    /// Total visit count summed over every state-action pair.
    pub fn visits_total(&self) -> u64 {
        self.visits.iter().map(|&v| u64::from(v)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_initializes_all_entries() {
        let q = QTable::new(3, 2, -1.5);
        for s in 0..3 {
            for a in 0..2 {
                assert_eq!(q.get(s, a), -1.5);
            }
        }
    }

    #[test]
    fn set_add_get_roundtrip() {
        let mut q = QTable::new(4, 3, 0.0);
        q.set(2, 1, 5.0);
        q.add(2, 1, -2.0);
        assert_eq!(q.get(2, 1), 3.0);
        assert_eq!(q.get(2, 0), 0.0);
    }

    #[test]
    fn argmax_without_mask() {
        let mut q = QTable::new(1, 4, 0.0);
        q.set(0, 2, 3.0);
        q.set(0, 3, 1.0);
        assert_eq!(q.argmax(0, None), 2);
        assert_eq!(q.max(0, None), 3.0);
    }

    #[test]
    fn argmax_respects_mask() {
        let mut q = QTable::new(1, 4, 0.0);
        q.set(0, 2, 3.0);
        q.set(0, 1, 2.0);
        let mask = [true, true, false, true];
        assert_eq!(q.argmax(0, Some(&mask)), 1);
    }

    #[test]
    fn argmax_ties_break_low() {
        let q = QTable::new(1, 4, 7.0);
        assert_eq!(q.argmax(0, None), 0);
    }

    #[test]
    #[should_panic(expected = "at least one action")]
    fn argmax_panics_on_empty_mask() {
        let q = QTable::new(1, 2, 0.0);
        q.argmax(0, Some(&[false, false]));
    }

    #[test]
    fn visits_and_coverage() {
        let mut q = QTable::new(2, 2, 0.0);
        assert_eq!(q.coverage(), 0);
        q.visit(0, 1);
        q.visit(0, 1);
        q.visit(1, 0);
        assert_eq!(q.visit_count(0, 1), 2);
        assert_eq!(q.coverage(), 2);
    }

    #[test]
    fn row_slices_correctly() {
        let mut q = QTable::new(2, 3, 0.0);
        q.set(1, 0, 9.0);
        assert_eq!(q.row(1), &[9.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dimension_rejected() {
        QTable::new(0, 3, 0.0);
    }
}
