//! Eligibility traces for TD(λ).
//!
//! The paper (§4.3.4) keeps only a list of the `M` most recent
//! state-action pairs: the eligibility of everything older is at most
//! `λ^M`, which is negligible for a large enough `M`. This module
//! implements exactly that bounded-list scheme.

use serde::{Deserialize, Serialize};

/// How a revisited state-action pair's eligibility is updated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// `e ← e + 1` (the paper's Algorithm 1, line 6).
    Accumulating,
    /// `e ← 1` (often more stable on cyclic state visits).
    Replacing,
}

/// A bounded list of eligibility traces over state-action pairs.
///
/// # Examples
///
/// ```
/// use hev_rl::{EligibilityTraces, TraceKind};
///
/// let mut traces = EligibilityTraces::new(8, TraceKind::Accumulating);
/// traces.visit(3, 1);
/// traces.decay(0.9);
/// let entries: Vec<_> = traces.iter().collect();
/// assert_eq!(entries, [(3, 1, 0.9)]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EligibilityTraces {
    /// Most recent pairs last.
    entries: Vec<(usize, usize, f64)>,
    max_len: usize,
    kind: TraceKind,
}

/// Traces below this value are dropped.
const TRACE_FLOOR: f64 = 1e-6;

impl EligibilityTraces {
    /// Creates an empty trace list keeping at most `max_len` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `max_len == 0`.
    pub fn new(max_len: usize, kind: TraceKind) -> Self {
        assert!(max_len > 0, "max_len must be positive");
        Self {
            entries: Vec::with_capacity(max_len),
            max_len,
            kind,
        }
    }

    /// The configured capacity `M`.
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// The trace-update rule.
    pub fn kind(&self) -> TraceKind {
        self.kind
    }

    /// Number of currently traced pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no pairs are traced.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Marks `(s, a)` as just visited (Algorithm 1, line 6). If the list
    /// is full, the oldest pair is evicted.
    pub fn visit(&mut self, s: usize, a: usize) {
        if let Some(pos) = self
            .entries
            .iter()
            .position(|&(es, ea, _)| es == s && ea == a)
        {
            let (_, _, e) = self.entries.remove(pos);
            let e_new = match self.kind {
                TraceKind::Accumulating => e + 1.0,
                TraceKind::Replacing => 1.0,
            };
            self.entries.push((s, a, e_new));
        } else {
            if self.entries.len() == self.max_len {
                self.entries.remove(0);
            }
            self.entries.push((s, a, 1.0));
        }
    }

    /// Multiplies every trace by `factor` (= `γ·λ`, Algorithm 1 line 9)
    /// and drops traces that become negligible.
    pub fn decay(&mut self, factor: f64) {
        for entry in &mut self.entries {
            entry.2 *= factor;
        }
        self.entries.retain(|&(_, _, e)| e >= TRACE_FLOOR);
    }

    /// Clears all traces (between episodes, or on Watkins cuts after an
    /// exploratory action).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(state, action, eligibility)`, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_sets_unit_trace() {
        let mut t = EligibilityTraces::new(4, TraceKind::Accumulating);
        t.visit(1, 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), [(1, 2, 1.0)]);
    }

    #[test]
    fn accumulating_revisit_increments() {
        let mut t = EligibilityTraces::new(4, TraceKind::Accumulating);
        t.visit(1, 2);
        t.decay(0.5);
        t.visit(1, 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), [(1, 2, 1.5)]);
    }

    #[test]
    fn replacing_revisit_resets() {
        let mut t = EligibilityTraces::new(4, TraceKind::Replacing);
        t.visit(1, 2);
        t.decay(0.5);
        t.visit(1, 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), [(1, 2, 1.0)]);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = EligibilityTraces::new(2, TraceKind::Accumulating);
        t.visit(0, 0);
        t.visit(1, 0);
        t.visit(2, 0);
        let states: Vec<_> = t.iter().map(|(s, _, _)| s).collect();
        assert_eq!(states, [1, 2]);
    }

    #[test]
    fn decay_drops_negligible() {
        let mut t = EligibilityTraces::new(4, TraceKind::Accumulating);
        t.visit(0, 0);
        for _ in 0..100 {
            t.decay(0.5);
        }
        assert!(t.is_empty());
    }

    #[test]
    fn decay_is_multiplicative() {
        let mut t = EligibilityTraces::new(4, TraceKind::Accumulating);
        t.visit(0, 0);
        t.decay(0.9);
        t.decay(0.9);
        let e = t.iter().next().unwrap().2;
        assert!((e - 0.81).abs() < 1e-12);
    }

    #[test]
    fn clear_empties() {
        let mut t = EligibilityTraces::new(4, TraceKind::Accumulating);
        t.visit(0, 0);
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn revisit_moves_to_back() {
        let mut t = EligibilityTraces::new(3, TraceKind::Replacing);
        t.visit(0, 0);
        t.visit(1, 0);
        t.visit(0, 0); // refresh
        t.visit(2, 0);
        t.visit(3, 0); // evicts (1,0), the oldest
        let states: Vec<_> = t.iter().map(|(s, _, _)| s).collect();
        assert_eq!(states, [0, 2, 3]);
    }
}
