//! Tabular reinforcement learning for the HEV joint-control problem.
//!
//! This crate provides the generic RL machinery the DAC'15 controller is
//! built on:
//!
//! * [`UniformGrid`], [`CustomBins`], [`ProductSpace`] — state/action
//!   discretization (Eq. 13–15 of the paper);
//! * [`QTable`] — dense action-value storage with visit counting;
//! * [`EligibilityTraces`] — the paper's bounded list of the `M` most
//!   recent state-action pairs (§4.3.4);
//! * [`TdLambda`] — Algorithm 1, the TD(λ)-learning update;
//! * [`QLearning`], [`Sarsa`], [`DoubleQ`] — one-step learners for
//!   baselines and ablations;
//! * [`Greedy`], [`EpsilonGreedy`], [`DecayingEpsilon`], [`Softmax`] —
//!   exploration-versus-exploitation policies.
//!
//! # Examples
//!
//! ```
//! use hev_rl::{EpsilonGreedy, TdLambda, TdLambdaConfig};
//! use rand::SeedableRng;
//!
//! let mut agent = TdLambda::new(100, 5, TdLambdaConfig::default());
//! let policy = EpsilonGreedy::new(0.1);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mask = [true; 5];
//! let mut state = 0;
//! for step in 0..50 {
//!     let action = agent.select(state, &mask, &policy, &mut rng);
//!     let (reward, next) = ((action == 2) as u8 as f64, (state + 1) % 100);
//!     agent.update(state, action, reward, next, Some(&mask));
//!     state = next;
//!     let _ = step;
//! }
//! agent.end_episode();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod discretize;
pub mod double_q;
pub mod expected_sarsa;
pub mod monte_carlo;
pub mod policy;
pub mod q_learning;
pub mod qtable;
pub mod sarsa;
pub mod schedule;
pub mod sparse;
pub mod stats;
pub mod td_lambda;
pub mod traces;

pub use discretize::{CustomBins, ProductSpace, UniformGrid};
pub use double_q::DoubleQ;
pub use expected_sarsa::ExpectedSarsa;
pub use monte_carlo::MonteCarlo;
pub use policy::{ucb_select, DecayingEpsilon, EpsilonGreedy, ExplorationPolicy, Greedy, Softmax};
pub use q_learning::{OneStepConfig, QLearning};
pub use qtable::QTable;
pub use sarsa::Sarsa;
pub use schedule::Schedule;
pub use sparse::SparseQTable;
pub use stats::{QStats, TdStats, TD_ABS_DELTA_BOUNDS};
pub use td_lambda::{TdLambda, TdLambdaConfig};
pub use traces::{EligibilityTraces, TraceKind};
