//! Discretization of continuous observations into finite state indices.
//!
//! The paper's state space (Eq. 13–14) is built by discretizing the
//! propulsion power demand, vehicle speed, battery charge, and prediction
//! into finite level sets. [`UniformGrid`] and [`CustomBins`] map a
//! continuous value to a level index; [`ProductSpace`] flattens a tuple of
//! level indices into a single table index.

use serde::{Deserialize, Serialize};

/// Uniformly spaced bins over `[min, max]`, clamping out-of-range values
/// to the boundary bins.
///
/// # Examples
///
/// ```
/// use hev_rl::UniformGrid;
///
/// let grid = UniformGrid::new(0.0, 10.0, 5);
/// assert_eq!(grid.index(-3.0), 0);   // clamped
/// assert_eq!(grid.index(9.99), 4);
/// assert_eq!(grid.len(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformGrid {
    min: f64,
    max: f64,
    n: usize,
}

impl UniformGrid {
    /// Creates a grid of `n` bins over `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `min >= max`, or the bounds are not finite.
    pub fn new(min: f64, max: f64, n: usize) -> Self {
        assert!(n > 0, "need at least one bin");
        assert!(
            min.is_finite() && max.is_finite() && min < max,
            "need finite min < max"
        );
        Self { min, max, n }
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the grid has no bins (never true for a constructed grid).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Bin index of `x`, clamped to `[0, len-1]`. NaN maps to bin 0.
    // The negated comparison is deliberate: it routes NaN to bin 0.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    pub fn index(&self, x: f64) -> usize {
        if !(x > self.min) {
            return 0;
        }
        if x >= self.max {
            return self.n - 1;
        }
        let f = (x - self.min) / (self.max - self.min);
        ((f * self.n as f64) as usize).min(self.n - 1)
    }

    /// Center value of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn center(&self, i: usize) -> f64 {
        assert!(i < self.n, "bin {i} out of range");
        let w = (self.max - self.min) / self.n as f64;
        self.min + (i as f64 + 0.5) * w
    }
}

/// Bins delimited by an explicit, strictly increasing edge list.
///
/// `n` edges define `n + 1` bins: `(-∞, e0), [e0, e1), …, [e(n-1), ∞)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CustomBins {
    edges: Vec<f64>,
}

impl CustomBins {
    /// Creates bins from strictly increasing edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "need at least one edge");
        assert!(
            edges.windows(2).all(|w| w[1] > w[0]),
            "edges must be strictly increasing"
        );
        Self { edges }
    }

    /// Number of bins (`edges + 1`).
    pub fn len(&self) -> usize {
        self.edges.len() + 1
    }

    /// Whether there are no bins (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Bin index of `x`.
    pub fn index(&self, x: f64) -> usize {
        self.edges.partition_point(|&e| e <= x)
    }
}

/// Flattens a tuple of per-dimension level indices into a single index
/// (row-major: the **last** dimension varies fastest).
///
/// # Examples
///
/// ```
/// use hev_rl::ProductSpace;
///
/// let space = ProductSpace::new(vec![3, 4, 5]);
/// assert_eq!(space.len(), 60);
/// let flat = space.flatten(&[2, 1, 3]);
/// assert_eq!(space.unflatten(flat), vec![2, 1, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductSpace {
    dims: Vec<usize>,
}

impl ProductSpace {
    /// Creates a product space from per-dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or the space is empty.
    pub fn new(dims: Vec<usize>) -> Self {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d > 0), "dimensions must be positive");
        Self { dims }
    }

    /// Per-dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// Whether the space is empty (never true for a constructed space).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flattens per-dimension indices into a single index.
    ///
    /// # Panics
    ///
    /// Panics if the index count or any index is out of range.
    pub fn flatten(&self, indices: &[usize]) -> usize {
        assert_eq!(indices.len(), self.dims.len(), "dimension count mismatch");
        let mut flat = 0;
        for (i, (&idx, &dim)) in indices.iter().zip(&self.dims).enumerate() {
            assert!(
                idx < dim,
                "index {idx} out of range for dimension {i} (size {dim})"
            );
            flat = flat * dim + idx;
        }
        flat
    }

    /// Recovers per-dimension indices from a flat index.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is out of range.
    pub fn unflatten(&self, flat: usize) -> Vec<usize> {
        assert!(flat < self.len(), "flat index out of range");
        let mut rem = flat;
        let mut out = vec![0; self.dims.len()];
        for (i, &dim) in self.dims.iter().enumerate().rev() {
            out[i] = rem % dim;
            rem /= dim;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_grid_covers_range() {
        let g = UniformGrid::new(-10.0, 10.0, 4);
        assert_eq!(g.index(-10.0), 0);
        assert_eq!(g.index(-5.1), 0);
        assert_eq!(g.index(-4.9), 1);
        assert_eq!(g.index(0.1), 2);
        assert_eq!(g.index(9.9), 3);
        assert_eq!(g.index(10.0), 3);
    }

    #[test]
    fn uniform_grid_clamps() {
        let g = UniformGrid::new(0.0, 1.0, 10);
        assert_eq!(g.index(-100.0), 0);
        assert_eq!(g.index(100.0), 9);
        assert_eq!(g.index(f64::NAN), 0);
    }

    #[test]
    fn uniform_centers_are_bin_midpoints() {
        let g = UniformGrid::new(0.0, 10.0, 5);
        assert!((g.center(0) - 1.0).abs() < 1e-12);
        assert!((g.center(4) - 9.0).abs() < 1e-12);
        // center of bin i maps back to bin i
        for i in 0..5 {
            assert_eq!(g.index(g.center(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "need finite min < max")]
    fn uniform_rejects_inverted_bounds() {
        UniformGrid::new(5.0, 1.0, 3);
    }

    #[test]
    fn custom_bins_partition() {
        let b = CustomBins::new(vec![0.0, 10.0, 50.0]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.index(-1.0), 0);
        assert_eq!(b.index(0.0), 1);
        assert_eq!(b.index(9.9), 1);
        assert_eq!(b.index(10.0), 2);
        assert_eq!(b.index(100.0), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn custom_bins_reject_unsorted() {
        CustomBins::new(vec![1.0, 1.0]);
    }

    #[test]
    fn product_space_roundtrip() {
        let s = ProductSpace::new(vec![2, 3, 4, 5]);
        assert_eq!(s.len(), 120);
        for flat in 0..s.len() {
            assert_eq!(s.flatten(&s.unflatten(flat)), flat);
        }
    }

    #[test]
    fn product_space_is_row_major() {
        let s = ProductSpace::new(vec![3, 4]);
        assert_eq!(s.flatten(&[0, 0]), 0);
        assert_eq!(s.flatten(&[0, 1]), 1);
        assert_eq!(s.flatten(&[1, 0]), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn product_space_validates_indices() {
        ProductSpace::new(vec![3, 4]).flatten(&[3, 0]);
    }
}
