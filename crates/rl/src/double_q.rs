//! Double Q-learning (van Hasselt), an extension learner that removes the
//! maximization bias of plain Q-learning; used in ablations.

use crate::policy::ExplorationPolicy;
use crate::q_learning::OneStepConfig;
use crate::qtable::QTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tabular Double Q-learning with two tables `Q_A`, `Q_B`.
///
/// On each update a fair coin picks the table to update; the *other*
/// table evaluates the greedy action, removing the overestimation bias of
/// the shared max.
///
/// # Examples
///
/// ```
/// use hev_rl::{DoubleQ, OneStepConfig};
/// use rand::SeedableRng;
///
/// let mut learner = DoubleQ::new(4, 2, OneStepConfig::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// learner.update(0, 1, 1.0, 2, None, &mut rng);
/// assert!(learner.combined(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DoubleQ {
    qa: QTable,
    qb: QTable,
    config: OneStepConfig,
}

impl DoubleQ {
    /// Creates a learner.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or invalid hyper-parameters.
    pub fn new(n_states: usize, n_actions: usize, config: OneStepConfig) -> Self {
        config.validate();
        Self {
            qa: QTable::new(n_states, n_actions, config.q_init),
            qb: QTable::new(n_states, n_actions, config.q_init),
            config,
        }
    }

    /// Table A.
    pub fn qa(&self) -> &QTable {
        &self.qa
    }

    /// Table B.
    pub fn qb(&self) -> &QTable {
        &self.qb
    }

    /// The behaviour value `(Q_A + Q_B)(s, a) / 2`.
    pub fn combined(&self, s: usize, a: usize) -> f64 {
        0.5 * (self.qa.get(s, a) + self.qb.get(s, a))
    }

    /// Selects an action from the combined tables under the exploration
    /// policy.
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        let row: Vec<f64> = (0..self.qa.n_actions())
            .map(|a| self.combined(s, a))
            .collect();
        policy.select(&row, mask, rng)
    }

    /// Double Q update for transition `(s, a) → (r, s')`; returns the TD
    /// error of the updated table.
    pub fn update<R: Rng + ?Sized>(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        next_mask: Option<&[bool]>,
        rng: &mut R,
    ) -> f64 {
        let (update_a, eval) = if rng.gen::<bool>() {
            (true, &self.qb)
        } else {
            (false, &self.qa)
        };
        let chooser = if update_a { &self.qa } else { &self.qb };
        let a_star = chooser.argmax(s_next, next_mask);
        let target = reward + self.config.gamma * eval.get(s_next, a_star);
        let table = if update_a { &mut self.qa } else { &mut self.qb };
        let delta = target - table.get(s, a);
        table.add(s, a, self.config.alpha * delta);
        table.visit(s, a);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn both_tables_learn_over_time() {
        let mut l = DoubleQ::new(
            1,
            1,
            OneStepConfig {
                alpha: 0.5,
                gamma: 0.9,
                q_init: 0.0,
            },
        );
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..2_000 {
            l.update(0, 0, 1.0, 0, None, &mut rng);
        }
        assert!((l.qa().get(0, 0) - 10.0).abs() < 0.5);
        assert!((l.qb().get(0, 0) - 10.0).abs() < 0.5);
        assert!((l.combined(0, 0) - 10.0).abs() < 0.5);
    }

    #[test]
    fn combined_averages_tables() {
        let mut l = DoubleQ::new(1, 1, OneStepConfig::default());
        l.qa.set(0, 0, 4.0);
        l.qb.set(0, 0, 2.0);
        assert_eq!(l.combined(0, 0), 3.0);
    }
}
