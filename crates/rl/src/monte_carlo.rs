//! First-visit Monte Carlo control with ε-greedy improvement.
//!
//! The episode-based alternative to temporal-difference learning:
//! no bootstrapping, so no bias — but updates only arrive at episode
//! boundaries. Used in ablations as the "other end" of the
//! bias/variance spectrum from TD(0).

use crate::policy::ExplorationPolicy;
use crate::qtable::QTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// First-visit Monte Carlo control.
///
/// Accumulate an episode with [`MonteCarlo::record`], then call
/// [`MonteCarlo::end_episode`] to back up discounted returns into the
/// Q-table.
///
/// # Examples
///
/// ```
/// use hev_rl::MonteCarlo;
///
/// let mut mc = MonteCarlo::new(4, 2, 0.9);
/// mc.record(0, 1, 0.0);
/// mc.record(1, 0, 1.0);
/// mc.end_episode();
/// assert!(mc.q().get(0, 1) > 0.0); // discounted return reached (0,1)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MonteCarlo {
    q: QTable,
    gamma: f64,
    /// Running mean denominators per pair.
    counts: Vec<u32>,
    episode: Vec<(usize, usize, f64)>,
}

impl MonteCarlo {
    /// Creates a learner.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or `gamma ∉ (0, 1)`.
    pub fn new(n_states: usize, n_actions: usize, gamma: f64) -> Self {
        assert!(gamma > 0.0 && gamma < 1.0, "gamma must be in (0, 1)");
        Self {
            q: QTable::new(n_states, n_actions, 0.0),
            gamma,
            counts: vec![0; n_states * n_actions],
            episode: Vec::new(),
        }
    }

    /// The learner's Q-table.
    pub fn q(&self) -> &QTable {
        &self.q
    }

    /// Selects an action under the exploration policy.
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        policy.select(self.q.row(s), mask, rng)
    }

    /// Appends a transition to the current episode buffer.
    pub fn record(&mut self, s: usize, a: usize, reward: f64) {
        self.episode.push((s, a, reward));
    }

    /// Backs up first-visit discounted returns and clears the buffer.
    pub fn end_episode(&mut self) {
        let n_actions = self.q.n_actions();
        // Discounted return suffix scan.
        let mut g = 0.0;
        let mut returns: Vec<f64> = vec![0.0; self.episode.len()];
        for (i, &(_, _, r)) in self.episode.iter().enumerate().rev() {
            g = r + self.gamma * g;
            returns[i] = g;
        }
        // First-visit filter. BTreeSet rather than HashSet: membership is
        // all we need, and the ordered set keeps this path free of hasher
        // state (workspace determinism rule).
        let mut seen = std::collections::BTreeSet::new();
        for (i, &(s, a, _)) in self.episode.iter().enumerate() {
            if !seen.insert((s, a)) {
                continue;
            }
            let idx = s * n_actions + a;
            self.counts[idx] += 1;
            let k = self.counts[idx] as f64;
            let old = self.q.get(s, a);
            self.q.set(s, a, old + (returns[i] - old) / k);
            self.q.visit(s, a);
        }
        self.episode.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_episode_backup() {
        let mut mc = MonteCarlo::new(3, 1, 0.5);
        mc.record(0, 0, 0.0);
        mc.record(1, 0, 0.0);
        mc.record(2, 0, 8.0);
        mc.end_episode();
        assert_eq!(mc.q().get(2, 0), 8.0);
        assert_eq!(mc.q().get(1, 0), 4.0);
        assert_eq!(mc.q().get(0, 0), 2.0);
    }

    #[test]
    fn first_visit_ignores_revisits_within_episode() {
        let mut mc = MonteCarlo::new(2, 1, 0.9);
        mc.record(0, 0, 0.0);
        mc.record(0, 0, 10.0); // revisit: ignored for the backup of (0,0)
        mc.end_episode();
        // Return of the FIRST visit: 0 + 0.9·10 = 9.
        assert!((mc.q().get(0, 0) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_across_episodes() {
        let mut mc = MonteCarlo::new(1, 1, 0.9);
        mc.record(0, 0, 4.0);
        mc.end_episode();
        mc.record(0, 0, 8.0);
        mc.end_episode();
        assert!((mc.q().get(0, 0) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_clears_between_episodes() {
        let mut mc = MonteCarlo::new(1, 1, 0.9);
        mc.record(0, 0, 1.0);
        mc.end_episode();
        mc.end_episode(); // empty: no change
        assert!((mc.q().get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1)")]
    fn validates_gamma() {
        MonteCarlo::new(1, 1, 1.0);
    }
}
