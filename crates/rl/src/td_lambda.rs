//! The TD(λ)-learning algorithm of the paper (§4.3.4, Algorithm 1).
//!
//! A Q value is associated with each state-action pair; after each
//! transition the temporal-difference error
//! `δ = r + γ·max_a' Q(s', a') − Q(s, a)` is propagated to the `M` most
//! recently visited pairs in proportion to their eligibility.

use crate::policy::ExplorationPolicy;
use crate::qtable::QTable;
use crate::traces::{EligibilityTraces, TraceKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of [`TdLambda`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdLambdaConfig {
    /// Learning rate `α`.
    pub alpha: f64,
    /// Discount rate `γ` (Eq. 11).
    pub gamma: f64,
    /// Trace-decay parameter `λ`.
    pub lambda: f64,
    /// `M`: number of most recent state-action pairs kept eligible.
    pub trace_capacity: usize,
    /// Accumulating (the paper's line 6) or replacing traces.
    pub trace_kind: TraceKind,
    /// Initial Q value for all pairs ("initialize arbitrarily", line 1);
    /// slightly optimistic values encourage early exploration.
    pub q_init: f64,
}

impl TdLambdaConfig {
    /// Validates the hyper-parameters.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1]`, `gamma ∉ (0, 1)`, `lambda ∉ [0, 1]`, or
    /// `trace_capacity == 0`.
    fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(
            self.gamma > 0.0 && self.gamma < 1.0,
            "gamma must be in (0, 1)"
        );
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0, 1]"
        );
        assert!(self.trace_capacity > 0, "trace_capacity must be positive");
    }
}

impl Default for TdLambdaConfig {
    fn default() -> Self {
        Self {
            alpha: 0.10,
            gamma: 0.96,
            lambda: 0.70,
            trace_capacity: 30,
            trace_kind: TraceKind::Accumulating,
            q_init: 0.0,
        }
    }
}

/// TD(λ) learner over a dense Q-table.
///
/// # Examples
///
/// ```
/// use hev_rl::{EpsilonGreedy, TdLambda, TdLambdaConfig};
/// use rand::SeedableRng;
///
/// let mut learner = TdLambda::new(4, 2, TdLambdaConfig::default());
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let policy = EpsilonGreedy::new(0.1);
/// let mask = [true, true];
/// let a = learner.select(0, &mask, &policy, &mut rng);
/// learner.update(0, a, 1.0, 1, Some(&mask));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TdLambda {
    q: QTable,
    traces: EligibilityTraces,
    config: TdLambdaConfig,
}

impl TdLambda {
    /// Creates a learner for the given table dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions are zero or the configuration is invalid
    /// (see [`TdLambdaConfig`]).
    pub fn new(n_states: usize, n_actions: usize, config: TdLambdaConfig) -> Self {
        config.validate();
        Self {
            q: QTable::new(n_states, n_actions, config.q_init),
            traces: EligibilityTraces::new(config.trace_capacity, config.trace_kind),
            config,
        }
    }

    /// The learner's Q-table.
    pub fn q(&self) -> &QTable {
        &self.q
    }

    /// The hyper-parameters.
    pub fn config(&self) -> &TdLambdaConfig {
        &self.config
    }

    /// Selects an action for state `s` under the exploration policy,
    /// restricted to the feasibility mask (Algorithm 1, line 3).
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        policy.select(self.q.row(s), mask, rng)
    }

    /// The greedy action for state `s` (evaluation).
    pub fn greedy(&self, s: usize, mask: Option<&[bool]>) -> usize {
        self.q.argmax(s, mask)
    }

    /// The greedy action among actions actually visited during training,
    /// or `None` for a state with no visited eligible action (see
    /// [`QTable::argmax_visited`]).
    pub fn greedy_visited(&self, s: usize, mask: Option<&[bool]>) -> Option<usize> {
        self.q.argmax_visited(s, mask)
    }

    /// Performs the TD(λ) update for the observed transition
    /// `(s, a) → (r, s')` (Algorithm 1, lines 5–10).
    ///
    /// `next_mask` restricts the bootstrap `max_a' Q(s', a')` to feasible
    /// actions of the next state; `None` considers all actions.
    /// Returns the TD error `δ`.
    pub fn update(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        next_mask: Option<&[bool]>,
    ) -> f64 {
        let bootstrap = self.q.max(s_next, next_mask);
        let delta = reward + self.config.gamma * bootstrap - self.q.get(s, a);
        self.traces.visit(s, a);
        self.q.visit(s, a);
        for (ts, ta, e) in self.traces.iter() {
            self.q.add(ts, ta, self.config.alpha * e * delta);
        }
        self.traces.decay(self.config.gamma * self.config.lambda);
        delta
    }

    /// Clears eligibility traces (between episodes).
    pub fn end_episode(&mut self) {
        self.traces.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EpsilonGreedy, Greedy};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cfg() -> TdLambdaConfig {
        TdLambdaConfig {
            alpha: 0.5,
            gamma: 0.9,
            lambda: 0.5,
            ..TdLambdaConfig::default()
        }
    }

    #[test]
    fn single_update_moves_toward_target() {
        let mut l = TdLambda::new(3, 2, cfg());
        let delta = l.update(0, 1, 10.0, 1, None);
        assert!((delta - 10.0).abs() < 1e-12);
        assert!((l.q().get(0, 1) - 5.0).abs() < 1e-12); // α·δ
    }

    #[test]
    fn traces_propagate_to_earlier_pairs() {
        let mut l = TdLambda::new(4, 1, cfg());
        l.update(0, 0, 0.0, 1, None);
        l.update(1, 0, 0.0, 2, None);
        // Big reward on the third step: earlier pairs get trace-weighted
        // credit.
        l.update(2, 0, 10.0, 3, None);
        let q2 = l.q().get(2, 0);
        let q1 = l.q().get(1, 0);
        let q0 = l.q().get(0, 0);
        assert!(q2 > q1 && q1 > q0, "q0={q0} q1={q1} q2={q2}");
        assert!(q0 > 0.0);
    }

    #[test]
    fn lambda_zero_is_one_step() {
        let mut l = TdLambda::new(
            4,
            1,
            TdLambdaConfig {
                lambda: 0.0,
                ..cfg()
            },
        );
        l.update(0, 0, 0.0, 1, None);
        l.update(1, 0, 10.0, 2, None);
        // With λ = 0 the reward at step 2 must not leak *via traces* to
        // state 0 (only via the bootstrap, which is 0 here because state 1
        // still had Q = 0 when state 0 updated).
        assert_eq!(l.q().get(0, 0), 0.0);
    }

    #[test]
    fn bootstrap_respects_next_mask() {
        let mut l = TdLambda::new(2, 2, cfg());
        l.q.set(1, 0, 100.0);
        l.q.set(1, 1, 1.0);
        // Masking out action 0 of the next state: bootstrap uses 1.0.
        let delta = l.update(0, 0, 0.0, 1, Some(&[false, true]));
        assert!((delta - 0.9).abs() < 1e-12);
    }

    #[test]
    fn end_episode_clears_traces() {
        let mut l = TdLambda::new(3, 1, cfg());
        l.update(0, 0, 0.0, 1, None);
        l.end_episode();
        l.update(1, 0, 10.0, 2, None);
        // No trace-based credit to state 0 after the episode boundary.
        assert_eq!(l.q().get(0, 0), 0.0);
    }

    #[test]
    fn learns_simple_chain() {
        // Chain: 0 → 1 → 2(terminal-ish, reward 1 on entering), loop back.
        let mut l = TdLambda::new(
            3,
            2,
            TdLambdaConfig {
                alpha: 0.2,
                ..cfg()
            },
        );
        let policy = EpsilonGreedy::new(0.2);
        let mut rng = StdRng::seed_from_u64(7);
        let mask = [true, true];
        for _ in 0..300 {
            let mut s = 0usize;
            for _ in 0..6 {
                let a = l.select(s, &mask, &policy, &mut rng);
                // Action 1 advances, action 0 stays. Reward on reaching 2.
                let s_next = if a == 1 { (s + 1).min(2) } else { s };
                let r = if s_next == 2 && s != 2 { 1.0 } else { 0.0 };
                l.update(s, a, r, s_next, Some(&mask));
                s = s_next;
            }
            l.end_episode();
        }
        // Greedy policy advances from both pre-terminal states.
        let g = Greedy;
        let mut rng2 = StdRng::seed_from_u64(8);
        assert_eq!(g.select(l.q().row(0), &mask, &mut rng2), 1);
        assert_eq!(g.select(l.q().row(1), &mask, &mut rng2), 1);
    }

    #[test]
    fn q_init_is_applied() {
        let l = TdLambda::new(
            2,
            2,
            TdLambdaConfig {
                q_init: 3.5,
                ..cfg()
            },
        );
        assert_eq!(l.q().get(1, 1), 3.5);
    }

    #[test]
    #[should_panic(expected = "gamma must be in (0, 1)")]
    fn config_validated() {
        TdLambda::new(
            2,
            2,
            TdLambdaConfig {
                gamma: 1.0,
                ..cfg()
            },
        );
    }
}
