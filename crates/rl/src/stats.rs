//! Learning-progress accumulators for telemetry.
//!
//! The TD(λ) learner itself is part of persisted controller snapshots
//! (it is `Serialize`/`PartialEq` inside `ControllerSnapshot`), so it
//! must not grow observability fields — that would change the snapshot
//! schema and break byte-for-byte crash-recovery comparisons. Instead
//! the controller owns a [`TdStats`] accumulator beside the learner and
//! feeds it the TD error `δ` each `update` returns. [`QStats`] is the
//! companion read-only summary computed from a [`QTable`](crate::QTable)
//! at episode end.
//!
//! `TdStats` keeps a fixed-bound histogram of `|δ|` (bucket counts, not
//! raw samples) so its memory is constant regardless of episode length
//! and the bucket layout is identical on every machine — a requirement
//! for byte-identical telemetry across worker counts.

use crate::QTable;

/// Fixed bucket upper bounds for the `|δ|` histogram.
///
/// Chosen to span the magnitudes seen across the paper's reward scale:
/// converged updates land in the sub-0.1 buckets, early-training spikes
/// in the tail. Shared by every consumer so exported histograms always
/// agree on layout.
pub const TD_ABS_DELTA_BOUNDS: [f64; 6] = [0.01, 0.1, 0.5, 1.0, 5.0, 25.0];

/// Accumulates TD-error statistics over one episode.
///
/// All fields update in O(1) per observation; nothing here allocates
/// after construction.
#[derive(Debug, Clone, PartialEq)]
pub struct TdStats {
    /// Number of TD updates observed.
    pub updates: u64,
    /// Sum of signed TD errors (bias indicator).
    pub sum_delta: f64,
    /// Sum of `|δ|` (drives the mean absolute TD error).
    pub sum_abs_delta: f64,
    /// Largest `|δ|` seen.
    pub max_abs_delta: f64,
    /// Histogram counts over [`TD_ABS_DELTA_BOUNDS`]; the final slot is
    /// the overflow bucket (`|δ|` above the last bound).
    pub bucket_counts: [u64; TD_ABS_DELTA_BOUNDS.len() + 1],
}

impl Default for TdStats {
    fn default() -> Self {
        Self::new()
    }
}

impl TdStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            updates: 0,
            sum_delta: 0.0,
            sum_abs_delta: 0.0,
            max_abs_delta: 0.0,
            bucket_counts: [0; TD_ABS_DELTA_BOUNDS.len() + 1],
        }
    }

    /// Records one TD error.
    ///
    /// Non-finite deltas count into the overflow bucket and leave the
    /// running sums untouched, so a single NaN spike cannot poison the
    /// episode aggregates (the flight recorder captures the offending
    /// step separately).
    pub fn record(&mut self, delta: f64) {
        self.updates += 1;
        if !delta.is_finite() {
            self.bucket_counts[TD_ABS_DELTA_BOUNDS.len()] += 1;
            return;
        }
        let abs = delta.abs();
        self.sum_delta += delta;
        self.sum_abs_delta += abs;
        if abs > self.max_abs_delta {
            self.max_abs_delta = abs;
        }
        let slot = TD_ABS_DELTA_BOUNDS
            .iter()
            .position(|&b| abs <= b)
            .unwrap_or(TD_ABS_DELTA_BOUNDS.len());
        self.bucket_counts[slot] += 1;
    }

    /// Mean absolute TD error, or 0 when no updates were recorded.
    pub fn mean_abs_delta(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.sum_abs_delta / self.updates as f64
        }
    }

    /// Clears the accumulator for the next episode.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

/// Read-only Q-table occupancy summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QStats {
    /// Number of discrete states.
    pub n_states: usize,
    /// Number of discrete actions.
    pub n_actions: usize,
    /// State-action pairs visited at least once.
    pub visited: usize,
    /// Total visits summed over all pairs.
    pub visits_total: u64,
}

impl QStats {
    /// Summarizes `table`'s occupancy.
    pub fn from_table(table: &QTable) -> Self {
        Self {
            n_states: table.n_states(),
            n_actions: table.n_actions(),
            visited: table.coverage(),
            visits_total: table.visits_total(),
        }
    }

    /// Fraction of the state-action space visited, in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        let cells = self.n_states * self.n_actions;
        if cells == 0 {
            0.0
        } else {
            self.visited as f64 / cells as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_and_buckets() {
        let mut s = TdStats::new();
        s.record(0.005);
        s.record(-0.05);
        s.record(2.0);
        s.record(100.0);
        assert_eq!(s.updates, 4);
        assert!((s.sum_delta - (0.005 - 0.05 + 2.0 + 100.0)).abs() < 1e-12);
        assert!((s.max_abs_delta - 100.0).abs() < 1e-12);
        assert_eq!(s.bucket_counts, [1, 1, 0, 0, 1, 0, 1]);
        assert!((s.mean_abs_delta() - (0.005 + 0.05 + 2.0 + 100.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn non_finite_delta_goes_to_overflow_without_poisoning_sums() {
        let mut s = TdStats::new();
        s.record(f64::NAN);
        s.record(f64::INFINITY);
        assert_eq!(s.updates, 2);
        assert_eq!(s.sum_delta, 0.0);
        assert_eq!(s.sum_abs_delta, 0.0);
        assert_eq!(s.bucket_counts[TD_ABS_DELTA_BOUNDS.len()], 2);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = TdStats::new();
        s.record(1.0);
        s.reset();
        assert_eq!(s, TdStats::new());
    }

    #[test]
    fn qstats_summarizes_table() {
        let mut q = QTable::new(4, 3, 0.0);
        q.visit(0, 0);
        q.visit(0, 0);
        q.visit(2, 1);
        let stats = QStats::from_table(&q);
        assert_eq!(stats.n_states, 4);
        assert_eq!(stats.n_actions, 3);
        assert_eq!(stats.visited, 2);
        assert_eq!(stats.visits_total, 3);
        assert!((stats.occupancy() - 2.0 / 12.0).abs() < 1e-12);
    }
}
