//! One-step Q-learning (Watkins), the λ = 0 special case kept as an
//! independent, simpler learner for baselines and ablations.

use crate::policy::ExplorationPolicy;
use crate::qtable::QTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by the one-step learners.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OneStepConfig {
    /// Learning rate `α`.
    pub alpha: f64,
    /// Discount rate `γ`.
    pub gamma: f64,
    /// Initial Q value.
    pub q_init: f64,
}

impl OneStepConfig {
    pub(crate) fn validate(&self) {
        assert!(
            self.alpha > 0.0 && self.alpha <= 1.0,
            "alpha must be in (0, 1]"
        );
        assert!(
            self.gamma > 0.0 && self.gamma < 1.0,
            "gamma must be in (0, 1)"
        );
    }
}

impl Default for OneStepConfig {
    fn default() -> Self {
        Self {
            alpha: 0.1,
            gamma: 0.96,
            q_init: 0.0,
        }
    }
}

/// Tabular one-step Q-learning.
///
/// # Examples
///
/// ```
/// use hev_rl::{OneStepConfig, QLearning};
///
/// let mut learner = QLearning::new(4, 2, OneStepConfig::default());
/// learner.update(0, 1, 1.0, 2, None);
/// assert!(learner.q().get(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QLearning {
    q: QTable,
    config: OneStepConfig,
}

impl QLearning {
    /// Creates a learner.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or invalid hyper-parameters.
    pub fn new(n_states: usize, n_actions: usize, config: OneStepConfig) -> Self {
        config.validate();
        Self {
            q: QTable::new(n_states, n_actions, config.q_init),
            config,
        }
    }

    /// The learner's Q-table.
    pub fn q(&self) -> &QTable {
        &self.q
    }

    /// Selects an action under the exploration policy.
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        policy.select(self.q.row(s), mask, rng)
    }

    /// Off-policy update toward `r + γ·max_a' Q(s', a')`; returns the TD
    /// error.
    pub fn update(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        next_mask: Option<&[bool]>,
    ) -> f64 {
        let target = reward + self.config.gamma * self.q.max(s_next, next_mask);
        let delta = target - self.q.get(s, a);
        self.q.add(s, a, self.config.alpha * delta);
        self.q.visit(s, a);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_moves_toward_target() {
        let mut l = QLearning::new(
            2,
            2,
            OneStepConfig {
                alpha: 0.5,
                ..Default::default()
            },
        );
        l.update(0, 0, 10.0, 1, None);
        assert!((l.q().get(0, 0) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn repeated_updates_converge_to_fixed_point() {
        let mut l = QLearning::new(
            1,
            1,
            OneStepConfig {
                alpha: 0.5,
                gamma: 0.9,
                q_init: 0.0,
            },
        );
        // Self-loop with constant reward 1: Q* = 1 / (1 − γ) = 10.
        for _ in 0..500 {
            l.update(0, 0, 1.0, 0, None);
        }
        assert!((l.q().get(0, 0) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn bootstrap_respects_mask() {
        let mut l = QLearning::new(
            2,
            2,
            OneStepConfig {
                alpha: 1.0,
                gamma: 0.5,
                q_init: 0.0,
            },
        );
        l.q.set(1, 0, 100.0);
        l.update(0, 0, 0.0, 1, Some(&[false, true]));
        assert_eq!(l.q().get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn validates_alpha() {
        QLearning::new(
            1,
            1,
            OneStepConfig {
                alpha: 0.0,
                ..Default::default()
            },
        );
    }
}
