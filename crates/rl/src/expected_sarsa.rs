//! Expected SARSA: on-policy like SARSA but bootstrapping on the
//! *expectation* over the behaviour policy, which removes the sampling
//! variance of the next action.

use crate::policy::ExplorationPolicy;
use crate::q_learning::OneStepConfig;
use crate::qtable::QTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tabular Expected SARSA under an ε-greedy behaviour policy.
///
/// The update target is
/// `r + γ·[(1 − ε)·max_a Q(s', a) + ε·mean_a Q(s', a)]` over the eligible
/// actions of the next state.
///
/// # Examples
///
/// ```
/// use hev_rl::{ExpectedSarsa, OneStepConfig};
///
/// let mut learner = ExpectedSarsa::new(4, 2, OneStepConfig::default(), 0.1);
/// learner.update(0, 1, 1.0, 2, None);
/// assert!(learner.q().get(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectedSarsa {
    q: QTable,
    config: OneStepConfig,
    epsilon: f64,
}

impl ExpectedSarsa {
    /// Creates a learner assuming an ε-greedy behaviour with the given ε.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions, invalid hyper-parameters, or
    /// `epsilon ∉ [0, 1]`.
    pub fn new(n_states: usize, n_actions: usize, config: OneStepConfig, epsilon: f64) -> Self {
        config.validate();
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self {
            q: QTable::new(n_states, n_actions, config.q_init),
            config,
            epsilon,
        }
    }

    /// The learner's Q-table.
    pub fn q(&self) -> &QTable {
        &self.q
    }

    /// Updates the assumed behaviour ε (keep in sync with the actual
    /// exploration policy as it decays).
    pub fn set_epsilon(&mut self, epsilon: f64) {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        self.epsilon = epsilon;
    }

    /// Selects an action under the exploration policy.
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        policy.select(self.q.row(s), mask, rng)
    }

    /// Expected value of the next state under the ε-greedy behaviour.
    fn expected_value(&self, s: usize, mask: Option<&[bool]>) -> f64 {
        let row = self.q.row(s);
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        let mut n = 0usize;
        for (a, &v) in row.iter().enumerate() {
            if let Some(m) = mask {
                if !m[a] {
                    continue;
                }
            }
            max = max.max(v);
            sum += v;
            n += 1;
        }
        assert!(n > 0, "at least one action must be eligible");
        (1.0 - self.epsilon) * max + self.epsilon * sum / n as f64
    }

    /// Expected-SARSA update for transition `(s, a) → (r, s')`; returns
    /// the TD error.
    pub fn update(
        &mut self,
        s: usize,
        a: usize,
        reward: f64,
        s_next: usize,
        next_mask: Option<&[bool]>,
    ) -> f64 {
        let target = reward + self.config.gamma * self.expected_value(s_next, next_mask);
        let delta = target - self.q.get(s, a);
        self.q.add(s, a, self.config.alpha * delta);
        self.q.visit(s, a);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_zero_matches_q_learning_target() {
        let cfg = OneStepConfig {
            alpha: 1.0,
            gamma: 0.5,
            q_init: 0.0,
        };
        let mut es = ExpectedSarsa::new(2, 2, cfg, 0.0);
        es.q.set(1, 0, 10.0);
        es.q.set(1, 1, 2.0);
        es.update(0, 0, 0.0, 1, None);
        assert!((es.q().get(0, 0) - 5.0).abs() < 1e-12); // γ·max = 5
    }

    #[test]
    fn epsilon_one_bootstraps_on_mean() {
        let cfg = OneStepConfig {
            alpha: 1.0,
            gamma: 0.5,
            q_init: 0.0,
        };
        let mut es = ExpectedSarsa::new(2, 2, cfg, 1.0);
        es.q.set(1, 0, 10.0);
        es.q.set(1, 1, 2.0);
        es.update(0, 0, 0.0, 1, None);
        assert!((es.q().get(0, 0) - 3.0).abs() < 1e-12); // γ·mean = 3
    }

    #[test]
    fn mask_restricts_expectation() {
        let cfg = OneStepConfig {
            alpha: 1.0,
            gamma: 0.5,
            q_init: 0.0,
        };
        let mut es = ExpectedSarsa::new(2, 2, cfg, 0.5);
        es.q.set(1, 0, 100.0);
        es.q.set(1, 1, 4.0);
        // Only action 1 eligible: expectation = 4 regardless of ε.
        es.update(0, 0, 0.0, 1, Some(&[false, true]));
        assert!((es.q().get(0, 0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_fixed_point() {
        let cfg = OneStepConfig {
            alpha: 0.5,
            gamma: 0.9,
            q_init: 0.0,
        };
        let mut es = ExpectedSarsa::new(1, 1, cfg, 0.2);
        for _ in 0..500 {
            es.update(0, 0, 1.0, 0, None);
        }
        assert!((es.q().get(0, 0) - 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn validates_epsilon() {
        ExpectedSarsa::new(1, 1, OneStepConfig::default(), 2.0);
    }
}
