//! On-policy SARSA, for ablation against the off-policy learners.

use crate::policy::ExplorationPolicy;
use crate::q_learning::OneStepConfig;
use crate::qtable::QTable;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Tabular SARSA: updates toward `r + γ·Q(s', a')` where `a'` is the
/// action actually taken next.
///
/// # Examples
///
/// ```
/// use hev_rl::{OneStepConfig, Sarsa};
///
/// let mut learner = Sarsa::new(4, 2, OneStepConfig::default());
/// learner.update(0, 1, 1.0, 2, 0);
/// assert!(learner.q().get(0, 1) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sarsa {
    q: QTable,
    config: OneStepConfig,
}

impl Sarsa {
    /// Creates a learner.
    ///
    /// # Panics
    ///
    /// Panics on zero dimensions or invalid hyper-parameters.
    pub fn new(n_states: usize, n_actions: usize, config: OneStepConfig) -> Self {
        config.validate();
        Self {
            q: QTable::new(n_states, n_actions, config.q_init),
            config,
        }
    }

    /// The learner's Q-table.
    pub fn q(&self) -> &QTable {
        &self.q
    }

    /// Selects an action under the exploration policy.
    pub fn select<P: ExplorationPolicy, R: Rng + ?Sized>(
        &self,
        s: usize,
        mask: &[bool],
        policy: &P,
        rng: &mut R,
    ) -> usize {
        policy.select(self.q.row(s), mask, rng)
    }

    /// On-policy update for transition `(s, a) → (r, s', a')`; returns the
    /// TD error.
    pub fn update(&mut self, s: usize, a: usize, reward: f64, s_next: usize, a_next: usize) -> f64 {
        let target = reward + self.config.gamma * self.q.get(s_next, a_next);
        let delta = target - self.q.get(s, a);
        self.q.add(s, a, self.config.alpha * delta);
        self.q.visit(s, a);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_uses_taken_action_not_max() {
        let mut l = Sarsa::new(
            2,
            2,
            OneStepConfig {
                alpha: 1.0,
                gamma: 0.5,
                q_init: 0.0,
            },
        );
        l.q.set(1, 0, 100.0);
        l.q.set(1, 1, 2.0);
        // Next action is 1 (value 2), not the max (100).
        l.update(0, 0, 0.0, 1, 1);
        assert!((l.q().get(0, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn self_loop_fixed_point() {
        let mut l = Sarsa::new(
            1,
            1,
            OneStepConfig {
                alpha: 0.5,
                gamma: 0.9,
                q_init: 0.0,
            },
        );
        for _ in 0..500 {
            l.update(0, 0, 1.0, 0, 0);
        }
        assert!((l.q().get(0, 0) - 10.0).abs() < 1e-6);
    }
}
