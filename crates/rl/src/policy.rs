//! Exploration policies (the paper's exploration-versus-exploitation
//! strategy, §4.3.4).

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Selects an action from a Q-value row, restricted to a feasibility mask.
pub trait ExplorationPolicy {
    /// Picks an action index. `mask[a]` must be true for `a` to be
    /// eligible; at least one action must be eligible.
    fn select<R: Rng + ?Sized>(&self, q_row: &[f64], mask: &[bool], rng: &mut R) -> usize;

    /// Hook called at the end of each training episode (e.g. to decay
    /// exploration). Default: no-op.
    fn end_episode(&mut self) {}
}

fn greedy(q_row: &[f64], mask: &[bool]) -> usize {
    let mut best: Option<(usize, f64)> = None;
    for (a, (&v, &ok)) in q_row.iter().zip(mask).enumerate() {
        if ok && best.is_none_or(|(_, bv)| v > bv) {
            best = Some((a, v));
        }
    }
    // hevlint::allow(panic::expect, documented trait invariant: ExplorationPolicy::select requires at least one eligible mask entry)
    best.expect("at least one action must be eligible").0
}

fn random_eligible<R: Rng + ?Sized>(mask: &[bool], rng: &mut R) -> usize {
    let n = mask.iter().filter(|&&m| m).count();
    assert!(n > 0, "at least one action must be eligible");
    let mut k = rng.gen_range(0..n);
    for (a, &ok) in mask.iter().enumerate() {
        if ok {
            if k == 0 {
                return a;
            }
            k -= 1;
        }
    }
    // hevlint::allow(panic::macro, the assert above established n eligible actions and k < n, so the loop always returns)
    unreachable!("counted eligible actions above")
}

/// Always exploits: picks the highest-valued eligible action.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Greedy;

impl ExplorationPolicy for Greedy {
    fn select<R: Rng + ?Sized>(&self, q_row: &[f64], mask: &[bool], rng: &mut R) -> usize {
        let _ = rng;
        greedy(q_row, mask)
    }
}

/// ε-greedy: the best action with probability `1 − ε`, otherwise a
/// uniformly random eligible action (the paper's §4.3.4 policy).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpsilonGreedy {
    epsilon: f64,
}

impl EpsilonGreedy {
    /// Creates the policy.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is outside `[0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!((0.0..=1.0).contains(&epsilon), "epsilon must be in [0, 1]");
        Self { epsilon }
    }

    /// The exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl ExplorationPolicy for EpsilonGreedy {
    fn select<R: Rng + ?Sized>(&self, q_row: &[f64], mask: &[bool], rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.epsilon {
            random_eligible(mask, rng)
        } else {
            greedy(q_row, mask)
        }
    }
}

/// ε-greedy with multiplicative per-episode decay down to a floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayingEpsilon {
    epsilon: f64,
    decay: f64,
    floor: f64,
}

impl DecayingEpsilon {
    /// Creates the policy starting at `epsilon0`, multiplying by `decay`
    /// after each episode, never dropping below `floor`.
    ///
    /// # Panics
    ///
    /// Panics if any argument is outside `[0, 1]` or `floor > epsilon0`.
    pub fn new(epsilon0: f64, decay: f64, floor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&epsilon0),
            "epsilon0 must be in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
        assert!(
            (0.0..=epsilon0).contains(&floor),
            "floor must be in [0, epsilon0]"
        );
        Self {
            epsilon: epsilon0,
            decay,
            floor,
        }
    }

    /// The current exploration probability.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

impl ExplorationPolicy for DecayingEpsilon {
    fn select<R: Rng + ?Sized>(&self, q_row: &[f64], mask: &[bool], rng: &mut R) -> usize {
        if rng.gen::<f64>() < self.epsilon {
            random_eligible(mask, rng)
        } else {
            greedy(q_row, mask)
        }
    }

    fn end_episode(&mut self) {
        self.epsilon = (self.epsilon * self.decay).max(self.floor);
    }
}

/// Boltzmann (softmax) exploration over eligible actions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Softmax {
    temperature: f64,
}

impl Softmax {
    /// Creates the policy with the given temperature.
    ///
    /// # Panics
    ///
    /// Panics if `temperature` is not positive.
    pub fn new(temperature: f64) -> Self {
        assert!(temperature > 0.0, "temperature must be positive");
        Self { temperature }
    }

    /// The temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }
}

impl ExplorationPolicy for Softmax {
    fn select<R: Rng + ?Sized>(&self, q_row: &[f64], mask: &[bool], rng: &mut R) -> usize {
        let max_q = q_row
            .iter()
            .zip(mask)
            .filter(|(_, &ok)| ok)
            .map(|(&v, _)| v)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(max_q.is_finite(), "at least one action must be eligible");
        let weights: Vec<f64> = q_row
            .iter()
            .zip(mask)
            .map(|(&v, &ok)| {
                if ok {
                    ((v - max_q) / self.temperature).exp()
                } else {
                    0.0
                }
            })
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen::<f64>() * total;
        for (a, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 && w > 0.0 {
                return a;
            }
        }
        // Floating-point tail: return the last eligible action.
        mask.iter()
            .rposition(|&ok| ok)
            // hevlint::allow(panic::expect, documented trait invariant: select requires at least one eligible mask entry)
            .expect("eligible action exists")
    }
}

/// Upper-confidence-bound action scoring over a Q row with visit counts.
///
/// Not an [`ExplorationPolicy`] (it needs visit counts, which the trait's
/// Q-row interface does not carry); use it directly with a
/// [`QTable`](crate::QTable):
///
/// ```
/// use hev_rl::{ucb_select, QTable};
///
/// let mut q = QTable::new(1, 3, 0.0);
/// q.visit(0, 0);
/// // Unvisited actions get infinite bonus: 1 and 2 are preferred.
/// let a = ucb_select(&q, 0, None, 2.0);
/// assert_ne!(a, 0);
/// ```
pub fn ucb_select(q: &crate::QTable, s: usize, mask: Option<&[bool]>, exploration: f64) -> usize {
    assert!(
        exploration >= 0.0,
        "exploration constant must be non-negative"
    );
    let total: u32 = (0..q.n_actions()).map(|a| q.visit_count(s, a)).sum();
    let ln_total = f64::from(total.max(1)).ln();
    let mut best: Option<(usize, f64)> = None;
    for a in 0..q.n_actions() {
        if let Some(m) = mask {
            if !m[a] {
                continue;
            }
        }
        let n = q.visit_count(s, a);
        let score = if n == 0 {
            f64::INFINITY
        } else {
            q.get(s, a) + exploration * (ln_total / f64::from(n)).sqrt()
        };
        if best.is_none_or(|(_, bv)| score > bv) {
            best = Some((a, score));
        }
    }
    // hevlint::allow(panic::expect, documented invariant: see the # Panics section of ucb_select)
    best.expect("at least one action must be eligible").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn greedy_picks_best_eligible() {
        let q = [1.0, 5.0, 3.0];
        let mut r = rng();
        assert_eq!(Greedy.select(&q, &[true, true, true], &mut r), 1);
        assert_eq!(Greedy.select(&q, &[true, false, true], &mut r), 2);
    }

    #[test]
    fn epsilon_zero_is_greedy() {
        let p = EpsilonGreedy::new(0.0);
        let q = [0.0, 2.0, 1.0];
        let mut r = rng();
        for _ in 0..50 {
            assert_eq!(p.select(&q, &[true, true, true], &mut r), 1);
        }
    }

    #[test]
    fn epsilon_one_explores_all_eligible() {
        let p = EpsilonGreedy::new(1.0);
        let q = [0.0, 2.0, 1.0];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[p.select(&q, &[true, true, true], &mut r)] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }

    #[test]
    fn exploration_never_selects_masked_actions() {
        let p = EpsilonGreedy::new(1.0);
        let q = [0.0, 2.0, 1.0, 4.0];
        let mask = [false, true, false, true];
        let mut r = rng();
        for _ in 0..200 {
            let a = p.select(&q, &mask, &mut r);
            assert!(mask[a]);
        }
    }

    #[test]
    fn decaying_epsilon_decays_to_floor() {
        let mut p = DecayingEpsilon::new(1.0, 0.5, 0.1);
        for _ in 0..10 {
            p.end_episode();
        }
        assert!((p.epsilon() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn softmax_prefers_high_values() {
        let p = Softmax::new(0.1);
        let q = [0.0, 1.0];
        let mut r = rng();
        let picks_1 = (0..500)
            .filter(|_| p.select(&q, &[true, true], &mut r) == 1)
            .count();
        assert!(picks_1 > 450, "picked best only {picks_1}/500");
    }

    #[test]
    fn softmax_respects_mask() {
        let p = Softmax::new(1.0);
        let q = [10.0, 0.0];
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(p.select(&q, &[false, true], &mut r), 1);
        }
    }

    #[test]
    #[should_panic(expected = "epsilon must be in [0, 1]")]
    fn epsilon_validated() {
        EpsilonGreedy::new(1.5);
    }

    #[test]
    fn ucb_prefers_unvisited_then_balances() {
        let mut q = crate::QTable::new(1, 3, 0.0);
        q.set(0, 0, 10.0);
        for _ in 0..50 {
            q.visit(0, 0);
        }
        // Unvisited actions dominate any value.
        let a = ucb_select(&q, 0, None, 1.0);
        assert!(a == 1 || a == 2);
        q.visit(0, 1);
        q.visit(0, 2);
        // Now the high-value well-explored arm wins at low exploration…
        assert_eq!(ucb_select(&q, 0, None, 0.1), 0);
        // …but a large exploration constant prefers the rare arms.
        assert_ne!(ucb_select(&q, 0, None, 50.0), 0);
    }

    #[test]
    fn ucb_respects_mask() {
        let q = crate::QTable::new(1, 3, 0.0);
        assert_eq!(ucb_select(&q, 0, Some(&[false, true, false]), 1.0), 1);
    }
}
