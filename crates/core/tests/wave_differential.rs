//! Differential suite: lockstep episode waves versus the sequential
//! planned path.
//!
//! The wave driver promises bit-identity — same Q-tables, same episode
//! metrics, same telemetry, same evaluation counts — at every wave
//! width, for learning agents and for supervised fallback chains under
//! fault injection. Every comparison here is zero-tolerance
//! (`f64::to_bits`, byte-equal JSON, `==` on integer counters).

use drive_cycle::{DriveCycle, ProfileBuilder};
use hev_control::{
    simulate_planned_instrumented, simulate_wave, split_seed, train_portfolio_wave, CyclePlan,
    EpisodeMetrics, EpisodeTelemetry, FaultConfig, FaultPlan, JointController,
    JointControllerConfig, RewardConfig, SupervisedPolicy, TelemetryConfig, WaveLane,
    WaveTrainLane,
};
use hev_model::{HevParams, ParallelHev};
use proptest::prelude::*;

/// A short mixed-demand cycle: idle, a brisk trip, a gentler trip.
fn tiny_cycle() -> DriveCycle {
    ProfileBuilder::new("wave-diff")
        .idle(2.0)
        .trip(30.0, 8.0, 15.0, 6.0, 3.0)
        .trip(20.0, 6.0, 8.0, 5.0, 3.0)
        .build()
        .expect("valid test cycle")
}

fn fresh_hev() -> ParallelHev {
    ParallelHev::new(HevParams::default_parallel_hev(), 0.6).expect("default parameters are valid")
}

/// Lane `k`'s agent: lane 0 keeps the base seed, later lanes split
/// their own streams — the same convention the bench workload uses.
fn lane_agent(lane: usize) -> JointController {
    let mut cfg = JointControllerConfig::proposed();
    cfg.seed = if lane == 0 {
        4242
    } else {
        split_seed(4242, lane as u64)
    };
    JointController::new(cfg)
}

fn assert_metrics_bits_equal(a: &EpisodeMetrics, b: &EpisodeMetrics, what: &str) {
    assert_eq!(a.steps, b.steps, "{what}: steps");
    assert_eq!(a.fuel_g.to_bits(), b.fuel_g.to_bits(), "{what}: fuel_g");
    assert_eq!(
        a.total_reward.to_bits(),
        b.total_reward.to_bits(),
        "{what}: total_reward"
    );
    assert_eq!(
        a.soc_final.to_bits(),
        b.soc_final.to_bits(),
        "{what}: soc_final"
    );
    assert_eq!(a.degradation, b.degradation, "{what}: degradation");
}

/// Tentpole invariant: at wave widths 1 (the sequential fallback), 2, 7
/// (wider than the candidate grid), and 32 (wider than the fused
/// kernel's lane budget), training in lockstep produces byte-identical
/// controller snapshots, bit-identical episode and evaluation metrics,
/// and exactly the sequential evaluation count.
#[test]
fn wave_training_is_bit_identical_at_every_width() {
    let cycle = tiny_cycle();
    let rounds = 3;
    for width in [1usize, 2, 7, 32] {
        // Sequential reference: each lane trains alone on its own plan.
        let mut seq: Vec<(Vec<EpisodeMetrics>, EpisodeMetrics, String)> = Vec::new();
        let mut seq_evals = 0u64;
        for lane in 0..width {
            let mut agent = lane_agent(lane);
            let mut hev = fresh_hev();
            let plans = vec![CyclePlan::new(&hev, &cycle)];
            let before = hev_trace::evals::count();
            let train = agent.train_portfolio_planned(&mut hev, &plans, rounds);
            seq_evals += hev_trace::evals::count() - before;
            let eval = agent.evaluate_planned(&mut hev, &plans[0]);
            let snapshot = serde_json::to_string(&agent.snapshot()).expect("snapshot serializes");
            seq.push((train, eval, snapshot));
        }

        // Wave run: the same lanes share one plan build and step in
        // lockstep.
        let wave_evals_before = hev_trace::evals::count();
        let plans = vec![CyclePlan::new(&fresh_hev(), &cycle)];
        let mut agents: Vec<JointController> = (0..width).map(lane_agent).collect();
        let mut hevs: Vec<ParallelHev> = (0..width).map(|_| fresh_hev()).collect();
        let mut lanes: Vec<WaveTrainLane<'_>> = agents
            .iter_mut()
            .zip(hevs.iter_mut())
            .map(|(agent, hev)| WaveTrainLane {
                agent,
                hev,
                plans: &plans,
                telemetry: None,
            })
            .collect();
        let wave_train = train_portfolio_wave(&mut lanes, rounds);
        drop(lanes);
        let wave_evals = hev_trace::evals::count() - wave_evals_before;

        assert_eq!(
            seq_evals, wave_evals,
            "width {width}: fused waves must do exactly the sequential work"
        );
        for (lane, ((seq_train, seq_eval, seq_snapshot), (agent, hev))) in seq
            .iter()
            .zip(agents.iter_mut().zip(hevs.iter_mut()))
            .enumerate()
        {
            let what = format!("width {width}, lane {lane}");
            assert_eq!(seq_train.len(), wave_train[lane].len(), "{what}: episodes");
            for (e, (a, b)) in seq_train.iter().zip(&wave_train[lane]).enumerate() {
                assert_metrics_bits_equal(a, b, &format!("{what}, episode {e}"));
            }
            let wave_eval = agent.evaluate_planned(hev, &plans[0]);
            assert_metrics_bits_equal(seq_eval, &wave_eval, &format!("{what}, evaluation"));
            let wave_snapshot =
                serde_json::to_string(&agent.snapshot()).expect("snapshot serializes");
            assert_eq!(seq_snapshot, &wave_snapshot, "{what}: snapshot JSON");
        }
    }
}

/// Per-lane telemetry — episode metrics lines, trace events, and the
/// attributed evaluation counters — is line-for-line identical between
/// a lockstep wave and the sequential planned path.
#[test]
fn wave_telemetry_lines_match_sequential() {
    let cycle = tiny_cycle();
    let rounds = 2;
    let width = 7usize;

    let mut seq_runs: Vec<(Vec<String>, Vec<String>)> = Vec::new();
    for lane in 0..width {
        let mut agent = lane_agent(lane);
        let mut hev = fresh_hev();
        let plans = vec![CyclePlan::new(&hev, &cycle)];
        let mut telemetry =
            EpisodeTelemetry::new(format!("lane{lane}"), TelemetryConfig::enabled());
        agent.train_portfolio_planned_instrumented(&mut hev, &plans, rounds, Some(&mut telemetry));
        let run = telemetry.into_run();
        seq_runs.push((run.metrics_lines, run.trace_lines));
    }

    let plans = vec![CyclePlan::new(&fresh_hev(), &cycle)];
    let mut agents: Vec<JointController> = (0..width).map(lane_agent).collect();
    let mut hevs: Vec<ParallelHev> = (0..width).map(|_| fresh_hev()).collect();
    let mut collectors: Vec<EpisodeTelemetry> = (0..width)
        .map(|lane| EpisodeTelemetry::new(format!("lane{lane}"), TelemetryConfig::enabled()))
        .collect();
    let mut lanes: Vec<WaveTrainLane<'_>> = agents
        .iter_mut()
        .zip(hevs.iter_mut())
        .zip(collectors.iter_mut())
        .map(|((agent, hev), telemetry)| WaveTrainLane {
            agent,
            hev,
            plans: &plans,
            telemetry: Some(telemetry),
        })
        .collect();
    train_portfolio_wave(&mut lanes, rounds);
    drop(lanes);

    for (lane, (collector, (seq_metrics, seq_trace))) in
        collectors.into_iter().zip(seq_runs).enumerate()
    {
        let run = collector.into_run();
        assert_eq!(seq_metrics, run.metrics_lines, "lane {lane}: metrics lines");
        assert_eq!(seq_trace, run.trace_lines, "lane {lane}: trace lines");
    }
}

/// A supervised lane under a random fault plan degrades identically in
/// a wave and alone: same `DegradationReport`, same episode metrics,
/// bit for bit. Three lanes carry three different plans split from the
/// drawn seed, so the wave mixes derated and healthy lanes in the same
/// timestep.
fn supervised_wave_matches_sequential(severity: f64, seed: u64) {
    let cycle = tiny_cycle();
    let reward = RewardConfig::default();
    let width = 3usize;
    let config = FaultConfig::at_severity(severity);

    let run = |wave: bool| -> Vec<EpisodeMetrics> {
        let plans: Vec<CyclePlan> = (0..width)
            .map(|_| CyclePlan::new(&fresh_hev(), &cycle))
            .collect();
        let mut policies: Vec<SupervisedPolicy<JointController>> = (0..width)
            .map(|lane| SupervisedPolicy::new(lane_agent(lane)))
            .collect();
        let mut hevs: Vec<ParallelHev> = (0..width).map(|_| fresh_hev()).collect();
        let mut faults: Vec<FaultPlan> = (0..width)
            .map(|lane| FaultPlan::new(config, split_seed(seed, lane as u64)))
            .collect();
        if wave {
            let mut lanes: Vec<WaveLane<'_, SupervisedPolicy<JointController>>> = policies
                .iter_mut()
                .zip(hevs.iter_mut())
                .zip(plans.iter().zip(faults.iter_mut()))
                .map(|((policy, hev), (plan, faults))| WaveLane {
                    policy,
                    hev,
                    plan,
                    reward,
                    faults: Some(faults),
                    telemetry: None,
                })
                .collect();
            simulate_wave(&mut lanes)
        } else {
            policies
                .iter_mut()
                .zip(hevs.iter_mut())
                .zip(plans.iter().zip(faults.iter_mut()))
                .map(|((policy, hev), (plan, faults))| {
                    simulate_planned_instrumented(hev, plan, policy, &reward, Some(faults), None)
                })
                .collect()
        }
    };

    let sequential = run(false);
    let waved = run(true);
    for (lane, (a, b)) in sequential.iter().zip(&waved).enumerate() {
        assert_metrics_bits_equal(a, b, &format!("severity {severity}, lane {lane}"));
        assert!(
            a.degradation.is_some(),
            "supervised lanes must carry a degradation report"
        );
    }
}

proptest! {
    /// Random fault severities and seeds: the wave's fault-injection,
    /// derating, and supervised-fallback accounting reproduce the
    /// sequential path exactly.
    #[test]
    fn wave_preserves_degradation_reports(severity in 0.0f64..1.0, seed in 0u64..(1u64 << 48)) {
        supervised_wave_matches_sequential(severity, seed);
    }
}
