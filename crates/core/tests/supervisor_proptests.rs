//! Property-based tests of the supervised fallback chain: under
//! randomized fault plans and an adversarial wrapped policy, the
//! supervisor never emits an infeasible control — except the explicit
//! limp-home best effort when *no* control is feasible — across
//! stopped, braking, and propelling demands.

use drive_cycle::ProfileBuilder;
use hev_control::supervisor::SupervisorConfig;
use hev_control::{
    fallback_control, simulate_with_faults, DegradationReport, FaultConfig, FaultPlan, HevPolicy,
    Observation, RewardConfig, SupervisedPolicy,
};
use hev_model::{ControlInput, HevParams, ParallelHev, StepOutcome};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An adversarial policy: emits random controls including non-finite
/// fields, absurd currents, and out-of-range gears and auxiliary powers.
struct Chaotic {
    rng: StdRng,
}

impl HevPolicy for Chaotic {
    fn decide(&mut self, _hev: &ParallelHev, _obs: &Observation<'_>) -> ControlInput {
        let roll: f64 = self.rng.gen();
        let battery_current_a = match (roll * 5.0) as usize {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => self.rng.gen_range(-1e6..1e6),
            _ => self.rng.gen_range(-120.0..120.0),
        };
        let p_aux_w = match (self.rng.gen::<f64>() * 4.0) as usize {
            0 => f64::NAN,
            1 => self.rng.gen_range(-1e5..1e5),
            _ => self.rng.gen_range(0.0..2_000.0),
        };
        ControlInput {
            battery_current_a,
            gear: self.rng.gen_range(0..9),
            p_aux_w,
        }
    }
}

/// Wraps the supervised policy and verifies every emitted control:
/// feasible per the step's own `peek_with_context` probe, or — when even
/// the feasibility search comes up empty — exactly the limp-home
/// control, never an arbitrary infeasible one.
struct AssertFeasible {
    inner: SupervisedPolicy<Chaotic>,
    dt: f64,
    violations: usize,
}

impl HevPolicy for AssertFeasible {
    fn begin_episode(&mut self) {
        self.inner.begin_episode();
    }

    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let control = self.inner.decide(hev, obs);
        if hev.peek_with_context(obs.ctx, &control, self.dt).is_err()
            && control != fallback_control(hev, obs.demand, self.dt)
        {
            self.violations += 1;
        }
        control
    }

    fn feedback(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        outcome: &StepOutcome,
        reward: f64,
    ) {
        self.inner.feedback(hev, obs, outcome, reward);
    }

    fn end_episode(&mut self) {
        self.inner.end_episode();
    }

    fn degradation(&self) -> Option<DegradationReport> {
        self.inner.degradation()
    }
}

proptest! {
    /// The supervisor's output is feasible at every step of a cycle that
    /// exercises stopped, propelling, braking, and cruising demands,
    /// whatever the wrapped policy emits and whatever faults are active.
    #[test]
    fn supervised_output_always_feasible(
        policy_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
        severity in 0.0f64..2.0,
        cruise_kmh in 20.0f64..70.0,
        accel_s in 4.0f64..12.0,
    ) {
        // Idle (stopped) → accelerate (propelling) → cruise → brake to
        // rest (regenerating), twice for window coverage.
        let cycle = ProfileBuilder::new("prop")
            .idle(4.0)
            .trip(cruise_kmh, accel_s, 10.0, accel_s * 0.8, 3.0)
            .trip(cruise_kmh * 0.6, accel_s * 0.5, 6.0, accel_s * 0.5, 2.0)
            .build()
            .unwrap();
        let reward = RewardConfig::default();
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let mut plan = FaultPlan::new(FaultConfig::at_severity(severity), plan_seed);
        plan.degrade_plant(&mut hev);
        let mut controller = AssertFeasible {
            inner: SupervisedPolicy::new(Chaotic {
                rng: StdRng::seed_from_u64(policy_seed),
            }),
            dt: reward.dt_s,
            violations: 0,
        };
        let m = simulate_with_faults(&mut hev, &cycle, &mut controller, &reward, Some(&mut plan));
        prop_assert_eq!(controller.violations, 0);
        // The faulted cycle still completes every step.
        prop_assert_eq!(m.steps, cycle.len());
        let report = m.degradation.expect("supervised run carries a report");
        prop_assert_eq!(report.decisions, cycle.len());
    }

    /// The supervisor's myopic tier resolves through the batched inner
    /// optimization by default; forcing the scalar reference
    /// implementation instead must not change a single decision —
    /// metrics and degradation reports are bit-identical under the same
    /// chaotic policy and fault plan. (Together with
    /// `supervised_output_always_feasible`, this pins that the batched
    /// resolve never lets an infeasible control through: the scalar path
    /// rejects it, and the batched path equals the scalar path.)
    #[test]
    fn supervised_batched_resolve_matches_scalar_reference(
        policy_seed in 0u64..1_000,
        plan_seed in 0u64..1_000,
        severity in 0.0f64..2.0,
        cruise_kmh in 20.0f64..70.0,
    ) {
        let cycle = ProfileBuilder::new("prop")
            .idle(3.0)
            .trip(cruise_kmh, 6.0, 8.0, 5.0, 3.0)
            .build()
            .unwrap();
        let reward = RewardConfig::default();
        let run = |scalar_reference: bool| {
            let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
            let mut plan = FaultPlan::new(FaultConfig::at_severity(severity), plan_seed);
            plan.degrade_plant(&mut hev);
            let mut config = SupervisorConfig::default();
            config.inner.scalar_reference = scalar_reference;
            let mut controller = SupervisedPolicy::with_config(
                Chaotic { rng: StdRng::seed_from_u64(policy_seed) },
                config,
            );
            simulate_with_faults(&mut hev, &cycle, &mut controller, &reward, Some(&mut plan))
        };
        let batched = run(false);
        let scalar = run(true);
        prop_assert_eq!(batched, scalar);
    }
}
