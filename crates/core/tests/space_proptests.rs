//! Property-based tests of the controller's state/action spaces and
//! reward.

use hev_control::{ActionSpace, RewardConfig, StateSample, StateSpace, StateSpaceConfig};
use hev_model::{OperatingMode, StepOutcome};
use proptest::prelude::*;

fn outcome(fuel_g: f64, utility: f64, p_batt: f64, soc: f64) -> StepOutcome {
    StepOutcome {
        mode: OperatingMode::IceOnly,
        fuel_rate_g_per_s: fuel_g,
        fuel_g,
        engine_started: false,
        ice_torque_nm: 0.0,
        ice_speed_rad_s: 0.0,
        em_torque_nm: 0.0,
        em_speed_rad_s: 0.0,
        battery_current_a: 0.0,
        battery_power_w: p_batt,
        p_aux_w: 600.0,
        aux_utility: utility,
        friction_brake_torque_nm: 0.0,
        soc_before: soc,
        soc_after: soc,
    }
}

proptest! {
    /// Every observation encodes into a valid state, and encoding is
    /// locally constant (same levels ⇒ same state).
    #[test]
    fn encoding_total_and_stable(
        p in -1e5f64..1e5,
        v in -5.0f64..60.0,
        q in 0.0f64..1.0,
        pre in -1e5f64..1e5,
    ) {
        let space = StateSpace::new(StateSpaceConfig::with_prediction());
        let s = space.encode(&StateSample {
            power_demand_w: p,
            speed_mps: v,
            soc: q,
            prediction_w: pre,
        });
        prop_assert!(s < space.n_states());
        // Encoding is pure: the identical sample re-encodes identically,
        // and a tiny nudge still lands inside the table.
        let again = space.encode(&StateSample {
            power_demand_w: p,
            speed_mps: v,
            soc: q,
            prediction_w: pre,
        });
        prop_assert_eq!(s, again);
        let s2 = space.encode(&StateSample {
            power_demand_w: p + 1e-9,
            speed_mps: v,
            soc: q,
            prediction_w: pre,
        });
        prop_assert!(s2 < space.n_states());
    }

    /// Full action space decode is a bijection onto distinct controls.
    #[test]
    fn full_action_space_bijective(
        gears in 1usize..6,
        n_aux in 2usize..5,
    ) {
        let aux: Vec<f64> = (0..n_aux).map(|k| 100.0 + 300.0 * k as f64).collect();
        let space = ActionSpace::full(gears, aux);
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.len() {
            let c = space.decode(i);
            let key = (
                c.battery_current_a.to_bits(),
                c.gear.unwrap(),
                c.p_aux_w.unwrap().to_bits(),
            );
            prop_assert!(seen.insert(key));
        }
        prop_assert_eq!(seen.len(), space.len());
    }

    /// The learning reward is monotone: more fuel is never better, more
    /// utility is never worse, and discharging more is never better —
    /// all else equal, mid-window.
    #[test]
    fn reward_monotonicity(
        fuel in 0.0f64..3.0,
        extra_fuel in 0.01f64..2.0,
        utility in -2.0f64..0.0,
        utility_gain in 0.01f64..1.0,
        p_batt in -15e3f64..15e3,
        extra_power in 1.0f64..5e3,
    ) {
        let cfg = RewardConfig::default();
        let base = cfg.reward(&outcome(fuel, utility, p_batt, 0.6));
        prop_assert!(cfg.reward(&outcome(fuel + extra_fuel, utility, p_batt, 0.6)) < base);
        prop_assert!(cfg.reward(&outcome(fuel, utility + utility_gain, p_batt, 0.6)) > base);
        prop_assert!(cfg.reward(&outcome(fuel, utility, p_batt + extra_power, 0.6)) < base);
    }

    /// The paper reward never exceeds 0 when utility ≤ 0 (its maximum):
    /// matches the paper's observation that rewards are negative.
    #[test]
    fn paper_reward_nonpositive(fuel in 0.0f64..3.0, utility in -4.0f64..0.0) {
        let cfg = RewardConfig::default();
        prop_assert!(cfg.paper_reward(&outcome(fuel, utility, 0.0, 0.6)) <= 0.0);
    }
}
