//! Per-step inner optimization for the reduced action space
//! (paper §4.3.2).
//!
//! Under the reduced action space the RL agent chooses only the battery
//! current; the gear `R(k)` and auxiliary power `p_aux` are then selected
//! "by solving an optimization problem such that the instantaneous reward
//! function can be maximized". Because `p_aux` is optimized continuously
//! here, it needs no discretization — one of the advantages the paper
//! claims for the reduced space.

use crate::reward::RewardConfig;
use hev_model::{ControlInput, ParallelHev, StepOutcome, WheelDemand};
use serde::{Deserialize, Serialize};

/// A fully resolved action: the control input, the predicted outcome, and
/// its instantaneous reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAction {
    /// The realized control input.
    pub control: ControlInput,
    /// The outcome [`ParallelHev::peek`] predicts for it.
    pub outcome: StepOutcome,
    /// Its instantaneous reward.
    pub reward: f64,
}

/// The inner optimizer: maximizes the instantaneous reward over
/// `(gear, p_aux)` for a given battery current.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InnerOptimizer {
    /// Coarse grid points over the auxiliary power range.
    pub aux_grid: usize,
    /// Ternary-search refinement iterations around the best grid point.
    pub refine_iters: usize,
    /// Locks the auxiliary power to a fixed value instead of optimizing
    /// it — this reproduces the powertrain-only RL baseline (ICCAD'14),
    /// which ignores auxiliary control.
    pub fixed_aux_w: Option<f64>,
}

impl Default for InnerOptimizer {
    fn default() -> Self {
        Self {
            aux_grid: 7,
            refine_iters: 12,
            fixed_aux_w: None,
        }
    }
}

impl InnerOptimizer {
    /// An optimizer with the auxiliary power pinned to `p_aux_w`.
    pub fn with_fixed_aux(p_aux_w: f64) -> Self {
        Self {
            fixed_aux_w: Some(p_aux_w),
            ..Self::default()
        }
    }

    /// Resolves the best `(gear, p_aux)` for the given battery current,
    /// or `None` when no combination is feasible (the action is masked).
    pub fn resolve(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let mut best: Option<ResolvedAction> = None;
        for gear in 0..hev.drivetrain().num_gears() {
            let candidate = match self.fixed_aux_w {
                Some(aux) => self.evaluate(hev, demand, battery_current_a, gear, aux, dt, reward),
                None => self.best_aux_for_gear(hev, demand, battery_current_a, gear, dt, reward),
            };
            if let Some(c) = candidate {
                if best.is_none_or(|b| c.reward > b.reward) {
                    best = Some(c);
                }
            }
        }
        best
    }

    /// Cheap feasibility probe: is the current realizable in *any* gear
    /// with the preferred auxiliary power? Used as the action mask before
    /// paying for the full optimization.
    pub fn feasible(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
    ) -> bool {
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        (0..hev.drivetrain().num_gears()).any(|gear| {
            hev.peek(
                demand,
                &ControlInput {
                    battery_current_a,
                    gear,
                    p_aux_w: aux,
                },
                dt,
            )
            .is_ok()
        })
    }

    #[allow(clippy::too_many_arguments)] // private helper threading one tuple
    fn evaluate(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        current: f64,
        gear: usize,
        p_aux_w: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let control = ControlInput {
            battery_current_a: current,
            gear,
            p_aux_w,
        };
        let outcome = hev.peek(demand, &control, dt).ok()?;
        Some(ResolvedAction {
            control,
            outcome,
            reward: reward.reward(&outcome),
        })
    }

    fn best_aux_for_gear(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        current: f64,
        gear: usize,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let (lo, hi) = hev.aux().power_range();
        let n = self.aux_grid.max(2);
        let mut best: Option<(usize, ResolvedAction)> = None;
        for k in 0..n {
            let p = lo + (hi - lo) * k as f64 / (n - 1) as f64;
            if let Some(r) = self.evaluate(hev, demand, current, gear, p, dt, reward) {
                if best.as_ref().is_none_or(|(_, b)| r.reward > b.reward) {
                    best = Some((k, r));
                }
            }
        }
        let (k_best, mut best) = best?;
        // Ternary-search refinement in the bracket around the best grid
        // point (the reward is uni-modal in p_aux in practice: fuel rises
        // monotonically with p_aux while the utility is quasi-concave).
        let step = (hi - lo) / (n - 1) as f64;
        let mut a = (lo + step * (k_best as f64 - 1.0)).max(lo);
        let mut b = (lo + step * (k_best as f64 + 1.0)).min(hi);
        for _ in 0..self.refine_iters {
            let m1 = a + (b - a) / 3.0;
            let m2 = b - (b - a) / 3.0;
            let r1 = self.evaluate(hev, demand, current, gear, m1, dt, reward);
            let r2 = self.evaluate(hev, demand, current, gear, m2, dt, reward);
            match (r1, r2) {
                (Some(x1), Some(x2)) => {
                    if x1.reward >= x2.reward {
                        b = m2;
                        if x1.reward > best.reward {
                            best = x1;
                        }
                    } else {
                        a = m1;
                        if x2.reward > best.reward {
                            best = x2;
                        }
                    }
                }
                (Some(x1), None) => {
                    b = m2;
                    if x1.reward > best.reward {
                        best = x1;
                    }
                }
                (None, Some(x2)) => {
                    a = m1;
                    if x2.reward > best.reward {
                        best = x2;
                    }
                }
                (None, None) => break,
            }
        }
        Some(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn cfg() -> RewardConfig {
        RewardConfig::default()
    }

    #[test]
    fn resolves_cruise_current() {
        let hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 2.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.fuel_g > 0.0);
        assert!(r.control.gear < 5);
        let (lo, hi) = hev.aux().power_range();
        assert!((lo..=hi).contains(&r.control.p_aux_w));
    }

    #[test]
    fn optimized_aux_lands_near_preferred_when_cheap() {
        // At a stop the only cost of aux power is battery draw; the
        // optimum should be near (slightly below) the preferred 600 W.
        let hev = hev();
        let d = hev.demand(0.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 0.0, 1.0, &cfg())
            .unwrap();
        assert!(
            (400.0..=650.0).contains(&r.control.p_aux_w),
            "p_aux {}",
            r.control.p_aux_w
        );
    }

    #[test]
    fn beats_every_fixed_grid_choice() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let opt = InnerOptimizer::default();
        let best = opt.resolve(&hev, &d, 10.0, 1.0, &cfg()).unwrap();
        // Exhaustive check over a fine (gear, aux) grid.
        for gear in 0..5 {
            for k in 0..30 {
                let p = 100.0 + 1_400.0 * k as f64 / 29.0;
                let c = ControlInput {
                    battery_current_a: 10.0,
                    gear,
                    p_aux_w: p,
                };
                if let Ok(o) = hev.peek(&d, &c, 1.0) {
                    assert!(
                        cfg().reward(&o) <= best.reward + 1e-6,
                        "grid (g{gear}, {p:.0} W) beats optimizer"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_aux_pins_power() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let r = InnerOptimizer::with_fixed_aux(600.0)
            .resolve(&hev, &d, 10.0, 1.0, &cfg())
            .unwrap();
        assert_eq!(r.control.p_aux_w, 600.0);
    }

    #[test]
    fn infeasible_current_is_masked() {
        // At the charge-sustaining floor, any control resolving to an
        // electric-only discharge is masked in every gear.
        let hev = ParallelHev::new(hev_model::HevParams::default_parallel_hev(), 0.400001).unwrap();
        let d = hev.demand(3.0, 0.3, 0.0); // gentle EV-capable launch
        let opt = InnerOptimizer::default();
        assert!(opt.resolve(&hev, &d, 100.0, 1.0, &cfg()).is_none());
        assert!(!opt.feasible(&hev, &d, 100.0, 1.0));
    }

    #[test]
    fn feasible_probe_matches_resolve_on_common_cases() {
        let hev = hev();
        let opt = InnerOptimizer::default();
        for (v, a) in [
            (0.0, 0.0),
            (5.0, 0.5),
            (20.0, 0.0),
            (15.0, -1.0),
            (30.0, 0.3),
        ] {
            let d = hev.demand(v, a, 0.0);
            for i in [-40.0, -8.0, 0.0, 8.0, 40.0, 100.0] {
                let probe = opt.feasible(&hev, &d, i, 1.0);
                let full = opt.resolve(&hev, &d, i, 1.0, &cfg()).is_some();
                // The probe may be conservative (false negatives possible
                // in principle) but must never claim feasibility the full
                // resolve cannot deliver.
                if probe {
                    assert!(full, "probe true but resolve failed at v={v} a={a} i={i}");
                }
            }
        }
    }

    #[test]
    fn regen_braking_resolves() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, -25.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.em_torque_nm < 0.0);
        assert_eq!(r.outcome.fuel_g, 0.0);
    }
}
