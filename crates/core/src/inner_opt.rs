//! Per-step inner optimization for the reduced action space
//! (paper §4.3.2).
//!
//! Under the reduced action space the RL agent chooses only the battery
//! current; the gear `R(k)` and auxiliary power `p_aux` are then selected
//! "by solving an optimization problem such that the instantaneous reward
//! function can be maximized". Because `p_aux` is optimized continuously
//! here, it needs no discretization — one of the advantages the paper
//! claims for the reduced space.

use crate::reward::RewardConfig;
use hev_model::{
    CandidateBatch, ControlInput, CurrentContext, CurrentContextCache, ParallelHev, StepContext,
    StepOutcome, WheelDemand,
};
use serde::{Deserialize, Serialize};

/// A fully resolved action: the control input, the predicted outcome, and
/// its instantaneous reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAction {
    /// The realized control input.
    pub control: ControlInput,
    /// The outcome [`ParallelHev::peek`] predicts for it.
    pub outcome: StepOutcome,
    /// Its instantaneous reward.
    pub reward: f64,
}

/// The inner optimizer: maximizes the instantaneous reward over
/// `(gear, p_aux)` for a given battery current.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InnerOptimizer {
    /// Coarse grid points over the auxiliary power range.
    pub aux_grid: usize,
    /// Ternary-search refinement iterations around the best grid point.
    pub refine_iters: usize,
    /// Locks the auxiliary power to a fixed value instead of optimizing
    /// it — this reproduces the powertrain-only RL baseline (ICCAD'14),
    /// which ignores auxiliary control.
    pub fixed_aux_w: Option<f64>,
    /// Forces the scalar reference implementation on the batched entry
    /// points ([`InnerOptimizer::resolve_with_scratch`],
    /// [`InnerOptimizer::fill_mask_batched`]): every candidate is probed
    /// one `peek` at a time, exactly as before the batched kernel
    /// landed. Both paths resolve bit-identical controls; this switch
    /// exists so end-to-end runs can *prove* it (the CI fig2 `cmp` step
    /// and the batch-vs-scalar determinism tests diff full runs across
    /// the two paths).
    #[serde(default)]
    pub scalar_reference: bool,
}

impl Default for InnerOptimizer {
    fn default() -> Self {
        Self {
            aux_grid: 7,
            refine_iters: 12,
            fixed_aux_w: None,
            scalar_reference: false,
        }
    }
}

impl InnerOptimizer {
    /// An optimizer with the auxiliary power pinned to `p_aux_w`.
    pub fn with_fixed_aux(p_aux_w: f64) -> Self {
        Self {
            fixed_aux_w: Some(p_aux_w),
            ..Self::default()
        }
    }

    /// Resolves the best `(gear, p_aux)` for the given battery current,
    /// or `None` when no combination is feasible (the action is masked).
    ///
    /// Builds a [`StepContext`] internally and amortizes it over the
    /// `gears × (aux_grid + 2·refine_iters)` evaluations. Callers that
    /// resolve several currents against one demand should build the
    /// context once and use [`InnerOptimizer::resolve_with`].
    pub fn resolve(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let ctx = hev.step_context(demand);
        self.resolve_with(hev, &ctx, battery_current_a, dt, reward)
    }

    /// [`InnerOptimizer::resolve`] against a prebuilt [`StepContext`].
    ///
    /// Builds the per-current battery precomputation once and shares it
    /// across every `(gear, p_aux)` evaluation of this call.
    #[inline]
    pub fn resolve_with(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let _span = hev_trace::span::enter("control.resolve");
        let cur = hev.current_context(battery_current_a, dt);
        if !ctx.is_stopped() && !cur.is_feasible() {
            // The commanded current violates the pack limits: every
            // moving-mode evaluation replays the same error, so the whole
            // sweep is masked without paying for a single one.
            return None;
        }
        // The sweep tracks only `(gear, p_aux, reward)`; losers' outcomes
        // are never materialized, and the winner is completed once at the
        // end. The completion is a pure function of `(ctx, cur, control)`,
        // so the re-evaluation returns the same bits the sweep saw, and
        // the strict-`>`/first-wins comparisons on the same reward floats
        // select the same winner a materializing sweep would.
        let mut best: Option<(usize, f64, f64)> = None;
        for gear in 0..hev.drivetrain().num_gears() {
            if !ctx.gear_is_viable(gear) {
                // A control-independent check already failed for this
                // gear during precomputation; no candidate here can be
                // feasible, so skipping cannot change the argmax.
                continue;
            }
            let candidate = match self.fixed_aux_w {
                Some(aux) => self
                    .evaluate_reward(hev, ctx, &cur, gear, aux, reward)
                    .map(|r| (aux, r)),
                None => self.best_aux_for_gear(hev, ctx, &cur, gear, reward),
            };
            if let Some((p, r)) = candidate {
                if best.is_none_or(|(_, _, br)| r > br) {
                    best = Some((gear, p, r));
                }
            }
        }
        let (gear, p_aux_w, _) = best?;
        self.evaluate(hev, ctx, &cur, gear, p_aux_w, reward)
    }

    /// Cheap feasibility probe: is the current realizable in *any* gear
    /// with the preferred auxiliary power? Used as the action mask before
    /// paying for the full optimization.
    pub fn feasible(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
    ) -> bool {
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        (0..hev.drivetrain().num_gears()).any(|gear| {
            hev.peek(
                demand,
                &ControlInput {
                    battery_current_a,
                    gear,
                    p_aux_w: aux,
                },
                dt,
            )
            .is_ok()
        })
    }

    /// [`InnerOptimizer::feasible`] against a prebuilt [`StepContext`] —
    /// the per-step action-mask path, where the context built for the
    /// final apply is already in hand.
    #[inline]
    pub fn feasible_with(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        battery_current_a: f64,
        dt: f64,
    ) -> bool {
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        let cur = hev.current_context(battery_current_a, dt);
        if !ctx.is_stopped() && !cur.is_feasible() {
            return false;
        }
        (0..hev.drivetrain().num_gears()).any(|gear| {
            ctx.gear_is_viable(gear)
                && hev
                    .peek_with_contexts(
                        ctx,
                        &cur,
                        &ControlInput {
                            battery_current_a,
                            gear,
                            p_aux_w: aux,
                        },
                    )
                    .is_ok()
        })
    }

    /// Materializes one `(gear, p_aux)` candidate against the prebuilt
    /// contexts; `None` when infeasible.
    #[inline(always)]
    fn evaluate(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        p_aux_w: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let control = ControlInput {
            battery_current_a: cur.battery_current_a(),
            gear,
            p_aux_w,
        };
        let outcome = hev.peek_with_contexts(ctx, cur, &control).ok()?;
        Some(ResolvedAction {
            control,
            outcome,
            reward: reward.reward(&outcome),
        })
    }

    /// Reward of one `(gear, p_aux)` candidate without keeping its
    /// outcome — the sweep-side evaluation (the reward reads only a few
    /// outcome fields, so the rest of the completion melts away here).
    #[inline(always)]
    fn evaluate_reward(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        p_aux_w: f64,
        reward: &RewardConfig,
    ) -> Option<f64> {
        let control = ControlInput {
            battery_current_a: cur.battery_current_a(),
            gear,
            p_aux_w,
        };
        let outcome = hev.peek_with_contexts(ctx, cur, &control).ok()?;
        Some(reward.reward(&outcome))
    }

    /// The best `(p_aux, reward)` of one gear: coarse grid, then ternary
    /// refinement around the best grid point.
    #[inline(always)]
    fn best_aux_for_gear(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        reward: &RewardConfig,
    ) -> Option<(f64, f64)> {
        let (lo, hi) = hev.aux().power_range();
        let n = self.aux_grid.max(2);
        let mut best: Option<(usize, f64, f64)> = None;
        for k in 0..n {
            let p = lo + (hi - lo) * k as f64 / (n - 1) as f64;
            if let Some(r) = self.evaluate_reward(hev, ctx, cur, gear, p, reward) {
                if best.is_none_or(|(_, _, b)| r > b) {
                    best = Some((k, p, r));
                }
            }
        }
        let (k_best, mut p_best, mut r_best) = best?;
        // Ternary-search refinement in the bracket around the best grid
        // point (the reward is uni-modal in p_aux in practice: fuel rises
        // monotonically with p_aux while the utility is quasi-concave).
        let _span = hev_trace::span::enter("control.refine");
        let step = (hi - lo) / (n - 1) as f64;
        let mut a = (lo + step * (k_best as f64 - 1.0)).max(lo);
        let mut b = (lo + step * (k_best as f64 + 1.0)).min(hi);
        for _ in 0..self.refine_iters {
            let m1 = a + (b - a) / 3.0;
            let m2 = b - (b - a) / 3.0;
            let r1 = self.evaluate_reward(hev, ctx, cur, gear, m1, reward);
            let r2 = self.evaluate_reward(hev, ctx, cur, gear, m2, reward);
            match (r1, r2) {
                (Some(x1), Some(x2)) => {
                    if x1 >= x2 {
                        b = m2;
                        if x1 > r_best {
                            r_best = x1;
                            p_best = m1;
                        }
                    } else {
                        a = m1;
                        if x2 > r_best {
                            r_best = x2;
                            p_best = m2;
                        }
                    }
                }
                (Some(x1), None) => {
                    b = m2;
                    if x1 > r_best {
                        r_best = x1;
                        p_best = m1;
                    }
                }
                (None, Some(x2)) => {
                    a = m1;
                    if x2 > r_best {
                        r_best = x2;
                        p_best = m2;
                    }
                }
                (None, None) => break,
            }
        }
        Some((p_best, r_best))
    }

    /// Batched action mask over a current grid: `mask[idx]` answers the
    /// same question as [`InnerOptimizer::feasible_with`] on
    /// `currents[idx]` — verdict-identical and, wave by wave, probing
    /// exactly the candidates the scalar short-circuit would.
    ///
    /// *Stopped* steps resolve independently of both the commanded
    /// current and the gear, so one probe decides every entry (the big
    /// idle-time saving). *Moving* steps keep a bitmask of undecided
    /// currents and sweep gear-major waves: each wave batch-evaluates
    /// all still-undecided currents at the next viable gear, and a
    /// feasible lane retires its current. A current feasible first in
    /// gear `g` therefore costs `g + 1` evaluations — the same as the
    /// scalar `any()` — and the verdicts are bit-identical because each
    /// lane runs the scalar completion.
    ///
    /// Falls back to the scalar loop when `scalar_reference` is set or
    /// the grid exceeds the 64-bit wave mask.
    ///
    /// The scratch's context cache is cleared on entry, filled by the
    /// per-current pack-limit precheck (which must build every context
    /// anyway), and then feeds the gear waves so no wave rebuilds a
    /// context — the whole mask builds each current's context exactly
    /// once, like the scalar loop.
    pub fn fill_mask_batched(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        currents: &[f64],
        dt: f64,
        scratch: &mut ResolveScratch,
        mask: &mut [bool],
    ) {
        debug_assert_eq!(currents.len(), mask.len());
        if self.scalar_reference || currents.len() > 64 {
            for (m, &i) in mask.iter_mut().zip(currents) {
                *m = self.feasible_with(hev, ctx, i, dt);
            }
            return;
        }
        let ResolveScratch {
            batch,
            ctx_cache: cache,
            ..
        } = scratch;
        cache.clear();
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        let num_gears = hev.drivetrain().num_gears();
        if ctx.is_stopped() {
            // A stopped step ignores the commanded current and the gear:
            // every (current, viable gear) probe replays one verdict, so
            // one lane decides the whole grid.
            let verdict = match (0..num_gears).find(|&g| ctx.gear_is_viable(g)) {
                Some(gear) => {
                    batch.begin(dt);
                    batch.push(currents.first().copied().unwrap_or(0.0), gear, aux);
                    hev.evaluate_batch_scored(ctx, batch, cache, |_| 0.0);
                    batch.is_feasible(0)
                }
                None => false,
            };
            mask.fill(verdict);
            return;
        }
        let mut undecided: u64 = 0;
        for (idx, &i) in currents.iter().enumerate() {
            mask[idx] = false;
            // The pack-limit precheck costs no evaluation, exactly like
            // the scalar probe's early `false` — and it seeds the cache
            // with every context the waves below will need.
            if cache.get_or_insert(hev, i, dt).is_feasible() {
                undecided |= 1 << idx;
            }
        }
        for gear in 0..num_gears {
            if undecided == 0 {
                break;
            }
            if !ctx.gear_is_viable(gear) {
                continue;
            }
            batch.begin(dt);
            let mut bits = undecided;
            while bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                batch.push_tagged(currents[idx], gear, aux, idx);
            }
            // Score-only waves: the mask consumes nothing but the
            // verdicts, so no outcome field is ever materialized.
            hev.evaluate_batch_scored(ctx, batch, cache, |_| 0.0);
            for lane in 0..batch.len() {
                if batch.is_feasible(lane) {
                    let idx = batch.tag(lane);
                    mask[idx] = true;
                    undecided &= !(1 << idx);
                }
            }
        }
    }

    /// [`InnerOptimizer::resolve_with`] on the batched kernel, reusing
    /// the caller's [`ResolveScratch`] buffers.
    ///
    /// Returns the bit-identical `ResolvedAction` the scalar path
    /// resolves (same winner by the same strict-`>`/first-wins
    /// comparisons on the same reward floats; the sweep is score-only,
    /// and the winner is re-materialized by one pure replay of its
    /// lane), in fewer evaluations:
    ///
    /// * the aux grid of every viable gear evaluates as one wide wave;
    ///   the per-gear ternary refinements — a data-dependent chain of
    ///   two probes per iteration, too narrow for the batch machinery
    ///   to amortize — run the scalar bracket loop on the cached
    ///   battery context, replaying the same probes in the same order;
    /// * a *stopped* step resolves independently of the gear, so only
    ///   the first viable gear (the gear the scalar argmax picks — later
    ///   gears tie and strict-`>` keeps the first) pays for its aux
    ///   optimization;
    /// * the winner's replay ([`ParallelHev::replay_candidate`]) counts
    ///   no evaluation, replacing the scalar path's final counted
    ///   re-evaluation (both are the same pure completion, so the
    ///   replayed bits are the bits the scalar winner returns).
    ///
    /// Delegates to the scalar reference when `scalar_reference` is set.
    pub fn resolve_with_scratch(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
        scratch: &mut ResolveScratch,
    ) -> Option<ResolvedAction> {
        if self.scalar_reference {
            return self.resolve_with(hev, ctx, battery_current_a, dt, reward);
        }
        let _span = hev_trace::span::enter("control.resolve");
        // One resolve commands one current, but evaluates it across many
        // waves (the aux grid plus every ternary iteration). The scratch
        // cache makes the whole resolve build its battery context once —
        // the scalar path's cost — instead of once per wave.
        scratch.ctx_cache.clear();
        if !ctx.is_stopped()
            && !scratch
                .ctx_cache
                .get_or_insert(hev, battery_current_a, dt)
                .is_feasible()
        {
            return None;
        }
        scratch.gears.clear();
        for gear in 0..hev.drivetrain().num_gears() {
            if !ctx.gear_is_viable(gear) {
                continue;
            }
            scratch.gears.push(GearCursor {
                gear,
                refining: false,
                a: 0.0,
                b: 0.0,
                best: None,
            });
            if ctx.is_stopped() {
                // Gear-independent resolution: every later viable gear
                // ties this one and loses the scalar strict-`>` argmax.
                break;
            }
        }
        let batch = &mut scratch.batch;
        if let Some(aux) = self.fixed_aux_w {
            batch.begin(dt);
            for c in scratch.gears.iter() {
                batch.push(battery_current_a, c.gear, aux);
            }
            hev.evaluate_batch_scored(ctx, batch, &mut scratch.ctx_cache, |o| reward.reward(o));
            for (lane, c) in scratch.gears.iter_mut().enumerate() {
                if let Some(r) = batch.score(lane) {
                    c.best = Some((aux, r));
                }
            }
        } else {
            let (lo, hi) = hev.aux().power_range();
            let n = self.aux_grid.max(2);
            let step = (hi - lo) / (n - 1) as f64;
            // Wave 1: the coarse aux grid of every viable gear at once.
            batch.begin(dt);
            for c in scratch.gears.iter() {
                for k in 0..n {
                    let p = lo + (hi - lo) * k as f64 / (n - 1) as f64;
                    batch.push_tagged(battery_current_a, c.gear, p, k);
                }
            }
            hev.evaluate_batch_scored(ctx, batch, &mut scratch.ctx_cache, |o| reward.reward(o));
            let mut lane = 0;
            for c in scratch.gears.iter_mut() {
                let mut k_best: Option<usize> = None;
                for k in 0..n {
                    if let Some(r) = batch.score(lane) {
                        if c.best.is_none_or(|(_, br)| r > br) {
                            let p = lo + (hi - lo) * k as f64 / (n - 1) as f64;
                            c.best = Some((p, r));
                            k_best = Some(k);
                        }
                    }
                    lane += 1;
                }
                if let Some(k) = k_best {
                    c.a = (lo + step * (k as f64 - 1.0)).max(lo);
                    c.b = (lo + step * (k as f64 + 1.0)).min(hi);
                    c.refining = true;
                }
            }
            // Ternary refinement, per gear: each iteration's two probes
            // depend on the previous iteration's bracket, so a wave is
            // only ever two lanes wide — far too narrow to amortize the
            // batch machinery (measured: lockstep two-lane waves cost
            // more than the physics they evaluate). The scalar
            // refinement loop on the cached context replays the
            // identical bracket updates and strict-`>` comparisons —
            // per-gear search state is independent across gears — so
            // the probes, their count, and the resulting bits are
            // exactly the lockstep ones; only the bookkeeping is gone.
            let _refine = hev_trace::span::enter("control.refine");
            let cur = *scratch.ctx_cache.get_or_insert(hev, battery_current_a, dt);
            for c in scratch.gears.iter_mut() {
                if !c.refining {
                    continue;
                }
                for _ in 0..self.refine_iters {
                    let m1 = c.a + (c.b - c.a) / 3.0;
                    let m2 = c.b - (c.b - c.a) / 3.0;
                    let r1 = self.evaluate_reward(hev, ctx, &cur, c.gear, m1, reward);
                    let r2 = self.evaluate_reward(hev, ctx, &cur, c.gear, m2, reward);
                    let r_best = c.best.map(|(_, r)| r);
                    match (r1, r2) {
                        (Some(x1), Some(x2)) => {
                            if x1 >= x2 {
                                c.b = m2;
                                if r_best.is_none_or(|r| x1 > r) {
                                    c.best = Some((m1, x1));
                                }
                            } else {
                                c.a = m1;
                                if r_best.is_none_or(|r| x2 > r) {
                                    c.best = Some((m2, x2));
                                }
                            }
                        }
                        (Some(x1), None) => {
                            c.b = m2;
                            if r_best.is_none_or(|r| x1 > r) {
                                c.best = Some((m1, x1));
                            }
                        }
                        (None, Some(x2)) => {
                            c.a = m1;
                            if r_best.is_none_or(|r| x2 > r) {
                                c.best = Some((m2, x2));
                            }
                        }
                        (None, None) => break,
                    }
                }
            }
        }
        // Winner across gears in ascending order under strict `>` —
        // the scalar outer loop's exact comparison sequence.
        let mut win: Option<(usize, f64, f64)> = None;
        for c in scratch.gears.iter() {
            if let Some((p, r)) = c.best {
                if win.is_none_or(|(_, _, wr)| r > wr) {
                    win = Some((c.gear, p, r));
                }
            }
        }
        let (gear, p_aux_w, r) = win?;
        let control = ControlInput {
            battery_current_a,
            gear,
            p_aux_w,
        };
        // A pure replay of the winning lane (same bits, no extra eval);
        // it cannot fail — the lane scored, so it was feasible.
        let outcome = hev
            .replay_candidate(ctx, &mut scratch.ctx_cache, &control, dt)
            .ok()?;
        Some(ResolvedAction {
            control,
            outcome,
            reward: r,
        })
    }
}

/// Reusable buffers for the batched resolve path: the candidate batch
/// the waves evaluate through and the per-gear search cursors. One
/// lives in each controller's per-step scratch; the DP solver carries
/// one across its whole grid sweep.
#[derive(Debug, Clone, Default)]
pub struct ResolveScratch {
    batch: CandidateBatch,
    gears: Vec<GearCursor>,
    /// Per-resolve battery-context cache (cleared at each resolve entry,
    /// so it never outlives the battery state it was built against).
    ctx_cache: CurrentContextCache,
}

impl ResolveScratch {
    /// A scratch with empty buffers (they grow on first use and are
    /// reused afterwards).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One lane of a fused cross-episode mask wave: the lane's optimizer,
/// vehicle, step context, current grid, and per-lane scratch/mask. Only
/// the candidate-batch *storage* is shared across lanes; every context,
/// cache, and verdict stays per-lane.
pub(crate) struct WaveMaskLane<'a> {
    pub(crate) inner: InnerOptimizer,
    pub(crate) hev: &'a ParallelHev,
    pub(crate) ctx: &'a StepContext,
    pub(crate) currents: &'a [f64],
    pub(crate) scratch: &'a mut ResolveScratch,
    pub(crate) mask: &'a mut [bool],
}

/// Evaluates the wave accumulated in `shared`: one `record_batch` for
/// the fused width, then each lane's contiguous slice against that
/// lane's own context and cache. Per-lane eval shares (slice length)
/// and cache hits/misses are attributed into `counts`; the fused call
/// count itself is left unattributed (lanes share one kernel call by
/// design — the whole point of fusing).
fn evaluate_wave(
    lanes: &mut [WaveMaskLane<'_>],
    shared: &mut CandidateBatch,
    slices: &[(usize, std::ops::Range<usize>)],
    counts: &mut [hev_trace::evals::Counts],
) {
    if shared.is_empty() {
        return;
    }
    shared.reset_scores();
    hev_trace::evals::record_batch(shared.len() as u64);
    for &(i, ref range) in slices {
        let lane = &mut lanes[i];
        let before = hev_trace::evals::counts();
        lane.hev.evaluate_scored_range(
            lane.ctx,
            shared,
            range.clone(),
            &mut lane.scratch.ctx_cache,
            |_| 0.0,
        );
        // The range evaluation itself records nothing (the fused
        // `record_batch` above covered it); credit this lane its slice.
        let mut delta = hev_trace::evals::counts().since(&before);
        delta.evals = (range.end - range.start) as u64;
        delta.batch_lanes = delta.evals;
        counts[i].add(&delta);
    }
}

/// [`InnerOptimizer::fill_mask_batched`] across many lockstep episode
/// lanes at once: every lane's gear-`g` wave lands in one shared
/// [`CandidateBatch`], so the fused kernel width scales with the wave
/// width. Verdicts, per-lane evaluation counts, and cache hit/miss
/// tallies are bit-identical to running the sequential kernel per lane
/// — each lane contributes exactly the candidates its sequential waves
/// would, evaluated against its own context and cache in its own grid
/// order (only kernel *calls* fuse; see `evaluate_wave`).
///
/// Callers must pre-filter lanes to the fusable configuration (reduced
/// action space, `scalar_reference` off, at most 64 grid currents,
/// one common `dt`); `JointController::prefill_wave` does.
pub(crate) fn fill_mask_wave(
    lanes: &mut [WaveMaskLane<'_>],
    dt: f64,
    shared: &mut CandidateBatch,
    counts: &mut [hev_trace::evals::Counts],
) {
    let n = lanes.len();
    debug_assert_eq!(n, counts.len());
    let mut undecided = vec![0u64; n];
    let mut stopped = vec![false; n];
    let mut aux = vec![0.0f64; n];
    // Per-lane entry, exactly as the sequential kernel's: clear the
    // cache, resolve the aux setpoint, and run the pack-limit precheck
    // that seeds the cache and the undecided set.
    for (i, lane) in lanes.iter_mut().enumerate() {
        debug_assert_eq!(lane.currents.len(), lane.mask.len());
        debug_assert!(!lane.inner.scalar_reference && lane.currents.len() <= 64);
        let before = hev_trace::evals::counts();
        lane.scratch.ctx_cache.clear();
        aux[i] = lane
            .inner
            .fixed_aux_w
            .unwrap_or_else(|| lane.hev.aux().preferred_power());
        stopped[i] = lane.ctx.is_stopped();
        if !stopped[i] {
            for (idx, &cur) in lane.currents.iter().enumerate() {
                lane.mask[idx] = false;
                if lane
                    .scratch
                    .ctx_cache
                    .get_or_insert(lane.hev, cur, dt)
                    .is_feasible()
                {
                    undecided[i] |= 1 << idx;
                }
            }
        }
        counts[i].add(&hev_trace::evals::counts().since(&before));
    }
    // Wave 0: stopped lanes (one verdict decides a lane's whole grid).
    shared.begin(dt);
    let mut slices: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
    for (i, lane) in lanes.iter_mut().enumerate() {
        if !stopped[i] {
            continue;
        }
        let num_gears = lane.hev.drivetrain().num_gears();
        match (0..num_gears).find(|&g| lane.ctx.gear_is_viable(g)) {
            Some(gear) => {
                let start = shared.len();
                shared.push_tagged(
                    lane.currents.first().copied().unwrap_or(0.0),
                    gear,
                    aux[i],
                    0,
                );
                slices.push((i, start..shared.len()));
            }
            None => lane.mask.fill(false),
        }
    }
    evaluate_wave(lanes, shared, &slices, counts);
    for &(i, ref range) in &slices {
        let verdict = shared.is_feasible(range.start);
        lanes[i].mask.fill(verdict);
    }
    // Gear-major waves for the moving lanes: gear `g` of every lane
    // fuses into one batch; a feasible lane retires its current, so a
    // current feasible first in gear `g` costs `g + 1` evaluations —
    // the sequential kernel's count, lane by lane.
    let max_gears = lanes
        .iter()
        .map(|l| l.hev.drivetrain().num_gears())
        .max()
        .unwrap_or(0);
    for gear in 0..max_gears {
        if undecided.iter().all(|&u| u == 0) {
            break;
        }
        shared.begin(dt);
        slices.clear();
        for (i, lane) in lanes.iter().enumerate() {
            if stopped[i] || undecided[i] == 0 {
                continue;
            }
            if gear >= lane.hev.drivetrain().num_gears() || !lane.ctx.gear_is_viable(gear) {
                continue;
            }
            let start = shared.len();
            let mut bits = undecided[i];
            while bits != 0 {
                let idx = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                shared.push_tagged(lane.currents[idx], gear, aux[i], idx);
            }
            slices.push((i, start..shared.len()));
        }
        evaluate_wave(lanes, shared, &slices, counts);
        for &(i, ref range) in &slices {
            for pos in range.clone() {
                if shared.is_feasible(pos) {
                    let idx = shared.tag(pos);
                    lanes[i].mask[idx] = true;
                    undecided[i] &= !(1 << idx);
                }
            }
        }
    }
}

/// Per-gear state of the lockstep aux search: the refinement bracket
/// `[a, b]` and the best `(p_aux, reward)` seen so far. Outcomes are
/// never kept — the sweep is score-only, and the across-gear winner is
/// re-materialized once by a pure replay.
#[derive(Debug, Clone, Copy)]
struct GearCursor {
    gear: usize,
    refining: bool,
    a: f64,
    b: f64,
    best: Option<(f64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn cfg() -> RewardConfig {
        RewardConfig::default()
    }

    #[test]
    fn resolves_cruise_current() {
        let hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 2.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.fuel_g > 0.0);
        assert!(r.control.gear < 5);
        let (lo, hi) = hev.aux().power_range();
        assert!((lo..=hi).contains(&r.control.p_aux_w));
    }

    #[test]
    fn optimized_aux_lands_near_preferred_when_cheap() {
        // At a stop the only cost of aux power is battery draw; the
        // optimum should be near (slightly below) the preferred 600 W.
        let hev = hev();
        let d = hev.demand(0.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 0.0, 1.0, &cfg())
            .unwrap();
        assert!(
            (400.0..=650.0).contains(&r.control.p_aux_w),
            "p_aux {}",
            r.control.p_aux_w
        );
    }

    #[test]
    fn beats_every_fixed_grid_choice() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let opt = InnerOptimizer::default();
        let best = opt.resolve(&hev, &d, 10.0, 1.0, &cfg()).unwrap();
        // Exhaustive check over a fine (gear, aux) grid.
        for gear in 0..5 {
            for k in 0..30 {
                let p = 100.0 + 1_400.0 * k as f64 / 29.0;
                let c = ControlInput {
                    battery_current_a: 10.0,
                    gear,
                    p_aux_w: p,
                };
                if let Ok(o) = hev.peek(&d, &c, 1.0) {
                    assert!(
                        cfg().reward(&o) <= best.reward + 1e-6,
                        "grid (g{gear}, {p:.0} W) beats optimizer"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_aux_pins_power() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let r = InnerOptimizer::with_fixed_aux(600.0)
            .resolve(&hev, &d, 10.0, 1.0, &cfg())
            .unwrap();
        assert_eq!(r.control.p_aux_w, 600.0);
    }

    #[test]
    fn infeasible_current_is_masked() {
        // At the charge-sustaining floor, any control resolving to an
        // electric-only discharge is masked in every gear.
        let hev = ParallelHev::new(hev_model::HevParams::default_parallel_hev(), 0.400001).unwrap();
        let d = hev.demand(3.0, 0.3, 0.0); // gentle EV-capable launch
        let opt = InnerOptimizer::default();
        assert!(opt.resolve(&hev, &d, 100.0, 1.0, &cfg()).is_none());
        assert!(!opt.feasible(&hev, &d, 100.0, 1.0));
    }

    #[test]
    fn feasible_probe_matches_resolve_on_common_cases() {
        let hev = hev();
        let opt = InnerOptimizer::default();
        for (v, a) in [
            (0.0, 0.0),
            (5.0, 0.5),
            (20.0, 0.0),
            (15.0, -1.0),
            (30.0, 0.3),
        ] {
            let d = hev.demand(v, a, 0.0);
            for i in [-40.0, -8.0, 0.0, 8.0, 40.0, 100.0] {
                let probe = opt.feasible(&hev, &d, i, 1.0);
                let full = opt.resolve(&hev, &d, i, 1.0, &cfg()).is_some();
                // The probe may be conservative (false negatives possible
                // in principle) but must never claim feasibility the full
                // resolve cannot deliver.
                if probe {
                    assert!(full, "probe true but resolve failed at v={v} a={a} i={i}");
                }
            }
        }
    }

    fn assert_bit_identical(a: &ResolvedAction, b: &ResolvedAction) {
        assert_eq!(a.control.gear, b.control.gear);
        assert_eq!(
            a.control.battery_current_a.to_bits(),
            b.control.battery_current_a.to_bits()
        );
        assert_eq!(a.control.p_aux_w.to_bits(), b.control.p_aux_w.to_bits());
        assert_eq!(a.reward.to_bits(), b.reward.to_bits());
        assert_eq!(a.outcome.fuel_g.to_bits(), b.outcome.fuel_g.to_bits());
        assert_eq!(a.outcome.soc_after.to_bits(), b.outcome.soc_after.to_bits());
        assert_eq!(
            a.outcome.aux_utility.to_bits(),
            b.outcome.aux_utility.to_bits()
        );
        assert_eq!(a.outcome.mode, b.outcome.mode);
    }

    #[test]
    fn batched_resolve_matches_scalar_bit_for_bit() {
        let hev = hev();
        let mut scratch = ResolveScratch::new();
        for opt in [
            InnerOptimizer::default(),
            InnerOptimizer::with_fixed_aux(600.0),
        ] {
            for (v, a) in [
                (0.0, 0.0),
                (3.0, 0.4),
                (15.0, 0.3),
                (15.0, -1.5),
                (30.0, 0.2),
            ] {
                let d = hev.demand(v, a, 0.0);
                let ctx = hev.step_context(&d);
                for i in [-40.0, -8.0, 0.0, 8.0, 40.0, 100.0, 1e6] {
                    let scalar = opt.resolve_with(&hev, &ctx, i, 1.0, &cfg());
                    let batched =
                        opt.resolve_with_scratch(&hev, &ctx, i, 1.0, &cfg(), &mut scratch);
                    match (&scalar, &batched) {
                        (Some(s), Some(b)) => assert_bit_identical(b, s),
                        (None, None) => {}
                        _ => panic!(
                            "verdict mismatch at v={v} a={a} i={i}: {scalar:?} vs {batched:?}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn batched_mask_matches_scalar_verdicts() {
        let hev = hev();
        let opt = InnerOptimizer::default();
        let currents = crate::action::default_currents();
        let mut scratch = ResolveScratch::new();
        let mut mask = vec![false; currents.len()];
        for (v, a) in [
            (0.0, 0.0),
            (0.04, 0.0),
            (3.0, 0.4),
            (15.0, 0.3),
            (15.0, -1.5),
        ] {
            let d = hev.demand(v, a, 0.0);
            let ctx = hev.step_context(&d);
            opt.fill_mask_batched(&hev, &ctx, &currents, 1.0, &mut scratch, &mut mask);
            for (idx, &i) in currents.iter().enumerate() {
                assert_eq!(
                    mask[idx],
                    opt.feasible_with(&hev, &ctx, i, 1.0),
                    "mask diverged at v={v} a={a} i={i}"
                );
            }
        }
    }

    #[test]
    fn scalar_reference_flag_replays_scalar_eval_counts() {
        let hev = hev();
        let reference = InnerOptimizer {
            scalar_reference: true,
            ..InnerOptimizer::default()
        };
        let mut scratch = ResolveScratch::new();
        let d = hev.demand(15.0, 0.3, 0.0);
        let ctx = hev.step_context(&d);
        let snap = hev_trace::evals::count();
        let a = reference.resolve_with_scratch(&hev, &ctx, 10.0, 1.0, &cfg(), &mut scratch);
        let ref_evals = hev_trace::evals::since(snap);
        let snap = hev_trace::evals::count();
        let b = reference.resolve_with(&hev, &ctx, 10.0, 1.0, &cfg());
        assert_eq!(
            ref_evals,
            hev_trace::evals::since(snap),
            "scalar_reference must replay the scalar path exactly"
        );
        assert_bit_identical(&a.unwrap(), &b.unwrap());
    }

    #[test]
    fn batched_resolve_spends_fewer_evals_when_stopped() {
        // The stopped-step gear dedup is the headline idle-time saving:
        // only the first viable gear pays for its aux optimization.
        let hev = hev();
        let opt = InnerOptimizer::default();
        let mut scratch = ResolveScratch::new();
        let d = hev.demand(0.0, 0.0, 0.0);
        let ctx = hev.step_context(&d);
        let snap = hev_trace::evals::count();
        let scalar = opt.resolve_with(&hev, &ctx, 0.0, 1.0, &cfg());
        let scalar_evals = hev_trace::evals::since(snap);
        let snap = hev_trace::evals::count();
        let batched = opt.resolve_with_scratch(&hev, &ctx, 0.0, 1.0, &cfg(), &mut scratch);
        let batched_evals = hev_trace::evals::since(snap);
        assert_bit_identical(&batched.unwrap(), &scalar.unwrap());
        assert!(
            batched_evals * 4 < scalar_evals,
            "stopped-step dedup should cut evals by ~num_gears: {batched_evals} vs {scalar_evals}"
        );
    }

    #[test]
    fn regen_braking_resolves() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, -25.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.em_torque_nm < 0.0);
        assert_eq!(r.outcome.fuel_g, 0.0);
    }

    #[test]
    fn fused_wave_mask_matches_sequential_kernel() {
        // Four lanes at heterogeneous operating points (stopped, launch,
        // cruise, regen) masked as one fused wave must reproduce the
        // sequential kernel's verdicts AND its total/per-lane
        // evaluation counts — only kernel calls fuse, never work.
        let hev = hev();
        let opt = InnerOptimizer::default();
        let currents: Vec<f64> = vec![-25.0, -8.0, 0.0, 8.0, 25.0, 60.0, 150.0];
        let samples = [(0.0, 0.0), (3.0, 0.9), (20.0, 0.3), (15.0, -1.5)];
        let demands: Vec<_> = samples
            .iter()
            .map(|&(v, a)| hev.demand(v, a, 0.0))
            .collect();
        let ctxs: Vec<_> = demands.iter().map(|d| hev.step_context(d)).collect();

        let mut seq_masks = vec![vec![false; currents.len()]; ctxs.len()];
        let mut seq_scratch = ResolveScratch::new();
        let seq_start = hev_trace::evals::count();
        for (k, ctx) in ctxs.iter().enumerate() {
            opt.fill_mask_batched(
                &hev,
                ctx,
                &currents,
                1.0,
                &mut seq_scratch,
                &mut seq_masks[k],
            );
        }
        let seq_evals = hev_trace::evals::since(seq_start);

        let mut wave_masks = vec![vec![false; currents.len()]; ctxs.len()];
        let mut wave_scratches: Vec<ResolveScratch> =
            (0..ctxs.len()).map(|_| ResolveScratch::new()).collect();
        let mut lanes: Vec<WaveMaskLane<'_>> = Vec::new();
        for ((ctx, scratch), mask) in ctxs
            .iter()
            .zip(wave_scratches.iter_mut())
            .zip(wave_masks.iter_mut())
        {
            lanes.push(WaveMaskLane {
                inner: opt,
                hev: &hev,
                ctx,
                currents: &currents,
                scratch,
                mask: mask.as_mut_slice(),
            });
        }
        let mut shared = CandidateBatch::default();
        let mut counts = vec![hev_trace::evals::Counts::default(); lanes.len()];
        let wave_start = hev_trace::evals::count();
        fill_mask_wave(&mut lanes, 1.0, &mut shared, &mut counts);
        let wave_evals = hev_trace::evals::since(wave_start);
        drop(lanes);

        assert_eq!(seq_masks, wave_masks, "fused verdicts must match");
        assert_eq!(seq_evals, wave_evals, "fusing must not change total evals");
        assert_eq!(
            counts.iter().map(|c| c.evals).sum::<u64>(),
            wave_evals,
            "per-lane attribution must partition the total"
        );
        assert!(
            counts.iter().all(|c| c.evals > 0),
            "every lane evaluated something"
        );
    }
}
