//! Per-step inner optimization for the reduced action space
//! (paper §4.3.2).
//!
//! Under the reduced action space the RL agent chooses only the battery
//! current; the gear `R(k)` and auxiliary power `p_aux` are then selected
//! "by solving an optimization problem such that the instantaneous reward
//! function can be maximized". Because `p_aux` is optimized continuously
//! here, it needs no discretization — one of the advantages the paper
//! claims for the reduced space.

use crate::reward::RewardConfig;
use hev_model::{ControlInput, CurrentContext, ParallelHev, StepContext, StepOutcome, WheelDemand};
use serde::{Deserialize, Serialize};

/// A fully resolved action: the control input, the predicted outcome, and
/// its instantaneous reward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedAction {
    /// The realized control input.
    pub control: ControlInput,
    /// The outcome [`ParallelHev::peek`] predicts for it.
    pub outcome: StepOutcome,
    /// Its instantaneous reward.
    pub reward: f64,
}

/// The inner optimizer: maximizes the instantaneous reward over
/// `(gear, p_aux)` for a given battery current.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InnerOptimizer {
    /// Coarse grid points over the auxiliary power range.
    pub aux_grid: usize,
    /// Ternary-search refinement iterations around the best grid point.
    pub refine_iters: usize,
    /// Locks the auxiliary power to a fixed value instead of optimizing
    /// it — this reproduces the powertrain-only RL baseline (ICCAD'14),
    /// which ignores auxiliary control.
    pub fixed_aux_w: Option<f64>,
}

impl Default for InnerOptimizer {
    fn default() -> Self {
        Self {
            aux_grid: 7,
            refine_iters: 12,
            fixed_aux_w: None,
        }
    }
}

impl InnerOptimizer {
    /// An optimizer with the auxiliary power pinned to `p_aux_w`.
    pub fn with_fixed_aux(p_aux_w: f64) -> Self {
        Self {
            fixed_aux_w: Some(p_aux_w),
            ..Self::default()
        }
    }

    /// Resolves the best `(gear, p_aux)` for the given battery current,
    /// or `None` when no combination is feasible (the action is masked).
    ///
    /// Builds a [`StepContext`] internally and amortizes it over the
    /// `gears × (aux_grid + 2·refine_iters)` evaluations. Callers that
    /// resolve several currents against one demand should build the
    /// context once and use [`InnerOptimizer::resolve_with`].
    pub fn resolve(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let ctx = hev.step_context(demand);
        self.resolve_with(hev, &ctx, battery_current_a, dt, reward)
    }

    /// [`InnerOptimizer::resolve`] against a prebuilt [`StepContext`].
    ///
    /// Builds the per-current battery precomputation once and shares it
    /// across every `(gear, p_aux)` evaluation of this call.
    #[inline]
    pub fn resolve_with(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        battery_current_a: f64,
        dt: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let cur = hev.current_context(battery_current_a, dt);
        if !ctx.is_stopped() && !cur.is_feasible() {
            // The commanded current violates the pack limits: every
            // moving-mode evaluation replays the same error, so the whole
            // sweep is masked without paying for a single one.
            return None;
        }
        // The sweep tracks only `(gear, p_aux, reward)`; losers' outcomes
        // are never materialized, and the winner is completed once at the
        // end. The completion is a pure function of `(ctx, cur, control)`,
        // so the re-evaluation returns the same bits the sweep saw, and
        // the strict-`>`/first-wins comparisons on the same reward floats
        // select the same winner a materializing sweep would.
        let mut best: Option<(usize, f64, f64)> = None;
        for gear in 0..hev.drivetrain().num_gears() {
            if !ctx.gear_is_viable(gear) {
                // A control-independent check already failed for this
                // gear during precomputation; no candidate here can be
                // feasible, so skipping cannot change the argmax.
                continue;
            }
            let candidate = match self.fixed_aux_w {
                Some(aux) => self
                    .evaluate_reward(hev, ctx, &cur, gear, aux, reward)
                    .map(|r| (aux, r)),
                None => self.best_aux_for_gear(hev, ctx, &cur, gear, reward),
            };
            if let Some((p, r)) = candidate {
                if best.is_none_or(|(_, _, br)| r > br) {
                    best = Some((gear, p, r));
                }
            }
        }
        let (gear, p_aux_w, _) = best?;
        self.evaluate(hev, ctx, &cur, gear, p_aux_w, reward)
    }

    /// Cheap feasibility probe: is the current realizable in *any* gear
    /// with the preferred auxiliary power? Used as the action mask before
    /// paying for the full optimization.
    pub fn feasible(
        &self,
        hev: &ParallelHev,
        demand: &WheelDemand,
        battery_current_a: f64,
        dt: f64,
    ) -> bool {
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        (0..hev.drivetrain().num_gears()).any(|gear| {
            hev.peek(
                demand,
                &ControlInput {
                    battery_current_a,
                    gear,
                    p_aux_w: aux,
                },
                dt,
            )
            .is_ok()
        })
    }

    /// [`InnerOptimizer::feasible`] against a prebuilt [`StepContext`] —
    /// the per-step action-mask path, where the context built for the
    /// final apply is already in hand.
    #[inline]
    pub fn feasible_with(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        battery_current_a: f64,
        dt: f64,
    ) -> bool {
        let aux = self
            .fixed_aux_w
            .unwrap_or_else(|| hev.aux().preferred_power());
        let cur = hev.current_context(battery_current_a, dt);
        if !ctx.is_stopped() && !cur.is_feasible() {
            return false;
        }
        (0..hev.drivetrain().num_gears()).any(|gear| {
            ctx.gear_is_viable(gear)
                && hev
                    .peek_with_contexts(
                        ctx,
                        &cur,
                        &ControlInput {
                            battery_current_a,
                            gear,
                            p_aux_w: aux,
                        },
                    )
                    .is_ok()
        })
    }

    /// Materializes one `(gear, p_aux)` candidate against the prebuilt
    /// contexts; `None` when infeasible.
    #[inline(always)]
    fn evaluate(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        p_aux_w: f64,
        reward: &RewardConfig,
    ) -> Option<ResolvedAction> {
        let control = ControlInput {
            battery_current_a: cur.battery_current_a(),
            gear,
            p_aux_w,
        };
        let outcome = hev.peek_with_contexts(ctx, cur, &control).ok()?;
        Some(ResolvedAction {
            control,
            outcome,
            reward: reward.reward(&outcome),
        })
    }

    /// Reward of one `(gear, p_aux)` candidate without keeping its
    /// outcome — the sweep-side evaluation (the reward reads only a few
    /// outcome fields, so the rest of the completion melts away here).
    #[inline(always)]
    fn evaluate_reward(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        p_aux_w: f64,
        reward: &RewardConfig,
    ) -> Option<f64> {
        let control = ControlInput {
            battery_current_a: cur.battery_current_a(),
            gear,
            p_aux_w,
        };
        let outcome = hev.peek_with_contexts(ctx, cur, &control).ok()?;
        Some(reward.reward(&outcome))
    }

    /// The best `(p_aux, reward)` of one gear: coarse grid, then ternary
    /// refinement around the best grid point.
    #[inline(always)]
    fn best_aux_for_gear(
        &self,
        hev: &ParallelHev,
        ctx: &StepContext,
        cur: &CurrentContext,
        gear: usize,
        reward: &RewardConfig,
    ) -> Option<(f64, f64)> {
        let (lo, hi) = hev.aux().power_range();
        let n = self.aux_grid.max(2);
        let mut best: Option<(usize, f64, f64)> = None;
        for k in 0..n {
            let p = lo + (hi - lo) * k as f64 / (n - 1) as f64;
            if let Some(r) = self.evaluate_reward(hev, ctx, cur, gear, p, reward) {
                if best.is_none_or(|(_, _, b)| r > b) {
                    best = Some((k, p, r));
                }
            }
        }
        let (k_best, mut p_best, mut r_best) = best?;
        // Ternary-search refinement in the bracket around the best grid
        // point (the reward is uni-modal in p_aux in practice: fuel rises
        // monotonically with p_aux while the utility is quasi-concave).
        let step = (hi - lo) / (n - 1) as f64;
        let mut a = (lo + step * (k_best as f64 - 1.0)).max(lo);
        let mut b = (lo + step * (k_best as f64 + 1.0)).min(hi);
        for _ in 0..self.refine_iters {
            let m1 = a + (b - a) / 3.0;
            let m2 = b - (b - a) / 3.0;
            let r1 = self.evaluate_reward(hev, ctx, cur, gear, m1, reward);
            let r2 = self.evaluate_reward(hev, ctx, cur, gear, m2, reward);
            match (r1, r2) {
                (Some(x1), Some(x2)) => {
                    if x1 >= x2 {
                        b = m2;
                        if x1 > r_best {
                            r_best = x1;
                            p_best = m1;
                        }
                    } else {
                        a = m1;
                        if x2 > r_best {
                            r_best = x2;
                            p_best = m2;
                        }
                    }
                }
                (Some(x1), None) => {
                    b = m2;
                    if x1 > r_best {
                        r_best = x1;
                        p_best = m1;
                    }
                }
                (None, Some(x2)) => {
                    a = m1;
                    if x2 > r_best {
                        r_best = x2;
                        p_best = m2;
                    }
                }
                (None, None) => break,
            }
        }
        Some((p_best, r_best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn cfg() -> RewardConfig {
        RewardConfig::default()
    }

    #[test]
    fn resolves_cruise_current() {
        let hev = hev();
        let d = hev.demand(20.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 2.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.fuel_g > 0.0);
        assert!(r.control.gear < 5);
        let (lo, hi) = hev.aux().power_range();
        assert!((lo..=hi).contains(&r.control.p_aux_w));
    }

    #[test]
    fn optimized_aux_lands_near_preferred_when_cheap() {
        // At a stop the only cost of aux power is battery draw; the
        // optimum should be near (slightly below) the preferred 600 W.
        let hev = hev();
        let d = hev.demand(0.0, 0.0, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, 0.0, 1.0, &cfg())
            .unwrap();
        assert!(
            (400.0..=650.0).contains(&r.control.p_aux_w),
            "p_aux {}",
            r.control.p_aux_w
        );
    }

    #[test]
    fn beats_every_fixed_grid_choice() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let opt = InnerOptimizer::default();
        let best = opt.resolve(&hev, &d, 10.0, 1.0, &cfg()).unwrap();
        // Exhaustive check over a fine (gear, aux) grid.
        for gear in 0..5 {
            for k in 0..30 {
                let p = 100.0 + 1_400.0 * k as f64 / 29.0;
                let c = ControlInput {
                    battery_current_a: 10.0,
                    gear,
                    p_aux_w: p,
                };
                if let Ok(o) = hev.peek(&d, &c, 1.0) {
                    assert!(
                        cfg().reward(&o) <= best.reward + 1e-6,
                        "grid (g{gear}, {p:.0} W) beats optimizer"
                    );
                }
            }
        }
    }

    #[test]
    fn fixed_aux_pins_power() {
        let hev = hev();
        let d = hev.demand(15.0, 0.3, 0.0);
        let r = InnerOptimizer::with_fixed_aux(600.0)
            .resolve(&hev, &d, 10.0, 1.0, &cfg())
            .unwrap();
        assert_eq!(r.control.p_aux_w, 600.0);
    }

    #[test]
    fn infeasible_current_is_masked() {
        // At the charge-sustaining floor, any control resolving to an
        // electric-only discharge is masked in every gear.
        let hev = ParallelHev::new(hev_model::HevParams::default_parallel_hev(), 0.400001).unwrap();
        let d = hev.demand(3.0, 0.3, 0.0); // gentle EV-capable launch
        let opt = InnerOptimizer::default();
        assert!(opt.resolve(&hev, &d, 100.0, 1.0, &cfg()).is_none());
        assert!(!opt.feasible(&hev, &d, 100.0, 1.0));
    }

    #[test]
    fn feasible_probe_matches_resolve_on_common_cases() {
        let hev = hev();
        let opt = InnerOptimizer::default();
        for (v, a) in [
            (0.0, 0.0),
            (5.0, 0.5),
            (20.0, 0.0),
            (15.0, -1.0),
            (30.0, 0.3),
        ] {
            let d = hev.demand(v, a, 0.0);
            for i in [-40.0, -8.0, 0.0, 8.0, 40.0, 100.0] {
                let probe = opt.feasible(&hev, &d, i, 1.0);
                let full = opt.resolve(&hev, &d, i, 1.0, &cfg()).is_some();
                // The probe may be conservative (false negatives possible
                // in principle) but must never claim feasibility the full
                // resolve cannot deliver.
                if probe {
                    assert!(full, "probe true but resolve failed at v={v} a={a} i={i}");
                }
            }
        }
    }

    #[test]
    fn regen_braking_resolves() {
        let hev = hev();
        let d = hev.demand(15.0, -1.5, 0.0);
        let r = InnerOptimizer::default()
            .resolve(&hev, &d, -25.0, 1.0, &cfg())
            .unwrap();
        assert!(r.outcome.em_torque_nm < 0.0);
        assert_eq!(r.outcome.fuel_g, 0.0);
    }
}
