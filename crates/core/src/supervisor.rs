//! Supervised fallback control: a safety wrapper around any
//! [`HevPolicy`].
//!
//! A deployable energy-management controller must never hand the plant a
//! control it cannot execute — yet a learned policy can emit one (an
//! unvisited state, a malformed action, a NaN escaping the function
//! approximator) and fault injection makes this routine: the policy
//! decides on *observed* (noisy, drifted) state while feasibility is
//! judged on the true plant. [`SupervisedPolicy`] validates every
//! decision against the step's feasibility check and non-finite-field
//! checks, and on violation degrades through a fixed fallback chain:
//!
//! 1. **wrapped policy** — the decision as made;
//! 2. **myopic argmax** — the best instantaneous inner-optimized reward
//!    over a battery-current ladder (the same move an untrained
//!    [`crate::JointController`] makes in a never-visited state);
//! 3. **rule-based** — the [`RuleBasedController`] baseline's decision;
//! 4. **limp-home** — [`fallback_control`]'s feasibility search
//!    (whose zero-current request the simulation harness resolves by
//!    demand clipping if even that fails — a trace miss, never an
//!    abort).
//!
//! Each tier's activations are counted per episode in a
//! [`DegradationReport`], which the simulation loop attaches to
//! [`crate::EpisodeMetrics::degradation`].

use crate::action::default_currents;
use crate::baseline::RuleBasedController;
use crate::inner_opt::{InnerOptimizer, ResolveScratch};
use crate::metrics::DegradationReport;
use crate::reward::RewardConfig;
use crate::sim::{fallback_control, ControlError, HevPolicy, Observation};
use hev_model::{ControlInput, ParallelHev, StepContext, StepOutcome};

/// Why the supervisor rejected a decision.
enum Rejection {
    /// A control field was non-finite.
    NonFinite,
    /// The control failed the step's feasibility check.
    Infeasible,
}

/// Validates a control against non-finite fields and the step's
/// feasibility check (a [`ParallelHev::peek_with_context`] probe — the
/// same predicate the plant's `step` enforces).
fn validate(
    hev: &ParallelHev,
    ctx: &StepContext,
    control: &ControlInput,
    dt: f64,
) -> Result<(), Rejection> {
    if !control.is_finite() {
        return Err(Rejection::NonFinite);
    }
    if hev.peek_with_context(ctx, control, dt).is_err() {
        return Err(Rejection::Infeasible);
    }
    Ok(())
}

/// Configuration of the supervisor's own fallback tiers.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Reward definition for the myopic tier (also supplies the step
    /// duration `dt_s` used by every feasibility check).
    pub reward: RewardConfig,
    /// Battery-current ladder the myopic tier optimizes over.
    pub currents: Vec<f64>,
    /// Inner optimizer resolving gear and auxiliary power per current.
    pub inner: InnerOptimizer,
    /// The rule-based tier's controller.
    pub rule: RuleBasedController,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            reward: RewardConfig::default(),
            currents: default_currents(),
            inner: InnerOptimizer::default(),
            rule: RuleBasedController::default(),
        }
    }
}

/// A validating wrapper around any [`HevPolicy`] (see the module docs
/// for the fallback-chain semantics).
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::supervisor::SupervisedPolicy;
/// use hev_control::{simulate, JointController, JointControllerConfig, RewardConfig};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let mut agent = JointController::new(JointControllerConfig::proposed());
/// agent.set_training(false);
/// let mut supervised = SupervisedPolicy::new(agent);
/// let cycle = StandardCycle::Udds.cycle();
/// let metrics = simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
/// let report = metrics.degradation.expect("supervised episodes carry a report");
/// println!("fallback activations: {}", report.fallback_activations());
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SupervisedPolicy<P> {
    policy: P,
    config: SupervisorConfig,
    report: DegradationReport,
    /// Reusable buffers of the myopic tier's batched inner optimization
    /// (not part of the supervisor's observable state).
    scratch: ResolveScratch,
}

impl<P: HevPolicy> SupervisedPolicy<P> {
    /// Wraps a policy with the default supervisor configuration.
    pub fn new(policy: P) -> Self {
        Self::with_config(policy, SupervisorConfig::default())
    }

    /// Wraps a policy with an explicit supervisor configuration.
    pub fn with_config(policy: P, config: SupervisorConfig) -> Self {
        Self {
            policy,
            config,
            report: DegradationReport::default(),
            scratch: ResolveScratch::new(),
        }
    }

    /// The wrapped policy.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// The wrapped policy, mutably.
    pub fn policy_mut(&mut self) -> &mut P {
        &mut self.policy
    }

    /// Unwraps the supervisor, returning the wrapped policy.
    pub fn into_policy(self) -> P {
        self.policy
    }

    /// The intervention report accumulated since the last episode start.
    pub fn report(&self) -> &DegradationReport {
        &self.report
    }

    /// Tier 2: the feasible control with the best instantaneous
    /// inner-optimized reward over the current ladder.
    fn myopic_control(
        &mut self,
        hev: &ParallelHev,
        ctx: &StepContext,
        dt: f64,
    ) -> Option<ControlInput> {
        let mut best: Option<(f64, ControlInput)> = None;
        let inner = self.config.inner;
        for &current in &self.config.currents {
            if let Some(resolved) = inner.resolve_with_scratch(
                hev,
                ctx,
                current,
                dt,
                &self.config.reward,
                &mut self.scratch,
            ) {
                if best.as_ref().is_none_or(|(r, _)| resolved.reward > *r) {
                    best = Some((resolved.reward, resolved.control));
                }
            }
        }
        best.map(|(_, control)| control)
    }
}

/// A supervised policy rides a lockstep wave with the default (no-op)
/// prefill: the wrapped policy's `decide` fills its own scratch lane by
/// lane. Unfused, but the fallback chain — and therefore the
/// [`DegradationReport`] — is bit-identical to the sequential path.
impl<P: HevPolicy> crate::wave::WaveStep for SupervisedPolicy<P> {}

impl<P: HevPolicy> HevPolicy for SupervisedPolicy<P> {
    fn begin_episode(&mut self) {
        self.report = DegradationReport::default();
        self.policy.begin_episode();
        self.config.rule.begin_episode();
    }

    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let dt = self.config.reward.dt_s;
        self.report.decisions += 1;
        let proposed = self.policy.decide(hev, obs);
        if self.policy.take_control_error().is_some() {
            self.report.control_errors += 1;
        }
        let _span = hev_trace::span::enter("control.supervise");
        match validate(hev, obs.ctx, &proposed, dt) {
            Ok(()) => return proposed,
            Err(Rejection::NonFinite) => self.report.non_finite += 1,
            Err(Rejection::Infeasible) => self.report.infeasible += 1,
        }
        if let Some(control) = self.myopic_control(hev, obs.ctx, dt) {
            if validate(hev, obs.ctx, &control, dt).is_ok() {
                self.report.myopic_rescues += 1;
                return control;
            }
        }
        let rule_control = self.config.rule.decide(hev, obs);
        if validate(hev, obs.ctx, &rule_control, dt).is_ok() {
            self.report.rule_rescues += 1;
            return rule_control;
        }
        self.report.limp_home += 1;
        fallback_control(hev, obs.demand, dt)
    }

    fn feedback(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        outcome: &StepOutcome,
        reward: f64,
    ) {
        self.policy.feedback(hev, obs, outcome, reward);
    }

    fn end_episode(&mut self) {
        self.policy.end_episode();
        self.config.rule.end_episode();
    }

    fn take_control_error(&mut self) -> Option<ControlError> {
        self.policy.take_control_error()
    }

    fn degradation(&self) -> Option<DegradationReport> {
        Some(self.report)
    }

    fn set_record_decisions(&mut self, on: bool) {
        self.policy.set_record_decisions(on);
    }

    fn last_decision(&self) -> Option<crate::telemetry::DecisionInfo> {
        self.policy.last_decision()
    }

    fn telemetry_snapshot(&self) -> Option<crate::telemetry::PolicyTelemetry> {
        self.policy.telemetry_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::simulate;
    use drive_cycle::{DriveCycle, ProfileBuilder};
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn short_cycle() -> DriveCycle {
        ProfileBuilder::new("short")
            .idle(3.0)
            .trip(40.0, 10.0, 15.0, 8.0, 4.0)
            .build()
            .unwrap()
    }

    /// Always asks for something infeasible.
    struct Broken;

    impl HevPolicy for Broken {
        fn decide(&mut self, _hev: &ParallelHev, _obs: &Observation<'_>) -> ControlInput {
            ControlInput {
                battery_current_a: 1e6,
                gear: 99,
                p_aux_w: -5.0,
            }
        }
    }

    /// Emits NaN currents.
    struct Nan;

    impl HevPolicy for Nan {
        fn decide(&mut self, _hev: &ParallelHev, _obs: &Observation<'_>) -> ControlInput {
            ControlInput {
                battery_current_a: f64::NAN,
                gear: 0,
                p_aux_w: 600.0,
            }
        }
    }

    #[test]
    fn supervised_broken_policy_completes_without_plant_fallbacks() {
        let mut hev = hev();
        let cycle = short_cycle();
        let mut supervised = SupervisedPolicy::new(Broken);
        let m = simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
        assert_eq!(m.steps, cycle.len());
        // The supervisor replaced every decision *before* the plant saw
        // it, so the harness's own fallback path never triggered.
        assert_eq!(m.fallback_steps, 0);
        assert_eq!(m.trace_miss_steps, 0);
        let report = m.degradation.expect("supervised episode has a report");
        assert_eq!(report.decisions, cycle.len());
        assert_eq!(report.infeasible, cycle.len());
        assert_eq!(report.fallback_activations(), cycle.len());
        assert_eq!(report.non_finite, 0);
    }

    #[test]
    fn supervised_nan_policy_counts_non_finite() {
        let mut hev = hev();
        let cycle = short_cycle();
        let mut supervised = SupervisedPolicy::new(Nan);
        let m = simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
        let report = m.degradation.unwrap();
        assert_eq!(report.non_finite, cycle.len());
        assert_eq!(report.infeasible, 0);
        assert_eq!(m.fallback_steps, 0);
    }

    #[test]
    fn supervised_sound_policy_is_transparent() {
        // The rule-based baseline only emits controls it has verified
        // feasible, so the supervisor must pass every one through
        // untouched and the metrics must match the unsupervised run.
        let mut hev = hev();
        let cycle = short_cycle();
        let mut plain = RuleBasedController::default();
        let unsupervised = simulate(&mut hev, &cycle, &mut plain, &RewardConfig::default());
        hev.reset_soc(0.6);
        let mut supervised = SupervisedPolicy::new(RuleBasedController::default());
        let m = simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
        let report = m.degradation.unwrap();
        assert_eq!(report.rejections(), 0);
        assert_eq!(report.fallback_activations(), 0);
        assert_eq!(m.fuel_g, unsupervised.fuel_g);
        assert_eq!(m.total_reward, unsupervised.total_reward);
        assert_eq!(m.soc_final, unsupervised.soc_final);
    }

    #[test]
    fn report_resets_each_episode() {
        let mut hev = hev();
        let cycle = short_cycle();
        let mut supervised = SupervisedPolicy::new(Broken);
        simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
        hev.reset_soc(0.6);
        let m = simulate(&mut hev, &cycle, &mut supervised, &RewardConfig::default());
        // Second episode's report covers only its own steps.
        assert_eq!(m.degradation.unwrap().decisions, cycle.len());
    }
}
