//! Multi-episode lockstep waves.
//!
//! A *wave* steps `W` independent episodes of equal-length, equal-`dt`
//! drive cycles in lockstep: at every timestep, each lane's precomputed
//! demand/context comes from its [`CyclePlan`] (built once, shared
//! through an `Arc`), and the lanes' candidate evaluations are fused
//! into one shared [`CandidateBatch`] through
//! [`WaveStep::prefill_wave`], so the batched kernel's width scales
//! with the wave width instead of one lane's candidate count.
//!
//! # Determinism
//!
//! Lockstep preserves bit-identity with the per-episode path because
//! every lane's work is a pure function of that lane's own state:
//!
//! * the fused mask kernel evaluates exactly the candidates the
//!   sequential kernel would, against the same per-lane contexts and
//!   caches, in the same per-lane order — lanes share only the batch
//!   *storage*, never results;
//! * each lane's decide/step/feedback tail runs through the same
//!   [`decided_step`] the sequential loop uses, in lane order within
//!   each step, and lanes touch disjoint vehicles, policies, RNGs, and
//!   fault plans;
//! * per-lane telemetry counters are attributed by snapshotting the
//!   thread-local [`evals`](hev_trace::evals) counters around each
//!   lane's work, so per-episode counts reproduce the sequential
//!   numbers exactly.
//!
//! Waves whose plans are not lockstep-compatible (unequal length or
//! `dt`), and single-lane waves, fall back to the sequential planned
//! path — the `W = 1` reference semantics.

use crate::fault::FaultPlan;
use crate::metrics::EpisodeMetrics;
use crate::plan::CyclePlan;
use crate::reward::RewardConfig;
use crate::sim::{
    decided_step, simulate_planned_instrumented, HevPolicy, Observation, StepEnv, StepIo,
};
use crate::telemetry::EpisodeTelemetry;
use hev_model::{CandidateBatch, ParallelHev, StepContext, WheelDemand};
use hev_predict::{Ewma, Predictor};
use hev_trace::evals::{self, Counts};

use crate::controller::JointController;

/// A policy that can participate in a lockstep episode wave.
///
/// The one hook beyond [`HevPolicy`] is [`WaveStep::prefill_wave`]: the
/// wave driver offers every lane's observation at once, and the policy
/// may precompute its per-step scratch (e.g. the feasibility mask) with
/// evaluations fused across lanes into the shared batch. The default
/// does nothing — each lane's `decide` then fills its own scratch,
/// which is always correct, just unfused.
pub trait WaveStep: HevPolicy {
    /// Precomputes per-step scratch for every lane at once, fusing
    /// cross-lane work into `shared`.
    ///
    /// `policies`, `hevs`, `obses`, and `counts` are parallel arrays,
    /// one entry per lane. Implementations must add each lane's share
    /// of any recorded evaluations to `counts[lane]` (the driver zeroes
    /// the array first), and must leave every lane in a state where the
    /// following `decide` call returns exactly what it would have
    /// without prefill.
    fn prefill_wave(
        policies: &mut [&mut Self],
        hevs: &[&ParallelHev],
        obses: &[Observation<'_>],
        shared: &mut CandidateBatch,
        counts: &mut [Counts],
    ) where
        Self: Sized,
    {
        let _ = (policies, hevs, obses, shared, counts);
    }
}

/// One lane of a lockstep wave: a policy, its vehicle, its cycle plan,
/// and its per-lane reward/fault/telemetry channels. Lanes never share
/// mutable state.
pub struct WaveLane<'a, T: WaveStep> {
    /// The lane's policy.
    pub policy: &'a mut T,
    /// The lane's vehicle (battery state carries across steps).
    pub hev: &'a mut ParallelHev,
    /// The lane's precomputed cycle plan.
    pub plan: &'a CyclePlan,
    /// The lane's reward model.
    pub reward: RewardConfig,
    /// Optional per-lane fault-injection plan.
    pub faults: Option<&'a mut FaultPlan>,
    /// Optional per-lane telemetry collector.
    pub telemetry: Option<&'a mut EpisodeTelemetry>,
}

/// Per-lane staging for one lockstep timestep: what phase A (demand,
/// context, sensor) produces and the decide phase consumes.
#[derive(Default)]
struct LaneStage {
    observed_demand: WheelDemand,
    observed_soc: f64,
    /// Locally rebuilt context for derated steps; unused otherwise.
    local_ctx: StepContext,
    use_local: bool,
}

/// Steps every lane's episode in lockstep, returning one
/// [`EpisodeMetrics`] per lane (in lane order).
///
/// Bit-identical to running each lane through
/// [`simulate_planned_instrumented`] on its own — see the module docs
/// for why — and falls back to exactly that when the wave has one lane
/// or the plans are not lockstep-compatible (unequal length or `dt`).
pub fn simulate_wave<T: WaveStep>(lanes: &mut [WaveLane<'_, T>]) -> Vec<EpisodeMetrics> {
    let Some(first) = lanes.first() else {
        return Vec::new();
    };
    let len = first.plan.len();
    let dt = first.plan.cycle().dt();
    let lockstep = lanes
        .iter()
        .all(|l| l.plan.len() == len && l.plan.cycle().dt().to_bits() == dt.to_bits());
    if lanes.len() == 1 || !lockstep {
        return lanes
            .iter_mut()
            .map(|l| {
                simulate_planned_instrumented(
                    l.hev,
                    l.plan,
                    l.policy,
                    &l.reward,
                    l.faults.as_deref_mut(),
                    l.telemetry.as_deref_mut(),
                )
            })
            .collect();
    }
    let n = lanes.len();
    let mut metrics: Vec<EpisodeMetrics> = lanes
        .iter()
        .map(|l| EpisodeMetrics::new(l.hev.soc()))
        .collect();
    // Kinematics per lane (jittered cycles differ lane to lane even at
    // equal length and dt).
    let lane_points: Vec<Vec<(f64, f64)>> = lanes
        .iter()
        .map(|l| {
            l.plan
                .cycle()
                .points()
                .map(|p| (p.time_s, p.speed_mps))
                .collect()
        })
        .collect();
    // Begin, in the sequential loop's order per lane.
    for lane in lanes.iter_mut() {
        if let Some(plan) = lane.faults.as_deref_mut() {
            plan.begin_episode(lane.plan.cycle().duration_s());
        }
        if let Some(t) = lane.telemetry.as_deref_mut() {
            lane.policy.set_record_decisions(true);
            t.begin_episode();
            // Windowed counter deltas would aggregate all lanes on this
            // thread; switch this episode to attributed counts instead.
            t.attribute_counts();
        }
        lane.policy.begin_episode();
    }
    let mut shared = CandidateBatch::default();
    let mut stage: Vec<LaneStage> = (0..n).map(|_| LaneStage::default()).collect();
    let mut step_counts = vec![Counts::default(); n];
    #[allow(clippy::needless_range_loop)] // step indexes every lane's points and tables in lockstep
    for step in 0..len {
        // Phase A per lane: derate, demand/context, sensor.
        for (i, lane) in lanes.iter_mut().enumerate() {
            let before = evals::counts();
            let time_s = lane_points[i][step].0;
            let mut derate = 1.0;
            if let Some(plan) = lane.faults.as_deref() {
                derate = plan.motor_derate_at(time_s);
                lane.hev.set_motor_derate(derate);
            }
            let table = lane.plan.table();
            let slot = &mut stage[i];
            // hevlint::allow(float::eq, exact sentinel: motor_derate_at returns literal 1.0 outside the fault window; the value is configuration, not an arithmetic result)
            slot.use_local = derate != 1.0;
            if slot.use_local {
                lane.hev
                    .rebuild_context(&mut slot.local_ctx, table.demand(step));
            }
            let (soc, demand) = match lane.faults.as_deref_mut() {
                Some(plan) => plan.sensor(time_s, lane.hev.soc(), table.demand(step)),
                None => (lane.hev.soc(), *table.demand(step)),
            };
            slot.observed_soc = soc;
            slot.observed_demand = demand;
            step_counts[i] = evals::counts().since(&before);
        }
        // Phase B: one fused prefill across all lanes.
        {
            let mut policies: Vec<&mut T> = Vec::with_capacity(n);
            let mut hevs: Vec<&ParallelHev> = Vec::with_capacity(n);
            let mut obses: Vec<Observation<'_>> = Vec::with_capacity(n);
            for (i, lane) in lanes.iter_mut().enumerate() {
                let plan: &CyclePlan = lane.plan;
                let slot = &stage[i];
                let ctx = if slot.use_local {
                    &slot.local_ctx
                } else {
                    plan.table().context(step)
                };
                obses.push(Observation {
                    step,
                    time_s: lane_points[i][step].0,
                    demand: &slot.observed_demand,
                    soc: slot.observed_soc,
                    ctx,
                });
                policies.push(&mut *lane.policy);
                hevs.push(&*lane.hev);
            }
            let mut prefill = vec![Counts::default(); n];
            T::prefill_wave(&mut policies, &hevs, &obses, &mut shared, &mut prefill);
            drop(policies);
            drop(hevs);
            // Phase C per lane: the sequential decide/step/feedback tail.
            for (i, lane) in lanes.iter_mut().enumerate() {
                step_counts[i].add(&prefill[i]);
                let before = evals::counts();
                let env = StepEnv {
                    true_demand: lane.plan.table().demand(step),
                    point_speed_mps: lane_points[i][step].1,
                    dt,
                };
                let mut io = StepIo {
                    faults: lane.faults.as_deref(),
                    reward: &lane.reward,
                    metrics: &mut metrics[i],
                    telemetry: lane.telemetry.as_deref_mut(),
                };
                decided_step(lane.hev, lane.policy, &obses[i], &env, &mut io);
                step_counts[i].add(&evals::counts().since(&before));
                if let Some(t) = lane.telemetry.as_deref_mut() {
                    t.note_counts(&step_counts[i]);
                }
            }
        }
    }
    // End, in the sequential loop's order per lane.
    for (i, lane) in lanes.iter_mut().enumerate() {
        if lane.faults.is_some() {
            lane.hev.set_motor_derate(1.0);
        }
        lane.policy.end_episode();
        metrics[i].degradation = lane.policy.degradation();
        if let Some(t) = lane.telemetry.as_deref_mut() {
            t.end_episode(&metrics[i], &lane.reward, lane.policy.telemetry_snapshot());
            lane.policy.set_record_decisions(false);
        }
    }
    metrics
}

/// One training lane for [`train_portfolio_wave`]: an agent, its
/// vehicle, its per-lane cycle plans (one per portfolio cycle, in
/// portfolio order), and an optional telemetry collector.
pub struct WaveTrainLane<'a, P: Predictor = Ewma> {
    /// The lane's learning agent.
    pub agent: &'a mut JointController<P>,
    /// The lane's vehicle.
    pub hev: &'a mut ParallelHev,
    /// The lane's training portfolio, one precomputed plan per cycle.
    pub plans: &'a [CyclePlan],
    /// Optional per-lane telemetry collector.
    pub telemetry: Option<&'a mut EpisodeTelemetry>,
}

/// Trains every lane's agent for `rounds` passes over its portfolio,
/// stepping all lanes' episodes in lockstep waves. Returns each lane's
/// per-episode metrics in training order, exactly as
/// `JointController::train_portfolio` would have produced them.
///
/// Every lane must carry the same number of plans (portfolio position
/// `c` of every lane trains in the same wave); mismatched lanes train
/// only over the shortest portfolio.
pub fn train_portfolio_wave<P: Predictor>(
    lanes: &mut [WaveTrainLane<'_, P>],
    rounds: usize,
) -> Vec<Vec<EpisodeMetrics>> {
    let cycles_per = lanes.iter().map(|l| l.plans.len()).min().unwrap_or(0);
    let mut out: Vec<Vec<EpisodeMetrics>> = lanes
        .iter()
        .map(|_| Vec::with_capacity(rounds * cycles_per))
        .collect();
    for _ in 0..rounds {
        for c in 0..cycles_per {
            let mut wave: Vec<WaveLane<'_, JointController<P>>> = lanes
                .iter_mut()
                .map(|l| {
                    l.agent.set_training(true);
                    l.hev.reset_soc(l.agent.config().initial_soc);
                    let reward = l.agent.config().reward;
                    if let Some(t) = l.telemetry.as_deref_mut() {
                        t.set_kind("train");
                    }
                    WaveLane {
                        policy: &mut *l.agent,
                        hev: &mut *l.hev,
                        plan: &l.plans[c],
                        reward,
                        faults: None,
                        telemetry: l.telemetry.as_deref_mut(),
                    }
                })
                .collect();
            let episode = simulate_wave(&mut wave);
            drop(wave);
            for (i, m) in episode.into_iter().enumerate() {
                out[i].push(m);
            }
        }
    }
    out
}
