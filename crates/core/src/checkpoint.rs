//! Crash-tolerant training: Q-table checkpointing and bit-identical
//! resume.
//!
//! Training a tabular controller for hundreds of episodes is the longest
//! single computation in the reproduction; a crash (or a deliberately
//! injected panic — see [`crate::harness::Harness::run_caught`]) should
//! not force a restart from scratch. A [`ControllerSnapshot`] taken at an
//! episode boundary is the controller's *complete* state — Q-table,
//! traces, visit counts, exploration rate, and exploration-RNG state; the
//! predictor resets every episode — so resuming from one replays the
//! remaining episodes **bit-for-bit**: the resumed run's final snapshot
//! equals the uninterrupted run's (enforced by
//! `resumed_training_is_bit_identical`).
//!
//! [`TrainCheckpoint`] pairs such a snapshot with the number of episodes
//! already completed and round-trips through JSON on disk (written
//! atomically: temp file + rename). [`train_portfolio_checkpointed`] is
//! the resumable counterpart of
//! [`JointController::train_portfolio`][crate::JointController::train_portfolio],
//! with the identical episode↔cycle ordering (episode `e` trains on
//! `cycles[e % cycles.len()]`).

use crate::controller::{ControllerSnapshot, JointController, JointControllerConfig};
use crate::metrics::EpisodeMetrics;
use drive_cycle::DriveCycle;
use hev_model::ParallelHev;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// A resumable training checkpoint: how many episodes are done, plus the
/// controller's complete episode-boundary state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Episodes completed before this checkpoint was taken.
    pub episodes_done: usize,
    /// The controller's state at that episode boundary.
    pub snapshot: ControllerSnapshot,
}

impl TrainCheckpoint {
    /// Captures a checkpoint of a controller at an episode boundary.
    pub fn capture(episodes_done: usize, agent: &JointController) -> Self {
        Self {
            episodes_done,
            snapshot: agent.snapshot(),
        }
    }

    /// Serializes the checkpoint to JSON and writes it atomically (temp
    /// file in the same directory, then rename), so a crash mid-write
    /// never leaves a truncated checkpoint behind.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, json)?;
        std::fs::rename(&tmp, path)
    }

    /// Loads a checkpoint from a JSON file written by
    /// [`TrainCheckpoint::save`].
    pub fn load(path: &Path) -> io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// Where and how often [`train_portfolio_checkpointed`] checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (one file, overwritten atomically).
    pub path: PathBuf,
    /// Checkpoint every this many episodes (and always at the end).
    pub every: usize,
    /// Resume from `path` if it exists (otherwise start fresh).
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec checkpointing to `path` every `every` episodes, resuming
    /// from an existing checkpoint file.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
            resume: true,
        }
    }
}

/// Portfolio training with optional checkpoint/resume.
///
/// Without a spec this is exactly
/// [`JointController::train_portfolio`][crate::JointController::train_portfolio]
/// driven episode-by-episode: episode `e` trains on
/// `cycles[e % cycles.len()]` until `episodes` episodes are done. With a
/// spec, the checkpoint file is saved every `spec.every` episodes (and at
/// the end), and — when `spec.resume` is set and the file exists —
/// training picks up from the recorded episode count instead of zero.
///
/// Returns the trained controller and the metrics of the episodes run *by
/// this invocation* (a resumed run returns only the remaining episodes).
pub fn train_portfolio_checkpointed(
    config: JointControllerConfig,
    hev: &mut ParallelHev,
    cycles: &[DriveCycle],
    episodes: usize,
    spec: Option<&CheckpointSpec>,
) -> io::Result<(JointController, Vec<EpisodeMetrics>)> {
    assert!(!cycles.is_empty(), "portfolio must contain a cycle");
    let (mut agent, start) = match spec {
        Some(s) if s.resume && s.path.exists() => {
            let ckpt = TrainCheckpoint::load(&s.path)?;
            (
                JointController::from_snapshot(ckpt.snapshot),
                ckpt.episodes_done,
            )
        }
        _ => (JointController::new(config), 0),
    };
    agent.set_training(true);
    let mut metrics = Vec::with_capacity(episodes.saturating_sub(start));
    for e in start..episodes {
        let cycle = &cycles[e % cycles.len()];
        metrics.push(agent.train_episode(hev, cycle));
        if let Some(s) = spec {
            let done = e + 1;
            if done % s.every == 0 || done == episodes {
                TrainCheckpoint::capture(done, &agent).save(&s.path)?;
            }
        }
    }
    Ok((agent, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn cycles() -> Vec<DriveCycle> {
        vec![
            ProfileBuilder::new("a")
                .idle(2.0)
                .trip(35.0, 8.0, 12.0, 7.0, 3.0)
                .build()
                .unwrap(),
            ProfileBuilder::new("b")
                .idle(2.0)
                .trip(50.0, 10.0, 15.0, 9.0, 4.0)
                .build()
                .unwrap(),
        ]
    }

    fn config() -> JointControllerConfig {
        let mut c = JointControllerConfig::proposed();
        c.state = crate::state::StateSpaceConfig {
            power_demand: hev_rl::UniformGrid::new(-30_000.0, 50_000.0, 6),
            speed: hev_rl::UniformGrid::new(0.0, 30.0, 5),
            charge: hev_rl::UniformGrid::new(0.4, 0.8, 5),
            prediction: Some(hev_rl::UniformGrid::new(-15_000.0, 30_000.0, 3)),
        };
        c
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hev_ckpt_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let mut plant = hev();
        let cs = cycles();
        let (agent, _) = train_portfolio_checkpointed(config(), &mut plant, &cs, 4, None).unwrap();
        let ckpt = TrainCheckpoint::capture(4, &agent);
        let path = tmp_path("roundtrip");
        ckpt.save(&path).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn resumed_training_is_bit_identical() {
        // Uninterrupted run: 10 episodes straight through.
        let mut plant = hev();
        let cs = cycles();
        let (reference, _) =
            train_portfolio_checkpointed(config(), &mut plant, &cs, 10, None).unwrap();

        // Crashed run: checkpoint every 3 episodes, "crash" after 6, then
        // resume from disk with a brand-new controller.
        let path = tmp_path("resume");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 3);
        let mut plant2 = hev();
        let _ = train_portfolio_checkpointed(config(), &mut plant2, &cs, 6, Some(&spec)).unwrap();
        let mut plant3 = hev();
        let (resumed, tail) =
            train_portfolio_checkpointed(config(), &mut plant3, &cs, 10, Some(&spec)).unwrap();
        std::fs::remove_file(&path).unwrap();

        // The resumed invocation ran only the remaining 4 episodes, and
        // its final state matches the uninterrupted run bit-for-bit.
        assert_eq!(tail.len(), 4);
        assert_eq!(resumed.snapshot(), reference.snapshot());
    }

    #[test]
    fn fresh_run_ignores_missing_checkpoint_file() {
        let path = tmp_path("missing");
        let _ = std::fs::remove_file(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let mut plant = hev();
        let cs = cycles();
        let (_, metrics) =
            train_portfolio_checkpointed(config(), &mut plant, &cs, 3, Some(&spec)).unwrap();
        assert_eq!(metrics.len(), 3);
        assert!(path.exists(), "final checkpoint always written");
        let ckpt = TrainCheckpoint::load(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(ckpt.episodes_done, 3);
    }
}
