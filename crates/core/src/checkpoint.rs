//! Crash-tolerant training: Q-table checkpointing and bit-identical
//! resume.
//!
//! Training a tabular controller for hundreds of episodes is the longest
//! single computation in the reproduction; a crash (or a deliberately
//! injected panic — see [`crate::harness::Harness::run_caught`]) should
//! not force a restart from scratch. A [`ControllerSnapshot`] taken at an
//! episode boundary is the controller's *complete* state — Q-table,
//! traces, visit counts, exploration rate, and exploration-RNG state; the
//! predictor resets every episode — so resuming from one replays the
//! remaining episodes **bit-for-bit**: the resumed run's final snapshot
//! equals the uninterrupted run's (enforced by
//! `resumed_training_is_bit_identical`).
//!
//! [`TrainCheckpoint`] pairs such a snapshot with the number of episodes
//! already completed. On disk the JSON payload rides inside an
//! integrity frame — `hevckpt v1 len=<bytes> fnv=<16-hex>\n<payload>` —
//! so a torn, truncated, or bit-flipped write is *detected* as a typed
//! [`CheckpointError`] (never a panic, never silently-wrong state).
//! Writes are atomic (temp file + rename) and the previous good
//! checkpoint is kept as `<path>.bak`, so
//! [`TrainCheckpoint::load_or_recover`] can fall back to it when the
//! primary is corrupt; [`train_portfolio_checkpointed`] resumes from
//! whichever loads. Pre-frame plain-JSON checkpoints still load.

use crate::controller::{ControllerSnapshot, JointController, JointControllerConfig};
use crate::metrics::EpisodeMetrics;
use drive_cycle::DriveCycle;
use hev_model::ParallelHev;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Magic prefix of a framed checkpoint file.
const FRAME_MAGIC: &str = "hevckpt v1";

/// FNV-1a 64-bit over the payload bytes (inline: the checkpoint frame
/// must not pull in a hashing dependency).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a checkpoint could not be loaded. Corruption is detected and
/// reported, never panicked on: a torn write yields
/// [`CheckpointError::TruncatedFrame`], a bit flip
/// [`CheckpointError::ChecksumMismatch`].
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read (missing, permissions, ...).
    Io(io::Error),
    /// The frame header promised more payload bytes than the file holds
    /// (a torn or truncated write).
    TruncatedFrame {
        /// Payload bytes the header promised.
        expected: usize,
        /// Payload bytes actually present.
        got: usize,
    },
    /// The payload bytes do not hash to the header's checksum (a bit
    /// flip or partial overwrite).
    ChecksumMismatch {
        /// The checksum the header recorded.
        expected: u64,
        /// The checksum of the bytes on disk.
        got: u64,
    },
    /// The frame header itself could not be parsed.
    MalformedHeader,
    /// The payload passed the frame checks but is not a valid
    /// checkpoint (or a legacy unframed file is not valid JSON).
    Malformed(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "checkpoint io error: {e}"),
            Self::TruncatedFrame { expected, got } => write!(
                f,
                "truncated checkpoint frame: header promises {expected} payload bytes, found {got}"
            ),
            Self::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: header records {expected:016x}, payload hashes to {got:016x}"
            ),
            Self::MalformedHeader => write!(f, "malformed checkpoint frame header"),
            Self::Malformed(e) => write!(f, "malformed checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<CheckpointError> for io::Error {
    fn from(e: CheckpointError) -> Self {
        match e {
            CheckpointError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// A resumable training checkpoint: how many episodes are done, plus the
/// controller's complete episode-boundary state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainCheckpoint {
    /// Episodes completed before this checkpoint was taken.
    pub episodes_done: usize,
    /// The controller's state at that episode boundary.
    pub snapshot: ControllerSnapshot,
}

impl TrainCheckpoint {
    /// Captures a checkpoint of a controller at an episode boundary.
    pub fn capture(episodes_done: usize, agent: &JointController) -> Self {
        Self {
            episodes_done,
            snapshot: agent.snapshot(),
        }
    }

    /// Serializes the checkpoint into the integrity frame and writes it
    /// atomically (temp file in the same directory, then rename), so a
    /// crash mid-write never leaves a truncated primary behind. An
    /// existing checkpoint is first renamed to `<path>.bak`, keeping the
    /// previous good state recoverable should the new file be damaged
    /// later (see [`TrainCheckpoint::load_or_recover`]).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        let framed = format!(
            "{FRAME_MAGIC} len={} fnv={:016x}\n{json}",
            json.len(),
            fnv1a64(json.as_bytes()),
        );
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, framed)?;
        if path.exists() {
            std::fs::rename(path, path.with_extension("bak"))?;
        }
        std::fs::rename(&tmp, path)
    }

    /// Loads and verifies a checkpoint written by
    /// [`TrainCheckpoint::save`]: the frame's length and FNV-1a checksum
    /// must both match before the payload is parsed. Pre-frame files
    /// (plain JSON, no magic) are still accepted. Corruption surfaces as
    /// a typed [`CheckpointError`].
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let bytes = std::fs::read(path)?;
        Self::parse_bytes(&bytes)
    }

    /// [`TrainCheckpoint::load`], falling back to the previous good
    /// checkpoint (`<path>.bak`) when the primary exists but is corrupt.
    /// Returns the checkpoint and whether the fallback was used. A
    /// missing primary is *not* recovered (a fresh run must start
    /// fresh); when both files are corrupt, the primary's error wins.
    pub fn load_or_recover(path: &Path) -> Result<(Self, bool), CheckpointError> {
        match Self::load(path) {
            Ok(ckpt) => Ok((ckpt, false)),
            Err(CheckpointError::Io(e)) => Err(CheckpointError::Io(e)),
            Err(primary) => match Self::load(&path.with_extension("bak")) {
                Ok(ckpt) => Ok((ckpt, true)),
                Err(_) => Err(primary),
            },
        }
    }

    /// Verifies the frame and parses the payload.
    fn parse_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        let Some(rest) = bytes.strip_prefix(FRAME_MAGIC.as_bytes()) else {
            // Legacy pre-frame checkpoint: the whole file is the JSON.
            let json = std::str::from_utf8(bytes)
                .map_err(|e| CheckpointError::Malformed(e.to_string()))?;
            return serde_json::from_str(json)
                .map_err(|e| CheckpointError::Malformed(e.to_string()));
        };
        let newline =
            rest.iter()
                .position(|&b| b == b'\n')
                .ok_or(CheckpointError::TruncatedFrame {
                    expected: 0,
                    got: rest.len(),
                })?;
        let header =
            std::str::from_utf8(&rest[..newline]).map_err(|_| CheckpointError::MalformedHeader)?;
        let payload = &rest[newline + 1..];
        let mut len = None;
        let mut fnv = None;
        for token in header.split_whitespace() {
            if let Some(v) = token.strip_prefix("len=") {
                len = v.parse::<usize>().ok();
            } else if let Some(v) = token.strip_prefix("fnv=") {
                fnv = u64::from_str_radix(v, 16).ok();
            }
        }
        let (Some(len), Some(fnv)) = (len, fnv) else {
            return Err(CheckpointError::MalformedHeader);
        };
        if payload.len() != len {
            return Err(CheckpointError::TruncatedFrame {
                expected: len,
                got: payload.len(),
            });
        }
        let got = fnv1a64(payload);
        if got != fnv {
            return Err(CheckpointError::ChecksumMismatch { expected: fnv, got });
        }
        let json =
            std::str::from_utf8(payload).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))
    }
}

/// Where and how often [`train_portfolio_checkpointed`] checkpoints.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSpec {
    /// Checkpoint file path (one file, overwritten atomically).
    pub path: PathBuf,
    /// Checkpoint every this many episodes (and always at the end).
    pub every: usize,
    /// Resume from `path` if it exists (otherwise start fresh).
    pub resume: bool,
}

impl CheckpointSpec {
    /// A spec checkpointing to `path` every `every` episodes, resuming
    /// from an existing checkpoint file.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        Self {
            path: path.into(),
            every: every.max(1),
            resume: true,
        }
    }
}

/// Portfolio training with optional checkpoint/resume.
///
/// Without a spec this is exactly
/// [`JointController::train_portfolio`][crate::JointController::train_portfolio]
/// driven episode-by-episode: episode `e` trains on
/// `cycles[e % cycles.len()]` until `episodes` episodes are done. With a
/// spec, the checkpoint file is saved every `spec.every` episodes (and at
/// the end), and — when `spec.resume` is set and the file exists —
/// training picks up from the recorded episode count instead of zero. A
/// corrupt checkpoint file falls back to the previous good one
/// (`<path>.bak`); only when both are unusable does the resume fail.
///
/// Returns the trained controller and the metrics of the episodes run *by
/// this invocation* (a resumed run returns only the remaining episodes).
pub fn train_portfolio_checkpointed(
    config: JointControllerConfig,
    hev: &mut ParallelHev,
    cycles: &[DriveCycle],
    episodes: usize,
    spec: Option<&CheckpointSpec>,
) -> io::Result<(JointController, Vec<EpisodeMetrics>)> {
    assert!(!cycles.is_empty(), "portfolio must contain a cycle");
    let (mut agent, start) = match spec {
        Some(s) if s.resume && s.path.exists() => {
            let (ckpt, _recovered) =
                TrainCheckpoint::load_or_recover(&s.path).map_err(io::Error::from)?;
            (
                JointController::from_snapshot(ckpt.snapshot),
                ckpt.episodes_done,
            )
        }
        _ => (JointController::new(config), 0),
    };
    agent.set_training(true);
    let mut metrics = Vec::with_capacity(episodes.saturating_sub(start));
    for e in start..episodes {
        let cycle = &cycles[e % cycles.len()];
        metrics.push(agent.train_episode(hev, cycle));
        if let Some(s) = spec {
            let done = e + 1;
            if done % s.every == 0 || done == episodes {
                TrainCheckpoint::capture(done, &agent).save(&s.path)?;
            }
        }
    }
    Ok((agent, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn cycles() -> Vec<DriveCycle> {
        vec![
            ProfileBuilder::new("a")
                .idle(2.0)
                .trip(35.0, 8.0, 12.0, 7.0, 3.0)
                .build()
                .unwrap(),
            ProfileBuilder::new("b")
                .idle(2.0)
                .trip(50.0, 10.0, 15.0, 9.0, 4.0)
                .build()
                .unwrap(),
        ]
    }

    fn config() -> JointControllerConfig {
        let mut c = JointControllerConfig::proposed();
        c.state = crate::state::StateSpaceConfig {
            power_demand: hev_rl::UniformGrid::new(-30_000.0, 50_000.0, 6),
            speed: hev_rl::UniformGrid::new(0.0, 30.0, 5),
            charge: hev_rl::UniformGrid::new(0.4, 0.8, 5),
            prediction: Some(hev_rl::UniformGrid::new(-15_000.0, 30_000.0, 3)),
        };
        c
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hev_ckpt_{name}_{}", std::process::id()));
        p
    }

    fn cleanup(path: &Path) {
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(path.with_extension("bak"));
        let _ = std::fs::remove_file(path.with_extension("tmp"));
    }

    #[test]
    fn checkpoint_roundtrips_through_disk() {
        let mut plant = hev();
        let cs = cycles();
        let (agent, _) = train_portfolio_checkpointed(config(), &mut plant, &cs, 4, None).unwrap();
        let ckpt = TrainCheckpoint::capture(4, &agent);
        let path = tmp_path("roundtrip");
        cleanup(&path);
        ckpt.save(&path).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn resumed_training_is_bit_identical() {
        // Uninterrupted run: 10 episodes straight through.
        let mut plant = hev();
        let cs = cycles();
        let (reference, _) =
            train_portfolio_checkpointed(config(), &mut plant, &cs, 10, None).unwrap();

        // Crashed run: checkpoint every 3 episodes, "crash" after 6, then
        // resume from disk with a brand-new controller.
        let path = tmp_path("resume");
        cleanup(&path);
        let spec = CheckpointSpec::new(&path, 3);
        let mut plant2 = hev();
        let _ = train_portfolio_checkpointed(config(), &mut plant2, &cs, 6, Some(&spec)).unwrap();
        let mut plant3 = hev();
        let (resumed, tail) =
            train_portfolio_checkpointed(config(), &mut plant3, &cs, 10, Some(&spec)).unwrap();
        cleanup(&path);

        // The resumed invocation ran only the remaining 4 episodes, and
        // its final state matches the uninterrupted run bit-for-bit.
        assert_eq!(tail.len(), 4);
        assert_eq!(resumed.snapshot(), reference.snapshot());
    }

    #[test]
    fn fresh_run_ignores_missing_checkpoint_file() {
        let path = tmp_path("missing");
        cleanup(&path);
        let spec = CheckpointSpec::new(&path, 2);
        let mut plant = hev();
        let cs = cycles();
        let (_, metrics) =
            train_portfolio_checkpointed(config(), &mut plant, &cs, 3, Some(&spec)).unwrap();
        assert_eq!(metrics.len(), 3);
        assert!(path.exists(), "final checkpoint always written");
        let ckpt = TrainCheckpoint::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(ckpt.episodes_done, 3);
    }

    #[test]
    fn truncation_is_detected_and_recovers_to_previous_good() {
        let mut plant = hev();
        let cs = cycles();
        let (agent, _) = train_portfolio_checkpointed(config(), &mut plant, &cs, 2, None).unwrap();
        let path = tmp_path("truncate");
        cleanup(&path);
        // Two saves: the first checkpoint becomes the .bak.
        let previous = TrainCheckpoint::capture(1, &agent);
        previous.save(&path).unwrap();
        TrainCheckpoint::capture(2, &agent).save(&path).unwrap();
        assert!(path.with_extension("bak").exists());

        // Tear the primary mid-payload.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        match TrainCheckpoint::load(&path) {
            Err(CheckpointError::TruncatedFrame { expected, got }) => {
                assert!(got < expected);
            }
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }

        // Recovery falls back to the previous good checkpoint.
        let (recovered, fell_back) = TrainCheckpoint::load_or_recover(&path).unwrap();
        cleanup(&path);
        assert!(fell_back);
        assert_eq!(recovered, previous);
    }

    #[test]
    fn bit_flip_fails_the_checksum() {
        let mut plant = hev();
        let cs = cycles();
        let (agent, _) = train_portfolio_checkpointed(config(), &mut plant, &cs, 2, None).unwrap();
        let path = tmp_path("bitflip");
        cleanup(&path);
        TrainCheckpoint::capture(2, &agent).save(&path).unwrap();

        // Flip one ASCII digit deep in the payload (keeps length and
        // UTF-8 validity, so only the checksum can catch it).
        let mut bytes = std::fs::read(&path).unwrap();
        let pos = bytes
            .iter()
            .rposition(|b| b.is_ascii_digit())
            .expect("payload has digits");
        bytes[pos] = if bytes[pos] == b'0' { b'1' } else { b'0' };
        std::fs::write(&path, &bytes).unwrap();

        match TrainCheckpoint::load(&path) {
            Err(CheckpointError::ChecksumMismatch { expected, got }) => {
                assert_ne!(expected, got);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        cleanup(&path);
    }

    #[test]
    fn legacy_unframed_checkpoints_still_load() {
        let mut plant = hev();
        let cs = cycles();
        let (agent, _) = train_portfolio_checkpointed(config(), &mut plant, &cs, 2, None).unwrap();
        let ckpt = TrainCheckpoint::capture(2, &agent);
        let path = tmp_path("legacy");
        cleanup(&path);
        std::fs::write(&path, serde_json::to_string(&ckpt).unwrap()).unwrap();
        let loaded = TrainCheckpoint::load(&path).unwrap();
        cleanup(&path);
        assert_eq!(loaded, ckpt);
    }

    #[test]
    fn resume_recovers_from_a_corrupted_checkpoint() {
        // Reference: 10 episodes straight through.
        let mut plant = hev();
        let cs = cycles();
        let (reference, _) =
            train_portfolio_checkpointed(config(), &mut plant, &cs, 10, None).unwrap();

        // Checkpoint every 3 episodes, stop after 6 (checkpoints at 3
        // and 6; the 3-episode one is the .bak), then corrupt the
        // primary. The resume must fall back to episode 3 and still
        // reach the bit-identical final state.
        let path = tmp_path("recover");
        cleanup(&path);
        let spec = CheckpointSpec::new(&path, 3);
        let mut plant2 = hev();
        let _ = train_portfolio_checkpointed(config(), &mut plant2, &cs, 6, Some(&spec)).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let mut plant3 = hev();
        let (resumed, tail) =
            train_portfolio_checkpointed(config(), &mut plant3, &cs, 10, Some(&spec)).unwrap();
        cleanup(&path);
        assert_eq!(tail.len(), 7, "resumed from the .bak at episode 3");
        assert_eq!(resumed.snapshot(), reference.snapshot());
    }

    #[test]
    fn unreadable_primary_and_backup_reports_the_primary_error() {
        let path = tmp_path("hopeless");
        cleanup(&path);
        std::fs::write(&path, "hevckpt v1 len=999 fnv=zzzz\n{}").unwrap();
        match TrainCheckpoint::load_or_recover(&path) {
            Err(CheckpointError::MalformedHeader) => {}
            other => panic!("expected MalformedHeader, got {other:?}"),
        }
        cleanup(&path);
    }
}
