//! RL-based joint control of HEV powertrain and auxiliary systems.
//!
//! This crate is the core of the reproduction of Wang, Lin, Pedram, and
//! Chang, *"Joint Automatic Control of the Powertrain and Auxiliary
//! Systems to Enhance the Electromobility in Hybrid Electric Vehicles"*,
//! DAC 2015. It assembles the substrates ([`hev_model`], [`hev_rl`],
//! [`hev_predict`], [`drive_cycle`]) into:
//!
//! * the discretized **state space** `s = [p_dem, v, q, pre]`
//!   ([`StateSpace`], Eq. 13–14) and **action spaces** — full and reduced
//!   ([`ActionSpace`], Eq. 15);
//! * the **reward** `r = (−ṁ_f + w·f_aux(p_aux))·ΔT` ([`RewardConfig`],
//!   §4.3.3);
//! * the per-step **inner optimization** choosing gear and auxiliary
//!   power under the reduced action space ([`InnerOptimizer`], §4.3.2);
//! * the **TD(λ) joint controller** ([`JointController`], Algorithm 1)
//!   with the exponential-weighting demand predictor (Eq. 12);
//! * the **baselines**: rule-based \[5\], powertrain-only RL \[13\], ECMS
//!   \[10\], and an offline DP bound \[7\] ([`baseline`]);
//! * the episodic **simulation harness** and **metrics**
//!   ([`simulate`], [`EpisodeMetrics`]);
//! * the deterministic **parallel training harness** ([`harness`]):
//!   seed-split multi-run execution that is bit-identical at every
//!   worker count, with multi-run aggregation ([`MetricsSummary`]);
//! * the deterministic **telemetry layer** ([`telemetry`]): per-episode
//!   metrics registries, sampled decision traces, and a degradation
//!   flight recorder collected in memory per run ([`EpisodeTelemetry`])
//!   so emitted files stay byte-identical across worker counts.
//!
//! # Examples
//!
//! ```no_run
//! use drive_cycle::StandardCycle;
//! use hev_control::{
//!     simulate, JointController, JointControllerConfig, RewardConfig,
//!     RuleBasedController,
//! };
//! use hev_model::{HevParams, ParallelHev};
//!
//! let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
//! let cycle = StandardCycle::Udds.cycle();
//!
//! // Proposed: joint RL control with prediction.
//! let mut agent = JointController::new(JointControllerConfig::proposed());
//! agent.train(&mut hev, &cycle, 150);
//! let proposed = agent.evaluate(&mut hev, &cycle);
//!
//! // Baseline: rule-based policy.
//! hev.reset_soc(0.6);
//! let mut rule = RuleBasedController::default();
//! let baseline = simulate(&mut hev, &cycle, &mut rule, &RewardConfig::default());
//!
//! println!("reward: proposed {:.1} vs rule-based {:.1}",
//!          proposed.total_reward, baseline.total_reward);
//! # Ok::<(), hev_model::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod action;
pub mod analysis;
pub mod baseline;
pub mod checkpoint;
pub mod controller;
pub mod fault;
pub mod harness;
pub mod inner_opt;
pub mod metrics;
pub mod plan;
pub mod policy_export;
pub mod reward;
pub mod sim;
pub mod state;
pub mod supervisor;
pub mod telemetry;
pub mod wave;

pub use action::{default_currents, ActionChoice, ActionSpace};
pub use analysis::{EnergyAudit, Recorder, TracePoint};
pub use baseline::{
    solve_dp, CdCsConfig, CdCsController, DpConfig, DpPolicy, DpSolution, EcmsConfig,
    EcmsController, RuleBasedConfig, RuleBasedController,
};
pub use checkpoint::{
    train_portfolio_checkpointed, CheckpointError, CheckpointSpec, TrainCheckpoint,
};
pub use controller::{ControllerSnapshot, JointController, JointControllerConfig};
pub use fault::{FaultConfig, FaultPlan};
pub use harness::{
    split_seed, Harness, RunEvent, RunLog, RunOutcome, RunSpec, SeedSequence, RETRY_SEED_TAG,
};
pub use inner_opt::{InnerOptimizer, ResolveScratch, ResolvedAction};
pub use metrics::{mode_index, DegradationReport, EpisodeMetrics, MetricsSummary, StatSummary};
pub use plan::CyclePlan;
pub use policy_export::PolicyTable;
pub use reward::RewardConfig;
pub use sim::{
    fallback_control, simulate, simulate_instrumented, simulate_planned,
    simulate_planned_instrumented, simulate_with_faults, ControlError, HevPolicy, Observation,
};
pub use state::{StateSample, StateSpace, StateSpaceConfig};
pub use supervisor::{SupervisedPolicy, SupervisorConfig};
pub use telemetry::{
    DecisionInfo, EpisodeTelemetry, PolicyTelemetry, RunTelemetry, TelemetryConfig,
};
pub use wave::{simulate_wave, train_portfolio_wave, WaveLane, WaveStep, WaveTrainLane};
