//! Episode metrics: fuel, MPG (with state-of-charge correction),
//! cumulative reward, utility, and operating-mode statistics.

use hev_model::{OperatingMode, StepOutcome, FUEL_G_PER_GALLON};
use serde::{Deserialize, Serialize};

/// Meters per mile.
const M_PER_MILE: f64 = 1_609.344;

/// Per-episode accounting of supervisor interventions: how often the
/// wrapped policy's decision was rejected and which tier of the fallback
/// chain (policy → myopic argmax → rule-based → limp-home) produced the
/// control that actually drove the plant.
///
/// Recorded by `hev_control::supervisor::SupervisedPolicy` and attached
/// to [`EpisodeMetrics::degradation`]; `None` there means the episode ran
/// unsupervised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Supervised `decide` calls this episode.
    pub decisions: usize,
    /// Decisions rejected because the control failed the step's
    /// feasibility check.
    pub infeasible: usize,
    /// Decisions rejected because a control field was non-finite.
    pub non_finite: usize,
    /// Typed control errors (`ControlError`) the wrapped policy reported
    /// while deciding.
    pub control_errors: usize,
    /// Rejections recovered by the myopic-argmax tier.
    pub myopic_rescues: usize,
    /// Rejections recovered by the rule-based tier.
    pub rule_rescues: usize,
    /// Rejections that fell all the way through to the limp-home search.
    pub limp_home: usize,
}

impl DegradationReport {
    /// Decisions the supervisor rejected (and thus had to replace).
    pub fn rejections(&self) -> usize {
        self.infeasible + self.non_finite
    }

    /// Fallback activations: controls supplied by any tier below the
    /// wrapped policy.
    pub fn fallback_activations(&self) -> usize {
        self.myopic_rescues + self.rule_rescues + self.limp_home
    }

    /// Element-wise sum (aggregation across episodes or runs).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            decisions: self.decisions + other.decisions,
            infeasible: self.infeasible + other.infeasible,
            non_finite: self.non_finite + other.non_finite,
            control_errors: self.control_errors + other.control_errors,
            myopic_rescues: self.myopic_rescues + other.myopic_rescues,
            rule_rescues: self.rule_rescues + other.rule_rescues,
            limp_home: self.limp_home + other.limp_home,
        }
    }
}

/// Accumulated results of one simulated driving cycle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeMetrics {
    /// Number of simulated steps.
    pub steps: usize,
    /// Total fuel burned, g.
    pub fuel_g: f64,
    /// Distance covered, m.
    pub distance_m: f64,
    /// Cumulative reward `Σ(−ṁ_f + w·f_aux)·ΔT` (the paper's Table 2
    /// quantity, without shaping terms).
    pub total_reward: f64,
    /// Sum of the auxiliary utility over all steps.
    pub utility_sum: f64,
    /// State of charge at episode start.
    pub soc_initial: f64,
    /// State of charge at episode end.
    pub soc_final: f64,
    /// Steps spent in each operating mode, indexed by
    /// [`mode_index`].
    pub mode_counts: [usize; 7],
    /// Steps where the controller's action was infeasible and a fallback
    /// was substituted.
    pub fallback_steps: usize,
    /// Steps where even the fallback search failed and the demand had to
    /// be clipped to the powertrain's capability (a "trace miss" in
    /// backward-looking-simulator terms).
    pub trace_miss_steps: usize,
    /// Supervisor intervention accounting, when the episode ran under a
    /// `SupervisedPolicy`; `None` for unsupervised episodes.
    pub degradation: Option<DegradationReport>,
}

/// Index of an operating mode in [`EpisodeMetrics::mode_counts`].
pub fn mode_index(mode: OperatingMode) -> usize {
    match mode {
        OperatingMode::Stopped => 0,
        OperatingMode::IceOnly => 1,
        OperatingMode::EvOnly => 2,
        OperatingMode::HybridAssist => 3,
        OperatingMode::RechargeDrive => 4,
        OperatingMode::RegenBraking => 5,
        OperatingMode::FrictionBraking => 6,
    }
}

impl EpisodeMetrics {
    /// Creates an empty accumulator starting at the given state of charge.
    pub fn new(soc_initial: f64) -> Self {
        Self {
            steps: 0,
            fuel_g: 0.0,
            distance_m: 0.0,
            total_reward: 0.0,
            utility_sum: 0.0,
            soc_initial,
            soc_final: soc_initial,
            mode_counts: [0; 7],
            fallback_steps: 0,
            trace_miss_steps: 0,
            degradation: None,
        }
    }

    /// Accumulates one step.
    pub fn record(
        &mut self,
        outcome: &StepOutcome,
        paper_reward: f64,
        distance_step_m: f64,
        was_fallback: bool,
    ) {
        self.steps += 1;
        self.fuel_g += outcome.fuel_g;
        self.distance_m += distance_step_m;
        self.total_reward += paper_reward;
        self.utility_sum += outcome.aux_utility;
        self.soc_final = outcome.soc_after;
        self.mode_counts[mode_index(outcome.mode)] += 1;
        if was_fallback {
            self.fallback_steps += 1;
        }
    }

    /// Raw miles per gallon (no charge correction). Infinite for a
    /// zero-fuel episode.
    pub fn mpg(&self) -> f64 {
        let miles = self.distance_m / M_PER_MILE;
        let gallons = self.fuel_g / FUEL_G_PER_GALLON;
        miles / gallons
    }

    /// Charge-sustaining-corrected MPG: converts the net change in stored
    /// battery energy into equivalent fuel using the mean fuel-to-battery
    /// path efficiency, so trips that ended with a depleted (or
    /// overcharged) pack are compared fairly.
    ///
    /// `battery_energy_wh` is the pack's nominal energy;
    /// `fuel_to_battery_eff` the assumed conversion efficiency (engine ×
    /// electric path), typically ≈ 0.25; `fuel_lhv_j_per_g` the fuel
    /// energy density.
    pub fn soc_corrected_mpg(
        &self,
        battery_energy_wh: f64,
        fuel_to_battery_eff: f64,
        fuel_lhv_j_per_g: f64,
    ) -> f64 {
        let delta_soc = self.soc_final - self.soc_initial;
        let delta_j = delta_soc * battery_energy_wh * 3600.0;
        // Net discharge (negative delta) adds equivalent fuel.
        let equivalent_fuel_g = -delta_j / (fuel_to_battery_eff * fuel_lhv_j_per_g);
        let fuel = (self.fuel_g + equivalent_fuel_g).max(1e-9);
        (self.distance_m / M_PER_MILE) / (fuel / FUEL_G_PER_GALLON)
    }

    /// Mean auxiliary utility per step.
    pub fn mean_utility(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.utility_sum / self.steps as f64
        }
    }

    /// Fraction of steps spent in the given mode.
    pub fn mode_fraction(&self, mode: OperatingMode) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.mode_counts[mode_index(mode)] as f64 / self.steps as f64
        }
    }

    /// Fuel consumption per 100 km, L (assuming 0.749 kg/L gasoline).
    pub fn l_per_100km(&self) -> f64 {
        let liters = self.fuel_g / 749.0;
        liters / (self.distance_m / 100_000.0)
    }
}

/// Streaming summary of one scalar across runs: count, mean, extrema,
/// and (Welford-form) variance. Supports associative [`merge`] so
/// per-worker partial summaries reduce to the same result in any
/// grouping order — the reduce step of the parallel harness.
///
/// [`merge`]: StatSummary::merge
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StatSummary {
    /// Number of accumulated values.
    pub count: usize,
    /// Running mean.
    pub mean: f64,
    /// Sum of squared deviations from the mean (Welford's M2).
    pub m2: f64,
    /// Smallest value (∞ when empty).
    pub min: f64,
    /// Largest value (−∞ when empty).
    pub max: f64,
}

impl Default for StatSummary {
    fn default() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StatSummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Summarizes a slice of values.
    pub fn of(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.push(v);
        }
        s
    }

    /// Accumulates one value.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Combines two summaries (Chan et al. parallel variance update).
    pub fn merge(&self, other: &Self) -> Self {
        if self.count == 0 {
            return *other;
        }
        if other.count == 0 {
            return *self;
        }
        let count = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / count as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / count as f64;
        Self {
            count,
            mean,
            m2,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Population standard deviation (0 for fewer than two values).
    pub fn std(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }
}

/// Aggregate of [`EpisodeMetrics`] across independent runs — the
/// merge/reduce step applied to a batch of parallel training runs.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Number of runs aggregated.
    pub runs: usize,
    /// Fuel burned per run, g.
    pub fuel_g: StatSummary,
    /// Distance covered per run, m.
    pub distance_m: StatSummary,
    /// Cumulative reward per run.
    pub total_reward: StatSummary,
    /// Auxiliary utility sum per run.
    pub utility_sum: StatSummary,
    /// Terminal state of charge per run.
    pub soc_final: StatSummary,
    /// Fallback-step count per run.
    pub fallback_steps: StatSummary,
}

impl MetricsSummary {
    /// Summarizes a batch of runs.
    pub fn from_runs(runs: &[EpisodeMetrics]) -> Self {
        runs.iter().fold(Self::default(), |acc, m| acc.push(m))
    }

    /// Accumulates one run.
    #[must_use]
    pub fn push(mut self, m: &EpisodeMetrics) -> Self {
        self.runs += 1;
        self.fuel_g.push(m.fuel_g);
        self.distance_m.push(m.distance_m);
        self.total_reward.push(m.total_reward);
        self.utility_sum.push(m.utility_sum);
        self.soc_final.push(m.soc_final);
        self.fallback_steps.push(m.fallback_steps as f64);
        self
    }

    /// Combines two partial aggregates (associative, order-insensitive
    /// up to floating-point rounding).
    pub fn merge(&self, other: &Self) -> Self {
        Self {
            runs: self.runs + other.runs,
            fuel_g: self.fuel_g.merge(&other.fuel_g),
            distance_m: self.distance_m.merge(&other.distance_m),
            total_reward: self.total_reward.merge(&other.total_reward),
            utility_sum: self.utility_sum.merge(&other.utility_sum),
            soc_final: self.soc_final.merge(&other.soc_final),
            fallback_steps: self.fallback_steps.merge(&other.fallback_steps),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(fuel_g: f64, mode: OperatingMode, soc: f64) -> StepOutcome {
        StepOutcome {
            mode,
            fuel_rate_g_per_s: fuel_g,
            fuel_g,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: 0.0,
            battery_power_w: 0.0,
            p_aux_w: 600.0,
            aux_utility: 1.0,
            friction_brake_torque_nm: 0.0,
            soc_before: soc,
            soc_after: soc,
        }
    }

    #[test]
    fn accumulates_fuel_and_distance() {
        let mut m = EpisodeMetrics::new(0.6);
        m.record(
            &outcome(0.5, OperatingMode::IceOnly, 0.6),
            -0.5,
            20.0,
            false,
        );
        m.record(&outcome(0.3, OperatingMode::EvOnly, 0.59), 0.4, 15.0, true);
        assert_eq!(m.steps, 2);
        assert!((m.fuel_g - 0.8).abs() < 1e-12);
        assert!((m.distance_m - 35.0).abs() < 1e-12);
        assert!((m.total_reward - (-0.1)).abs() < 1e-12);
        assert_eq!(m.fallback_steps, 1);
        assert_eq!(m.mode_counts[mode_index(OperatingMode::EvOnly)], 1);
        assert_eq!(m.soc_final, 0.59);
    }

    #[test]
    fn mpg_computation() {
        let mut m = EpisodeMetrics::new(0.6);
        // One mile on 2835/40 grams = exactly 40 mpg.
        m.record(
            &outcome(FUEL_G_PER_GALLON / 40.0, OperatingMode::IceOnly, 0.6),
            0.0,
            M_PER_MILE,
            false,
        );
        assert!((m.mpg() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn soc_correction_penalizes_depletion() {
        let mut depleted = EpisodeMetrics::new(0.7);
        depleted.record(
            &outcome(50.0, OperatingMode::EvOnly, 0.5),
            0.0,
            M_PER_MILE,
            false,
        );
        let mut sustained = EpisodeMetrics::new(0.7);
        sustained.record(
            &outcome(50.0, OperatingMode::IceOnly, 0.7),
            0.0,
            M_PER_MILE,
            false,
        );
        let corr_depleted = depleted.soc_corrected_mpg(7_000.0, 0.25, 42_600.0);
        let corr_sustained = sustained.soc_corrected_mpg(7_000.0, 0.25, 42_600.0);
        assert!(corr_depleted < corr_sustained);
        assert!(corr_depleted < depleted.mpg());
    }

    #[test]
    fn soc_correction_rewards_surplus() {
        let mut surplus = EpisodeMetrics::new(0.6);
        surplus.record(
            &outcome(50.0, OperatingMode::RechargeDrive, 0.7),
            0.0,
            M_PER_MILE,
            false,
        );
        assert!(surplus.soc_corrected_mpg(7_000.0, 0.25, 42_600.0) > surplus.mpg());
    }

    #[test]
    fn mode_fraction_sums_to_one() {
        let mut m = EpisodeMetrics::new(0.6);
        for mode in [
            OperatingMode::Stopped,
            OperatingMode::EvOnly,
            OperatingMode::EvOnly,
            OperatingMode::RegenBraking,
        ] {
            m.record(&outcome(0.0, mode, 0.6), 0.0, 1.0, false);
        }
        let total: f64 = [
            OperatingMode::Stopped,
            OperatingMode::IceOnly,
            OperatingMode::EvOnly,
            OperatingMode::HybridAssist,
            OperatingMode::RechargeDrive,
            OperatingMode::RegenBraking,
            OperatingMode::FrictionBraking,
        ]
        .iter()
        .map(|&mode| m.mode_fraction(mode))
        .sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((m.mode_fraction(OperatingMode::EvOnly) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn l_per_100km_sane() {
        let mut m = EpisodeMetrics::new(0.6);
        // 5 L over 100 km.
        m.record(
            &outcome(5.0 * 749.0, OperatingMode::IceOnly, 0.6),
            0.0,
            100_000.0,
            false,
        );
        assert!((m.l_per_100km() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn mean_utility_averages() {
        let mut m = EpisodeMetrics::new(0.6);
        m.record(&outcome(0.0, OperatingMode::Stopped, 0.6), 0.0, 0.0, false);
        assert!((m.mean_utility() - 1.0).abs() < 1e-12);
        assert_eq!(EpisodeMetrics::new(0.5).mean_utility(), 0.0);
    }

    #[test]
    fn stat_summary_matches_naive_formulas() {
        let values = [3.0, -1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let s = StatSummary::of(&values);
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert_eq!(s.count, values.len());
        assert!((s.mean - mean).abs() < 1e-12);
        assert!((s.std() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min, -1.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn stat_summary_merge_equals_sequential() {
        let values: Vec<f64> = (0..50).map(|k| (k as f64).sin() * 10.0).collect();
        let whole = StatSummary::of(&values);
        for split in [1, 10, 25, 49] {
            let merged =
                StatSummary::of(&values[..split]).merge(&StatSummary::of(&values[split..]));
            assert_eq!(merged.count, whole.count);
            assert!((merged.mean - whole.mean).abs() < 1e-9);
            assert!((merged.std() - whole.std()).abs() < 1e-9);
            assert_eq!(merged.min, whole.min);
            assert_eq!(merged.max, whole.max);
        }
        // Empty sides are identities.
        assert_eq!(whole.merge(&StatSummary::new()).count, whole.count);
        assert_eq!(StatSummary::new().merge(&whole).count, whole.count);
    }

    #[test]
    fn degradation_report_arithmetic() {
        let a = DegradationReport {
            decisions: 10,
            infeasible: 2,
            non_finite: 1,
            control_errors: 1,
            myopic_rescues: 2,
            rule_rescues: 1,
            limp_home: 0,
        };
        assert_eq!(a.rejections(), 3);
        assert_eq!(a.fallback_activations(), 3);
        let doubled = a.merged(&a);
        assert_eq!(doubled.decisions, 20);
        assert_eq!(doubled.rejections(), 6);
    }

    #[test]
    fn metrics_summary_aggregates_runs() {
        let mut a = EpisodeMetrics::new(0.6);
        a.record(
            &outcome(2.0, OperatingMode::IceOnly, 0.58),
            -2.0,
            30.0,
            false,
        );
        let mut b = EpisodeMetrics::new(0.6);
        b.record(
            &outcome(4.0, OperatingMode::IceOnly, 0.62),
            -4.0,
            30.0,
            true,
        );
        let summary = MetricsSummary::from_runs(&[a.clone(), b.clone()]);
        assert_eq!(summary.runs, 2);
        assert!((summary.fuel_g.mean - 3.0).abs() < 1e-12);
        assert_eq!(summary.fuel_g.min, 2.0);
        assert_eq!(summary.fuel_g.max, 4.0);
        assert!((summary.fallback_steps.mean - 0.5).abs() < 1e-12);
        // Parallel reduce path agrees with the sequential one.
        let merged = MetricsSummary::from_runs(&[a]).merge(&MetricsSummary::from_runs(&[b]));
        assert_eq!(merged.runs, summary.runs);
        assert!((merged.fuel_g.mean - summary.fuel_g.mean).abs() < 1e-12);
        assert!((merged.soc_final.std() - summary.soc_final.std()).abs() < 1e-12);
    }
}
