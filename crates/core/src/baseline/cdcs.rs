//! Charge-depleting / charge-sustaining (CD/CS) baseline.
//!
//! The classic plug-in-hybrid supervisory strategy (Banvait et al.'s
//! ACC'09 setting is a PHEV): drive electrically until the battery
//! reaches a sustaining threshold, then hold charge with a thermostat.
//! Included as a second heuristic baseline; on a charge-sustaining HEV
//! window it degenerates toward the rule-based policy, but with a
//! plug-in-sized window it exhibits the characteristic two-phase
//! behaviour.

use crate::sim::{fallback_control, HevPolicy, Observation};
use hev_model::{ControlInput, ParallelHev, STOP_SPEED_MPS};
use serde::{Deserialize, Serialize};

/// CD/CS tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CdCsConfig {
    /// Battery level at which the strategy switches from depleting to
    /// sustaining.
    pub sustain_threshold: f64,
    /// Half-width of the sustaining thermostat band.
    pub sustain_band: f64,
    /// Charge current while sustaining below the band, A (negative).
    pub sustain_charge_a: f64,
    /// Fixed auxiliary power, W.
    pub aux_power_w: f64,
    /// Maximum electric-only propulsion demand during depletion, W.
    pub cd_power_max_w: f64,
}

impl Default for CdCsConfig {
    fn default() -> Self {
        Self {
            sustain_threshold: 0.45,
            sustain_band: 0.02,
            sustain_charge_a: -15.0,
            aux_power_w: 600.0,
            cd_power_max_w: 20_000.0,
        }
    }
}

/// The CD/CS supervisory controller.
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::{simulate, CdCsController, RewardConfig};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.8)?;
/// let mut cdcs = CdCsController::default();
/// let m = simulate(&mut hev, &StandardCycle::Udds.cycle(), &mut cdcs,
///                  &RewardConfig::default());
/// println!("CD/CS: {:.0} g, final SoC {:.2}", m.fuel_g, m.soc_final);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CdCsController {
    config: CdCsConfig,
}

impl CdCsController {
    /// Creates the controller.
    pub fn new(config: CdCsConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CdCsConfig {
        &self.config
    }

    /// Whether the strategy is in its charge-depleting phase at `soc`.
    pub fn is_depleting(&self, soc: f64) -> bool {
        soc > self.config.sustain_threshold
    }

    fn try_gears(
        hev: &ParallelHev,
        obs: &Observation<'_>,
        current: f64,
        aux: f64,
    ) -> Option<ControlInput> {
        (0..hev.drivetrain().num_gears()).find_map(|gear| {
            let c = ControlInput {
                battery_current_a: current,
                gear,
                p_aux_w: aux,
            };
            hev.peek_with_context(obs.ctx, &c, 1.0).is_ok().then_some(c)
        })
    }
}

impl HevPolicy for CdCsController {
    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let cfg = &self.config;
        if obs.demand.speed_mps < STOP_SPEED_MPS {
            return ControlInput {
                battery_current_a: 0.0,
                gear: 0,
                p_aux_w: cfg.aux_power_w,
            };
        }
        // Braking: regenerate as hard as feasible.
        if obs.demand.wheel_torque_nm < 0.0 {
            for i in [-60.0, -30.0, -10.0, 0.0] {
                if let Some(c) = Self::try_gears(hev, obs, i, cfg.aux_power_w) {
                    return c;
                }
            }
            return fallback_control(hev, obs.demand, 1.0);
        }
        if self.is_depleting(obs.soc) && obs.demand.power_demand_w < cfg.cd_power_max_w {
            // Deplete: a descending discharge ladder — the largest bound
            // the machine can realize resolves to EV (a bound beyond the
            // machine's power rating is infeasible in every gear, so back
            // off until one fits).
            for i in [100.0, 80.0, 60.0, 40.0, 25.0] {
                if let Some(c) = Self::try_gears(hev, obs, i, cfg.aux_power_w) {
                    return c;
                }
            }
        }
        // Sustain: thermostat around the threshold.
        let current = if obs.soc < cfg.sustain_threshold - cfg.sustain_band {
            cfg.sustain_charge_a
        } else {
            0.0
        };
        Self::try_gears(hev, obs, current, cfg.aux_power_w)
            .unwrap_or_else(|| fallback_control(hev, obs.demand, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardConfig;
    use crate::sim::simulate;
    use drive_cycle::StandardCycle;
    use hev_model::HevParams;

    #[test]
    fn depletes_from_high_charge_then_sustains() {
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.80).unwrap();
        let mut cdcs = CdCsController::default();
        // Chain several urban cycles: enough driving to exhaust the
        // depletion budget.
        let cycle = StandardCycle::Udds.cycle();
        let long = cycle.concat(&cycle).concat(&cycle);
        let m = simulate(&mut hev, &long, &mut cdcs, &RewardConfig::default());
        // Ends near the sustaining threshold, not at the floor.
        assert!(
            (0.40..=0.50).contains(&m.soc_final),
            "final SoC {} not sustaining",
            m.soc_final
        );
        // Depletion phase means substantial electric driving.
        use hev_model::OperatingMode;
        assert!(m.mode_counts[crate::metrics::mode_index(OperatingMode::EvOnly)] > 100);
    }

    #[test]
    fn plugin_hybrid_drives_a_full_udds_electrically() {
        // On the plug-in parameter set (big pack, strong machine), the
        // CD/CS strategy covers a whole UDDS from the socket: almost no
        // fuel, substantial depletion.
        let mut hev = ParallelHev::new(HevParams::plugin_hybrid(), 0.90).unwrap();
        let mut cdcs = CdCsController::new(CdCsConfig {
            sustain_threshold: 0.25,
            ..CdCsConfig::default()
        });
        let cycle = StandardCycle::Udds.cycle();
        let m = simulate(&mut hev, &cycle, &mut cdcs, &RewardConfig::default());
        assert!(
            m.fuel_g < 50.0,
            "plug-in depletion phase burned {} g over UDDS",
            m.fuel_g
        );
        // ~12 km electric on a 23 kWh pack nets roughly 4–8 % depletion.
        assert!(
            m.soc_final < m.soc_initial - 0.02,
            "no depletion happened: {} -> {}",
            m.soc_initial,
            m.soc_final
        );
    }

    #[test]
    fn phase_predicate() {
        let c = CdCsController::default();
        assert!(c.is_depleting(0.7));
        assert!(!c.is_depleting(0.42));
    }

    #[test]
    fn uses_less_fuel_than_rule_based_while_depleting() {
        // Starting full, a single UDDS should be mostly electric.
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.80).unwrap();
        let mut cdcs = CdCsController::default();
        let cycle = StandardCycle::Udds.cycle();
        let m_cdcs = simulate(&mut hev, &cycle, &mut cdcs, &RewardConfig::default());

        let mut hev2 = ParallelHev::new(HevParams::default_parallel_hev(), 0.80).unwrap();
        let mut rule = crate::baseline::rule_based::RuleBasedController::default();
        let m_rule = simulate(&mut hev2, &cycle, &mut rule, &RewardConfig::default());
        assert!(
            m_cdcs.fuel_g < m_rule.fuel_g,
            "cd/cs {} g should undercut rule-based {} g on raw fuel",
            m_cdcs.fuel_g,
            m_rule.fuel_g
        );
    }
}
