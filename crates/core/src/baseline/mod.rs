//! Baseline controllers the paper's evaluation compares against, plus
//! reference strategies added for context.
//!
//! * [`RuleBasedController`] — the rule-based policy of ref \[5\]
//!   (Banvait et al., ACC'09), used in Table 2 / Figure 3.
//! * `powertrain_only` — the RL policy of ref \[13\] (Lin et al.,
//!   ICCAD'14): no prediction, no auxiliary co-optimization; constructed
//!   via [`JointControllerConfig::powertrain_only`].
//! * [`EcmsController`] — equivalent consumption minimization (ref
//!   \[10\]), a real-time optimization baseline.
//! * [`dp::solve`] — offline dynamic-programming bound (ref \[7\]).
//!
//! [`JointControllerConfig::powertrain_only`]:
//! crate::JointControllerConfig::powertrain_only

pub mod cdcs;
pub mod dp;
pub mod ecms;
pub mod rule_based;

pub use cdcs::{CdCsConfig, CdCsController};
pub use dp::{solve as solve_dp, DpConfig, DpPolicy, DpSolution};
pub use ecms::{EcmsConfig, EcmsController};
pub use rule_based::{RuleBasedConfig, RuleBasedController};
