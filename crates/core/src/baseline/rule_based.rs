//! Rule-based energy-management baseline in the style of Banvait et al.
//! (ACC'09, the paper's ref \[5\]).
//!
//! A thermostat/power-follower supervisory strategy: electric launch
//! below a speed/power threshold while charge lasts, engine propulsion
//! otherwise with load-leveling charge control, maximum regeneration on
//! braking, gears from a fixed speed-based shift schedule, and the
//! auxiliary systems always at their preferred power (rule-based
//! strategies do not co-optimize auxiliaries — that is exactly the gap
//! the DAC'15 paper targets).

use crate::sim::{fallback_control, HevPolicy, Observation};
use hev_model::{ControlInput, ParallelHev, STOP_SPEED_MPS};
use serde::{Deserialize, Serialize};

/// Tunables of the rule-based strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleBasedConfig {
    /// Below this speed (m/s) the vehicle may launch electrically.
    pub ev_speed_max_mps: f64,
    /// Below this propulsion demand (W) the vehicle may drive
    /// electrically.
    pub ev_power_max_w: f64,
    /// Battery level below which the engine recharges the pack.
    pub soc_low: f64,
    /// Battery level above which the machine assists aggressively.
    pub soc_high: f64,
    /// Load-leveling charge current commanded when the pack is low, A
    /// (negative).
    pub charge_current_a: f64,
    /// Assist current commanded when the pack is high, A (positive).
    pub assist_current_a: f64,
    /// Fixed auxiliary power, W.
    pub aux_power_w: f64,
    /// Regeneration current ladder tried during braking, strongest first,
    /// A (non-positive).
    pub regen_ladder_a: Vec<f64>,
    /// Upshift speed thresholds, m/s: gear = number of thresholds below
    /// the current speed.
    pub shift_speeds_mps: Vec<f64>,
}

impl Default for RuleBasedConfig {
    fn default() -> Self {
        Self {
            ev_speed_max_mps: 6.0,
            ev_power_max_w: 9_000.0,
            soc_low: 0.48,
            soc_high: 0.72,
            charge_current_a: -20.0,
            assist_current_a: 15.0,
            aux_power_w: 600.0,
            regen_ladder_a: vec![-60.0, -40.0, -25.0, -15.0, -8.0, -4.0, 0.0],
            shift_speeds_mps: vec![3.5, 7.5, 12.5, 18.0],
        }
    }
}

/// The rule-based supervisory controller.
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::{simulate, RewardConfig, RuleBasedController};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let mut controller = RuleBasedController::default();
/// let metrics = simulate(
///     &mut hev,
///     &StandardCycle::Udds.cycle(),
///     &mut controller,
///     &RewardConfig::default(),
/// );
/// println!("rule-based fuel: {:.0} g", metrics.fuel_g);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RuleBasedController {
    config: RuleBasedConfig,
}

impl RuleBasedController {
    /// Creates the controller.
    pub fn new(config: RuleBasedConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RuleBasedConfig {
        &self.config
    }

    fn schedule_gear(&self, speed_mps: f64) -> usize {
        self.config
            .shift_speeds_mps
            .iter()
            .filter(|&&s| speed_mps > s)
            .count()
    }

    /// Tries the intended control, then nearby gears, then currents
    /// backed toward zero; falls back to the harness ladder if nothing
    /// fits.
    fn first_feasible(
        &self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        current: f64,
        gear: usize,
    ) -> ControlInput {
        let aux = self.config.aux_power_w;
        let num_gears = hev.drivetrain().num_gears();
        let gear = gear.min(num_gears - 1);
        let gear_order = [
            Some(gear),
            gear.checked_add(1).filter(|&g| g < num_gears),
            gear.checked_sub(1),
        ];
        for factor in [1.0, 0.5, 0.0] {
            for g in gear_order.iter().flatten() {
                let c = ControlInput {
                    battery_current_a: current * factor,
                    gear: *g,
                    p_aux_w: aux,
                };
                if hev.peek_with_context(obs.ctx, &c, 1.0).is_ok() {
                    return c;
                }
            }
        }
        fallback_control(hev, obs.demand, 1.0)
    }
}

impl HevPolicy for RuleBasedController {
    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let cfg = &self.config;
        let d = obs.demand;

        // Stopped: engine off, battery carries the auxiliary load.
        if d.speed_mps < STOP_SPEED_MPS {
            return ControlInput {
                battery_current_a: 0.0,
                gear: 0,
                p_aux_w: cfg.aux_power_w,
            };
        }

        let gear = self.schedule_gear(d.speed_mps);

        // Braking: capture as much regeneration as the machine, battery,
        // and braking demand allow.
        if d.wheel_torque_nm < 0.0 {
            for &i in &cfg.regen_ladder_a {
                for g in [gear, gear.saturating_sub(1)] {
                    let c = ControlInput {
                        battery_current_a: i,
                        gear: g,
                        p_aux_w: cfg.aux_power_w,
                    };
                    if hev.peek_with_context(obs.ctx, &c, 1.0).is_ok() {
                        return c;
                    }
                }
            }
            return fallback_control(hev, d, 1.0);
        }

        // Electric launch / low-load EV while charge remains.
        if d.speed_mps < cfg.ev_speed_max_mps
            && d.power_demand_w < cfg.ev_power_max_w
            && obs.soc > cfg.soc_low
        {
            // A generous discharge bound lets the model resolve EV mode.
            let c = self.first_feasible(hev, obs, 100.0, gear);
            return c;
        }

        // Engine propulsion with load-leveling charge control.
        let current = if obs.soc < cfg.soc_low {
            cfg.charge_current_a
        } else if obs.soc > cfg.soc_high {
            cfg.assist_current_a
        } else {
            0.0
        };
        self.first_feasible(hev, obs, current, gear)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardConfig;
    use crate::sim::simulate;
    use drive_cycle::{DriveCycle, ProfileBuilder};
    use hev_model::{HevParams, OperatingMode};

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn urban() -> DriveCycle {
        ProfileBuilder::new("urban")
            .idle(5.0)
            .trip(20.0, 8.0, 10.0, 6.0, 5.0)
            .trip(50.0, 14.0, 25.0, 11.0, 5.0)
            .trip(35.0, 10.0, 15.0, 8.0, 5.0)
            .build()
            .unwrap()
    }

    #[test]
    fn completes_urban_cycle() {
        let mut hev = hev();
        let mut c = RuleBasedController::default();
        let m = simulate(&mut hev, &urban(), &mut c, &RewardConfig::default());
        assert_eq!(m.steps, urban().len());
        assert!(m.fuel_g > 0.0);
        assert!(m.fallback_steps < m.steps / 10);
    }

    #[test]
    fn launches_electrically() {
        let mut hev = hev();
        let mut c = RuleBasedController::default();
        let m = simulate(&mut hev, &urban(), &mut c, &RewardConfig::default());
        assert!(m.mode_counts[crate::metrics::mode_index(OperatingMode::EvOnly)] > 0);
    }

    #[test]
    fn regenerates_on_braking() {
        let mut hev = hev();
        let mut c = RuleBasedController::default();
        let m = simulate(&mut hev, &urban(), &mut c, &RewardConfig::default());
        assert!(m.mode_counts[crate::metrics::mode_index(OperatingMode::RegenBraking)] > 0);
    }

    #[test]
    fn stays_inside_charge_window() {
        let mut hev = hev();
        let mut c = RuleBasedController::default();
        let long = urban().concat(&urban()).concat(&urban());
        let m = simulate(&mut hev, &long, &mut c, &RewardConfig::default());
        assert!((0.40..=0.80).contains(&m.soc_final));
    }

    #[test]
    fn recharges_when_low() {
        let mut hev = hev();
        hev.reset_soc(0.42);
        let mut c = RuleBasedController::default();
        // A sustained cruise where the engine is on and can charge.
        let cruise = ProfileBuilder::new("cruise")
            .ramp_to(60.0, 15.0)
            .cruise(120.0)
            .ramp_to(0.0, 12.0)
            .build()
            .unwrap();
        let m = simulate(&mut hev, &cruise, &mut c, &RewardConfig::default());
        assert!(m.soc_final > 0.42, "soc {} did not recover", m.soc_final);
    }

    #[test]
    fn shift_schedule_is_monotone() {
        let c = RuleBasedController::default();
        let mut prev = 0;
        for v in [1.0, 5.0, 10.0, 15.0, 25.0] {
            let g = c.schedule_gear(v);
            assert!(g >= prev);
            prev = g;
        }
        assert_eq!(c.schedule_gear(1.0), 0);
        assert_eq!(c.schedule_gear(25.0), 4);
    }

    #[test]
    fn aux_power_is_constant_preferred() {
        let mut hev = hev();
        let mut c = RuleBasedController::default();
        let m = simulate(&mut hev, &urban(), &mut c, &RewardConfig::default());
        // Constant 600 W aux ⇒ utility 0 (the peak) whenever the
        // rule-based control was applied directly.
        assert!(m.mean_utility() > -0.1);
    }
}
