//! Equivalent Consumption Minimization Strategy (ECMS) baseline
//! (Delprat et al., the paper's ref \[10\]).
//!
//! ECMS converts battery energy into equivalent fuel via an equivalence
//! factor and minimizes the instantaneous equivalent fuel rate. It is a
//! real-time-capable optimization baseline that — like the rule-based
//! policy — leaves the auxiliary systems at a fixed power.

use crate::action::default_currents;
use crate::sim::{fallback_control, HevPolicy, Observation};
use hev_model::{ControlInput, ParallelHev};
use serde::{Deserialize, Serialize};

/// ECMS tunables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EcmsConfig {
    /// Base equivalence factor: grams of fuel per gram-equivalent of
    /// electrical energy (dimensionless multiplier on `P_batt / D_f`).
    /// Typical values 2.5–3.5 (≈ 1 / overall fuel→electric efficiency).
    pub equivalence_factor: f64,
    /// Proportional state-of-charge feedback on the equivalence factor:
    /// `s(q) = s0 − k·(q − q_target)`.
    pub soc_feedback_gain: f64,
    /// Target state of charge.
    pub soc_target: f64,
    /// Fixed auxiliary power, W.
    pub aux_power_w: f64,
    /// Candidate battery currents, A.
    pub currents: Vec<f64>,
    /// Fuel energy density, J/g (for the power→fuel conversion).
    pub fuel_lhv_j_per_g: f64,
}

impl Default for EcmsConfig {
    fn default() -> Self {
        Self {
            equivalence_factor: 3.0,
            soc_feedback_gain: 8.0,
            soc_target: 0.60,
            aux_power_w: 600.0,
            currents: default_currents(),
            fuel_lhv_j_per_g: hev_model::FUEL_LHV_J_PER_G,
        }
    }
}

/// The ECMS supervisory controller.
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::{simulate, EcmsController, RewardConfig};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let mut ecms = EcmsController::default();
/// let m = simulate(&mut hev, &StandardCycle::Hwfet.cycle(), &mut ecms,
///                  &RewardConfig::default());
/// println!("ECMS: {:.1} mpg", m.mpg());
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EcmsController {
    config: EcmsConfig,
}

impl EcmsController {
    /// Creates the controller.
    pub fn new(config: EcmsConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &EcmsConfig {
        &self.config
    }

    /// The state-of-charge-corrected equivalence factor.
    pub fn equivalence_factor_at(&self, soc: f64) -> f64 {
        (self.config.equivalence_factor
            - self.config.soc_feedback_gain * (soc - self.config.soc_target))
            .max(0.5)
    }
}

impl HevPolicy for EcmsController {
    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let s = self.equivalence_factor_at(obs.soc);
        let mut best: Option<(f64, ControlInput)> = None;
        for &i in &self.config.currents {
            for gear in 0..hev.drivetrain().num_gears() {
                let c = ControlInput {
                    battery_current_a: i,
                    gear,
                    p_aux_w: self.config.aux_power_w,
                };
                let Ok(o) = hev.peek_with_context(obs.ctx, &c, 1.0) else {
                    continue;
                };
                // Equivalent fuel rate: chemical fuel plus (discounted)
                // battery energy drawn from the bus.
                let cost =
                    o.fuel_rate_g_per_s + s * o.battery_power_w / self.config.fuel_lhv_j_per_g;
                if best.as_ref().is_none_or(|(bc, _)| cost < *bc) {
                    best = Some((cost, c));
                }
            }
        }
        match best {
            Some((_, c)) => c,
            None => fallback_control(hev, obs.demand, 1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reward::RewardConfig;
    use crate::sim::simulate;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    #[test]
    fn equivalence_factor_rises_when_depleted() {
        let e = EcmsController::default();
        assert!(e.equivalence_factor_at(0.45) > e.equivalence_factor_at(0.75));
    }

    #[test]
    fn completes_a_cycle_within_window() {
        let mut hev = hev();
        let cycle = ProfileBuilder::new("mix")
            .idle(4.0)
            .trip(45.0, 12.0, 30.0, 10.0, 5.0)
            .trip(70.0, 18.0, 40.0, 14.0, 5.0)
            .build()
            .unwrap();
        let mut ecms = EcmsController::default();
        let m = simulate(&mut hev, &cycle, &mut ecms, &RewardConfig::default());
        assert_eq!(m.steps, cycle.len());
        assert!((0.40..=0.80).contains(&m.soc_final));
        assert!(m.fuel_g > 0.0);
    }

    #[test]
    fn soc_feedback_sustains_charge() {
        let mut hev = hev();
        let cycle = ProfileBuilder::new("long-cruise")
            .ramp_to(60.0, 15.0)
            .cruise(300.0)
            .ramp_to(0.0, 15.0)
            .build()
            .unwrap();
        let mut ecms = EcmsController::default();
        let m = simulate(&mut hev, &cycle, &mut ecms, &RewardConfig::default());
        // The proportional feedback keeps the pack near the target.
        assert!(
            (m.soc_final - 0.60).abs() < 0.12,
            "soc drifted to {}",
            m.soc_final
        );
    }
}
