//! Offline dynamic-programming reference bound.
//!
//! With the whole driving cycle known in advance, backward value
//! iteration over a (time × state-of-charge) grid yields a near-optimal
//! power split. The paper cites DP-based strategies (ref \[7\]) as
//! requiring full a-priori knowledge — impractical online, but the ideal
//! yardstick for how much of the offline optimum the RL controller
//! recovers.

use crate::inner_opt::{InnerOptimizer, ResolveScratch};
use crate::metrics::EpisodeMetrics;
use crate::reward::RewardConfig;
use crate::sim::{fallback_control, simulate, HevPolicy, Observation};
use drive_cycle::DriveCycle;
use hev_model::{ControlInput, ParallelHev};
use serde::{Deserialize, Serialize};

/// DP solver configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpConfig {
    /// Number of state-of-charge grid points across the charge window.
    pub soc_points: usize,
    /// Candidate battery currents, A.
    pub currents: Vec<f64>,
    /// Fixed auxiliary power, W (the DP bound optimizes the powertrain).
    pub aux_power_w: f64,
    /// Terminal penalty per unit of state-of-charge deficit relative to
    /// the initial level (enforces charge sustenance).
    pub terminal_penalty: f64,
    /// Reward definition (shared with the controllers under comparison).
    pub reward: RewardConfig,
}

impl Default for DpConfig {
    fn default() -> Self {
        Self {
            soc_points: 41,
            currents: crate::action::default_currents(),
            aux_power_w: 600.0,
            // Fuel-equivalent of one unit of state of charge for the
            // default pack (≈ 7.8 kWh / (0.28 × 42.6 kJ/g)): makes the
            // bound charge-sustaining instead of depletion-gaming.
            terminal_penalty: 2_400.0,
            reward: RewardConfig::default(),
        }
    }
}

/// The tabulated DP policy: per step, per state-of-charge grid point, the
/// control to apply. Implements [`HevPolicy`] so the forward pass reuses
/// the common simulation harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DpPolicy {
    soc_min: f64,
    soc_max: f64,
    /// `actions[t][j]`: control at step `t`, grid point `j`.
    actions: Vec<Vec<ControlInput>>,
}

impl DpPolicy {
    fn soc_index(&self, soc: f64, n: usize) -> usize {
        let f = ((soc - self.soc_min) / (self.soc_max - self.soc_min)).clamp(0.0, 1.0);
        // hevlint::allow(float::lossy-cast, grid index: f is clamped to [0,1] above and the cast is bounded by .min(n-1))
        ((f * (n - 1) as f64).round() as usize).min(n - 1)
    }
}

impl HevPolicy for DpPolicy {
    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let Some(row) = self.actions.get(obs.step) else {
            return fallback_control(hev, obs.demand, 1.0);
        };
        row[self.soc_index(obs.soc, row.len())]
    }
}

/// Result of a DP solve.
#[derive(Debug, Clone, PartialEq)]
pub struct DpSolution {
    /// The expected cumulative reward from the initial state (value
    /// function at `t = 0`, initial state of charge).
    pub expected_reward: f64,
    /// The tabulated policy.
    pub policy: DpPolicy,
    /// Metrics of the forward pass under the tabulated policy.
    pub metrics: EpisodeMetrics,
}

/// Solves the cycle by backward value iteration and simulates the
/// resulting policy forward from `initial_soc`.
///
/// # Panics
///
/// Panics if `config.soc_points < 2` or the currents list is empty.
pub fn solve(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    initial_soc: f64,
    config: &DpConfig,
) -> DpSolution {
    solve_impl(hev, cycle, initial_soc, config, true)
}

/// `use_table = true` tabulates every timestep's context once up front
/// (one `ctx_rebuild` for the whole solve); `false` is the reference
/// rebuilt-per-step path kept for differential testing — the two are
/// bit-identical because the table stores exactly what the per-step
/// rebuild would produce.
fn solve_impl(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    initial_soc: f64,
    config: &DpConfig,
    use_table: bool,
) -> DpSolution {
    let _span = hev_trace::span::enter("dp.sweep");
    assert!(config.soc_points >= 2, "need at least two soc grid points");
    assert!(!config.currents.is_empty(), "need candidate currents");
    let n = config.soc_points;
    let (soc_min, soc_max) = (
        hev.battery().params().soc_min,
        hev.battery().params().soc_max,
    );
    let soc_at = |j: usize| soc_min + (soc_max - soc_min) * j as f64 / (n - 1) as f64;
    let dt = cycle.dt();
    let t_len = cycle.len();
    let inner = InnerOptimizer::with_fixed_aux(config.aux_power_w);

    // Terminal value: pay for ending below the initial charge.
    let mut value_next: Vec<f64> = (0..n)
        .map(|j| -config.terminal_penalty * (initial_soc - soc_at(j)).max(0.0))
        .collect();
    let mut actions: Vec<Vec<ControlInput>> = Vec::with_capacity(t_len);
    actions.resize(t_len, Vec::new());

    let interp = |value: &[f64], soc: f64| -> f64 {
        let f = ((soc - soc_min) / (soc_max - soc_min)).clamp(0.0, 1.0) * (n - 1) as f64;
        // hevlint::allow(float::lossy-cast, interpolation cell index: f is clamped non-negative above and bounded by .min(n-2))
        let j = (f.floor() as usize).min(n - 2);
        let w = f - j as f64;
        value[j] * (1.0 - w) + value[j + 1] * w
    };

    // Precompute every timestep's wheel demand in one batched sweep over
    // the cycle (bit-identical to per-step construction).
    let points: Vec<_> = cycle.points().collect();
    let speeds: Vec<f64> = points.iter().map(|p| p.speed_mps).collect();
    let accels: Vec<f64> = points.iter().map(|p| p.accel_mps2).collect();
    let mut demands = Vec::new();
    if points.iter().all(|p| p.grade == points[0].grade) {
        hev.body()
            .demands_into(&speeds, &accels, points[0].grade, &mut demands);
    } else {
        demands.extend(
            points
                .iter()
                .map(|p| hev.demand(p.speed_mps, p.accel_mps2, p.grade)),
        );
    }
    // The context is battery-state independent, so one per timestep
    // serves the entire SOC grid: tabulate all of them up front and let
    // the backward sweep index into the table.
    let table = use_table.then(|| hev_model::ContextTable::build(hev, &demands, dt));
    let mut rebuilt = hev_model::StepContext::default();
    // One resolve scratch serves the whole (time × SOC × current) sweep.
    let mut scratch = ResolveScratch::new();
    for t in (0..t_len).rev() {
        let demand = demands[t];
        let ctx = match &table {
            Some(tab) => tab.context(t),
            None => {
                hev.rebuild_context(&mut rebuilt, &demand);
                &rebuilt
            }
        };
        let mut value_t = vec![f64::NEG_INFINITY; n];
        let mut row = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)] // j indexes both value_t and the soc grid
        for j in 0..n {
            hev.reset_soc(soc_at(j));
            let mut best_v = f64::NEG_INFINITY;
            let mut best_c = None;
            for &i in &config.currents {
                let Some(r) =
                    inner.resolve_with_scratch(hev, ctx, i, dt, &config.reward, &mut scratch)
                else {
                    continue;
                };
                let v = config.reward.paper_reward(&r.outcome)
                    + interp(&value_next, r.outcome.soc_after);
                if v > best_v {
                    best_v = v;
                    best_c = Some(r.control);
                }
            }
            let control = best_c.unwrap_or_else(|| fallback_control(hev, &demand, dt));
            if best_v == f64::NEG_INFINITY {
                // Fallback value: simulate the fallback control.
                if let Ok(o) = hev.peek_with_context(ctx, &control, dt) {
                    best_v = config.reward.paper_reward(&o) + interp(&value_next, o.soc_after);
                } else {
                    best_v = -1e6;
                }
            }
            value_t[j] = best_v;
            row.push(control);
        }
        actions[t] = row;
        value_next = value_t;
    }

    let expected_reward = interp(&value_next, initial_soc);
    let mut policy = DpPolicy {
        soc_min,
        soc_max,
        actions,
    };
    hev.reset_soc(initial_soc);
    let metrics = simulate(hev, cycle, &mut policy, &config.reward);
    DpSolution {
        expected_reward,
        policy,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::rule_based::RuleBasedController;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn small_cycle() -> DriveCycle {
        ProfileBuilder::new("dp-small")
            .idle(3.0)
            .trip(40.0, 10.0, 20.0, 8.0, 4.0)
            .trip(25.0, 7.0, 10.0, 6.0, 4.0)
            .build()
            .unwrap()
    }

    fn quick_config() -> DpConfig {
        DpConfig {
            soc_points: 9,
            currents: vec![-25.0, -8.0, 0.0, 8.0, 25.0, 60.0, 100.0],
            ..DpConfig::default()
        }
    }

    #[test]
    fn dp_solves_and_completes_forward_pass() {
        let mut hev = hev();
        let cycle = small_cycle();
        let sol = solve(&mut hev, &cycle, 0.6, &quick_config());
        assert_eq!(sol.metrics.steps, cycle.len());
        assert!(sol.expected_reward.is_finite());
    }

    #[test]
    fn dp_beats_rule_based_on_reward() {
        let cycle = small_cycle();
        let cfg = quick_config();
        let mut hev1 = hev();
        let dp = solve(&mut hev1, &cycle, 0.6, &cfg);
        let mut hev2 = hev();
        hev2.reset_soc(0.6);
        let mut rb = RuleBasedController::default();
        let rb_m = simulate(&mut hev2, &cycle, &mut rb, &cfg.reward);
        // The offline optimum should not lose to the heuristic, modulo
        // the grid resolution; allow a small tolerance.
        assert!(
            dp.metrics.total_reward >= rb_m.total_reward - 0.2,
            "dp {} vs rule-based {}",
            dp.metrics.total_reward,
            rb_m.total_reward
        );
    }

    #[test]
    fn terminal_penalty_discourages_depletion() {
        let cycle = small_cycle();
        let mut lenient = quick_config();
        lenient.terminal_penalty = 0.0;
        let mut strict = quick_config();
        strict.terminal_penalty = 5_000.0;
        let soc_lenient = solve(&mut hev(), &cycle, 0.6, &lenient).metrics.soc_final;
        let soc_strict = solve(&mut hev(), &cycle, 0.6, &strict).metrics.soc_final;
        assert!(soc_strict >= soc_lenient - 1e-9);
    }

    #[test]
    fn tabulated_solve_is_bit_identical_to_rebuilt_per_step() {
        let cycle = small_cycle();
        let cfg = quick_config();
        let tabulated = solve_impl(&mut hev(), &cycle, 0.6, &cfg, true);
        let reference = solve_impl(&mut hev(), &cycle, 0.6, &cfg, false);
        assert_eq!(
            tabulated.expected_reward.to_bits(),
            reference.expected_reward.to_bits(),
            "cost-to-go must not move when contexts come from the table"
        );
        assert_eq!(tabulated.policy, reference.policy);
        assert_eq!(
            tabulated.metrics.total_reward.to_bits(),
            reference.metrics.total_reward.to_bits()
        );
        assert_eq!(
            tabulated.metrics.fuel_g.to_bits(),
            reference.metrics.fuel_g.to_bits()
        );
    }

    #[test]
    fn tabulated_solve_rebuilds_context_once() {
        let cycle = small_cycle();
        let cfg = quick_config();
        let before = hev_trace::evals::counts();
        solve_impl(&mut hev(), &cycle, 0.6, &cfg, true);
        let tabulated = hev_trace::evals::counts().since(&before);
        let before = hev_trace::evals::counts();
        solve_impl(&mut hev(), &cycle, 0.6, &cfg, false);
        let reference = hev_trace::evals::counts().since(&before);
        // The backward sweep collapses from one rebuild per timestep to a
        // single table build; the forward pass is unchanged in both.
        assert_eq!(
            tabulated.ctx_rebuilds + cycle.len() as u64 - 1,
            reference.ctx_rebuilds,
            "tabulated {tabulated:?} vs reference {reference:?}"
        );
        assert_eq!(tabulated.evals, reference.evals);
    }

    #[test]
    fn policy_lookup_clamps_soc() {
        let p = DpPolicy {
            soc_min: 0.4,
            soc_max: 0.8,
            actions: vec![vec![
                ControlInput {
                    battery_current_a: 0.0,
                    gear: 0,
                    p_aux_w: 600.0
                };
                5
            ]],
        };
        assert_eq!(p.soc_index(0.0, 5), 0);
        assert_eq!(p.soc_index(1.0, 5), 4);
        assert_eq!(p.soc_index(0.6, 5), 2);
    }
}
