//! Trace recording and energy accounting for simulated episodes.
//!
//! [`Recorder`] wraps any [`HevPolicy`] and captures every step's
//! [`StepOutcome`]; [`EnergyAudit`] aggregates a recorded trace into the
//! energy flows engineers actually inspect (engine output, electric
//! drive, regeneration, friction losses, auxiliary draw).

use crate::sim::{HevPolicy, Observation};
use hev_model::{ControlInput, ParallelHev, StepOutcome};
use serde::{Deserialize, Serialize};

/// One recorded step: the observation scalars plus the realized outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Time since episode start, s.
    pub time_s: f64,
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Propulsion power demand, W.
    pub power_demand_w: f64,
    /// The realized outcome.
    pub outcome: StepOutcome,
    /// The reward received.
    pub reward: f64,
}

/// Records the full step-by-step trace of an episode while delegating
/// decisions to an inner policy.
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::analysis::{EnergyAudit, Recorder};
/// use hev_control::{simulate, RewardConfig, RuleBasedController};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let mut rec = Recorder::new(RuleBasedController::default());
/// simulate(&mut hev, &StandardCycle::Udds.cycle(), &mut rec, &RewardConfig::default());
/// let audit = EnergyAudit::of(rec.trace());
/// println!("regenerated {:.0} Wh", audit.regen_wh);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Recorder<P> {
    inner: P,
    trace: Vec<TracePoint>,
    pending: Option<(f64, f64, f64)>,
}

impl<P: HevPolicy> Recorder<P> {
    /// Wraps a policy.
    pub fn new(inner: P) -> Self {
        Self {
            inner,
            trace: Vec::new(),
            pending: None,
        }
    }

    /// The recorded trace (cleared at each episode start).
    pub fn trace(&self) -> &[TracePoint] {
        &self.trace
    }

    /// The wrapped policy.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// Consumes the recorder, returning the wrapped policy and the trace.
    pub fn into_parts(self) -> (P, Vec<TracePoint>) {
        (self.inner, self.trace)
    }
}

impl<P: HevPolicy> HevPolicy for Recorder<P> {
    fn begin_episode(&mut self) {
        self.trace.clear();
        self.pending = None;
        self.inner.begin_episode();
    }

    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        self.pending = Some((obs.time_s, obs.demand.speed_mps, obs.demand.power_demand_w));
        self.inner.decide(hev, obs)
    }

    fn feedback(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        outcome: &StepOutcome,
        reward: f64,
    ) {
        if let Some((time_s, speed_mps, power_demand_w)) = self.pending.take() {
            self.trace.push(TracePoint {
                time_s,
                speed_mps,
                power_demand_w,
                outcome: *outcome,
                reward,
            });
        }
        self.inner.feedback(hev, obs, outcome, reward);
    }

    fn end_episode(&mut self) {
        self.inner.end_episode();
    }
}

/// Aggregated energy flows of one episode, in watt-hours.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyAudit {
    /// Mechanical energy the engine delivered.
    pub engine_wh: f64,
    /// Mechanical energy the machine delivered while motoring.
    pub electric_drive_wh: f64,
    /// Electrical energy recovered into the pack during regeneration
    /// (negative battery power while braking).
    pub regen_wh: f64,
    /// Energy dissipated in the friction brakes.
    pub friction_wh: f64,
    /// Energy consumed by the auxiliary systems.
    pub aux_wh: f64,
    /// Net battery energy drawn (positive = net discharge).
    pub battery_net_wh: f64,
    /// Number of engine starts.
    pub engine_starts: usize,
    /// Seconds per operating mode, indexed as
    /// [`crate::metrics::mode_index`].
    pub mode_seconds: [f64; 7],
}

impl EnergyAudit {
    /// Aggregates a recorded trace (assumes 1 s steps scaled by the trace
    /// spacing; with uniform sampling this is exact).
    pub fn of(trace: &[TracePoint]) -> Self {
        let dt = if trace.len() >= 2 {
            trace[1].time_s - trace[0].time_s
        } else {
            1.0
        };
        let to_wh = dt / 3600.0;
        let mut audit = EnergyAudit {
            engine_wh: 0.0,
            electric_drive_wh: 0.0,
            regen_wh: 0.0,
            friction_wh: 0.0,
            aux_wh: 0.0,
            battery_net_wh: 0.0,
            engine_starts: 0,
            mode_seconds: [0.0; 7],
        };
        for p in trace {
            let o = &p.outcome;
            audit.engine_wh += o.ice_torque_nm * o.ice_speed_rad_s * to_wh;
            if o.em_torque_nm > 0.0 {
                audit.electric_drive_wh += o.em_torque_nm * o.em_speed_rad_s * to_wh;
            }
            if o.battery_power_w < 0.0 {
                audit.regen_wh += -o.battery_power_w * to_wh;
            }
            // Friction torque acts at the wheels; the wheel's angular
            // speed comes from the recorded vehicle speed.
            audit.friction_wh += (-o.friction_brake_torque_nm) * wheel_speed_of(p) * to_wh;
            audit.aux_wh += o.p_aux_w * to_wh;
            audit.battery_net_wh += o.battery_power_w * to_wh;
            if o.engine_started {
                audit.engine_starts += 1;
            }
            audit.mode_seconds[crate::metrics::mode_index(o.mode)] += dt;
        }
        audit
    }

    /// Fraction of braking energy recovered electrically (0 when there
    /// was no braking).
    pub fn regen_fraction(&self) -> f64 {
        let total = self.regen_wh + self.friction_wh;
        if total <= 0.0 {
            0.0
        } else {
            self.regen_wh / total
        }
    }
}

fn wheel_speed_of(p: &TracePoint) -> f64 {
    // Wheel radius of the default chassis; traces carry speeds, not
    // radii. 0.282 m matches `BodyParams::default()`.
    p.speed_mps / 0.282
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::rule_based::RuleBasedController;
    use crate::reward::RewardConfig;
    use crate::sim::simulate;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn run_urban() -> (Vec<TracePoint>, usize) {
        let cycle = ProfileBuilder::new("audit")
            .idle(4.0)
            .trip(45.0, 12.0, 25.0, 10.0, 6.0)
            .trip(30.0, 9.0, 15.0, 8.0, 5.0)
            .build()
            .unwrap();
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let mut rec = Recorder::new(RuleBasedController::default());
        simulate(&mut hev, &cycle, &mut rec, &RewardConfig::default());
        let len = cycle.len();
        let (_, trace) = rec.into_parts();
        (trace, len)
    }

    #[test]
    fn recorder_captures_every_step() {
        let (trace, len) = run_urban();
        assert_eq!(trace.len(), len);
        assert_eq!(trace[0].time_s, 0.0);
        assert!(trace.windows(2).all(|w| w[1].time_s > w[0].time_s));
    }

    #[test]
    fn audit_energy_flows_are_plausible() {
        let (trace, _) = run_urban();
        let audit = EnergyAudit::of(&trace);
        assert!(audit.engine_wh > 0.0);
        assert!(audit.aux_wh > 0.0);
        assert!(audit.regen_wh >= 0.0);
        assert!(audit.friction_wh >= 0.0);
        assert!((0.0..=1.0).contains(&audit.regen_fraction()));
        assert!(audit.engine_starts >= 1);
    }

    #[test]
    fn mode_seconds_sum_to_duration() {
        let (trace, len) = run_urban();
        let audit = EnergyAudit::of(&trace);
        let total: f64 = audit.mode_seconds.iter().sum();
        assert!((total - len as f64).abs() < 1e-9);
    }

    #[test]
    fn recorder_clears_between_episodes() {
        let cycle = ProfileBuilder::new("short")
            .idle(2.0)
            .trip(20.0, 5.0, 5.0, 4.0, 2.0)
            .build()
            .unwrap();
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let mut rec = Recorder::new(RuleBasedController::default());
        simulate(&mut hev, &cycle, &mut rec, &RewardConfig::default());
        simulate(&mut hev, &cycle, &mut rec, &RewardConfig::default());
        assert_eq!(rec.trace().len(), cycle.len());
    }

    #[test]
    fn aux_energy_matches_constant_load() {
        let (trace, len) = run_urban();
        let audit = EnergyAudit::of(&trace);
        // Rule-based holds 600 W; fallback steps may differ slightly.
        let expected = 600.0 * len as f64 / 3600.0;
        assert!((audit.aux_wh - expected).abs() < expected * 0.1);
    }
}
