//! Seeded, deterministic fault injection for robustness studies.
//!
//! The paper's controller reads its state `s = [p_dem, v, q, pre]` from
//! *online measurement* (§4.3.1: the charge via Coulomb counting), so a
//! deployable reproduction must tolerate sensing error and component
//! degradation. This module injects both, repeatably:
//!
//! * **Sensor faults** perturb only what the controller *observes* —
//!   SOC measurement noise plus Coulomb-counting drift, and relative
//!   speed-measurement noise (which also scales the observed power
//!   demand, since `p_dem = F_TR·v` is derived from the same speed
//!   signal). The plant always integrates the truth.
//! * **Plant faults** change the vehicle itself: battery capacity fade
//!   (applied once per degraded vehicle), a motor torque-derating
//!   window, and an auxiliary-load step disturbance window (an
//!   uncommanded extra load, e.g. an AC compressor engaging).
//!
//! Determinism contract: a [`FaultPlan`] owns its entire random state,
//! seeded from a [`split_seed`]-derived value, and draws a *fixed* number
//! of variates per episode start (3) and per step (2) regardless of which
//! fault magnitudes are non-zero. Fault trajectories are therefore a pure
//! function of `(config, seed, episode index, step index)` — identical at
//! any `--jobs` value, exactly like the training harness itself. With no
//! plan installed ([`crate::sim::simulate`]), nothing is drawn and the
//! simulation is byte-identical to the pre-fault-layer code.

use crate::harness::{split_seed, SeedSequence};
use hev_model::{ParallelHev, WheelDemand};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fault magnitudes, all scalable from a single severity knob
/// ([`FaultConfig::at_severity`]). [`FaultConfig::off`] (= severity 0)
/// disables every channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// SOC measurement noise amplitude (uniform ±, in SOC fraction).
    pub soc_noise: f64,
    /// Coulomb-counting drift magnitude, SOC fraction per 1000 s; the
    /// sign is drawn once per episode.
    pub soc_drift_per_1000s: f64,
    /// Relative speed-measurement noise amplitude (uniform ±, fraction
    /// of true speed). Also scales the observed power demand.
    pub speed_noise: f64,
    /// Battery capacity fade fraction in `[0, 1)` (see
    /// [`ParallelHev::apply_battery_capacity_fade`]).
    pub capacity_fade: f64,
    /// Motor torque-envelope scale inside the derating window, `(0, 1]`.
    pub derate_factor: f64,
    /// Duration of the motor-derating window, s (`0` disables it; its
    /// start time is drawn per episode).
    pub derate_window_s: f64,
    /// Uncommanded extra auxiliary load inside the disturbance window, W.
    pub aux_step_w: f64,
    /// Duration of the auxiliary-load disturbance window, s (`0`
    /// disables it; its start time is drawn per episode).
    pub aux_window_s: f64,
}

impl FaultConfig {
    /// No faults on any channel.
    pub fn off() -> Self {
        Self {
            soc_noise: 0.0,
            soc_drift_per_1000s: 0.0,
            speed_noise: 0.0,
            capacity_fade: 0.0,
            derate_factor: 1.0,
            derate_window_s: 0.0,
            aux_step_w: 0.0,
            aux_window_s: 0.0,
        }
    }

    /// Scales a reference fault scenario by `severity` (0 = healthy,
    /// 1 = the full scenario; values beyond 1 extrapolate, with fade and
    /// derate clamped away from their degenerate endpoints).
    ///
    /// The reference scenario at severity 1: ±2 % SOC noise with
    /// 2 %/1000 s drift, ±3 % speed noise, 15 % capacity fade, a 180 s
    /// motor window derated to 65 % torque, and a 400 W aux step lasting
    /// 150 s.
    pub fn at_severity(severity: f64) -> Self {
        assert!(
            severity.is_finite() && severity >= 0.0,
            "severity must be finite and non-negative, got {severity}"
        );
        // hevlint::allow(float::eq, exact sentinel: severity 0.0 means faults disabled; the value is configuration, not an arithmetic result)
        if severity == 0.0 {
            return Self::off();
        }
        Self {
            soc_noise: 0.02 * severity,
            soc_drift_per_1000s: 0.02 * severity,
            speed_noise: 0.03 * severity,
            capacity_fade: (0.15 * severity).min(0.90),
            derate_factor: (1.0 - 0.35 * severity).max(0.20),
            derate_window_s: 180.0 * severity,
            aux_step_w: 400.0 * severity,
            aux_window_s: 150.0 * severity,
        }
    }

    /// Whether every channel is disabled.
    pub fn is_off(&self) -> bool {
        *self == Self::off()
    }
}

/// A materialized, self-seeded fault trajectory over episodes.
///
/// Derive the seed from the run's [`SeedSequence`]
/// ([`FaultPlan::from_sequence`]) so faulted batches keep the harness's
/// any-worker-count determinism. The simulation loop calls
/// [`FaultPlan::begin_episode`] once per episode and
/// [`FaultPlan::sensor`] once per step, in step order.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
    /// Episodes started so far (the next episode's index).
    episode: u64,
    rng: StdRng,
    /// Signed drift rate for the current episode, SOC fraction per s.
    drift_per_s: f64,
    /// Start of the motor-derating window, s.
    derate_start_s: f64,
    /// Start of the aux-disturbance window, s.
    aux_start_s: f64,
}

impl FaultPlan {
    /// A plan over `config` whose entire trajectory is determined by
    /// `seed`.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        Self {
            config,
            seed,
            episode: 0,
            rng: StdRng::seed_from_u64(seed),
            drift_per_s: 0.0,
            derate_start_s: f64::INFINITY,
            aux_start_s: f64::INFINITY,
        }
    }

    /// A plan seeded from child `k` of a run's seed sequence — the
    /// standard way to give each task of a parallel batch its own
    /// independent fault trajectory.
    pub fn from_sequence(config: FaultConfig, seq: &SeedSequence, k: u64) -> Self {
        Self::new(config, seq.child(k))
    }

    /// The fault magnitudes.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Applies the plant degradation (battery capacity fade) to a fresh
    /// vehicle. Call once per vehicle; fade compounds on repeat.
    pub fn degrade_plant(&self, hev: &mut ParallelHev) {
        if self.config.capacity_fade > 0.0 {
            hev.apply_battery_capacity_fade(self.config.capacity_fade);
        }
    }

    /// Starts the next episode: re-derives the episode RNG from
    /// `split_seed(seed, episode)` (so episode `k`'s trajectory does not
    /// depend on how many draws earlier episodes consumed) and samples
    /// the episode's drift sign and fault-window start times over
    /// `[0, duration_s)`.
    pub fn begin_episode(&mut self, duration_s: f64) {
        let span = duration_s.max(1.0);
        let mut rng = StdRng::seed_from_u64(split_seed(self.seed, self.episode));
        self.episode += 1;
        // Fixed draw count (3) regardless of configured magnitudes.
        let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        self.drift_per_s = sign * self.config.soc_drift_per_1000s / 1000.0;
        self.derate_start_s = rng.gen_range(0.0..span);
        self.aux_start_s = rng.gen_range(0.0..span);
        self.rng = rng;
    }

    /// The sensor-faulted observation for one step: the observed SOC
    /// (noise + accumulated drift, clamped to `[0, 1]`) and the observed
    /// wheel demand (speed and the speed-derived power demand scaled by
    /// the same noisy factor; torque/force left as the plant truth).
    ///
    /// Draws exactly two variates per call, so the stream position is a
    /// function of the step index alone.
    pub fn sensor(
        &mut self,
        time_s: f64,
        true_soc: f64,
        demand: &WheelDemand,
    ) -> (f64, WheelDemand) {
        let u_soc = self.rng.gen_range(-1.0..1.0);
        let u_speed = self.rng.gen_range(-1.0..1.0);
        let soc =
            (true_soc + self.config.soc_noise * u_soc + self.drift_per_s * time_s).clamp(0.0, 1.0);
        let factor = 1.0 + self.config.speed_noise * u_speed;
        let observed = WheelDemand {
            speed_mps: demand.speed_mps * factor,
            power_demand_w: demand.power_demand_w * factor,
            ..*demand
        };
        (soc, observed)
    }

    /// The motor torque-envelope scale active at `time_s` (1.0 outside
    /// the derating window or when the window is disabled).
    pub fn motor_derate_at(&self, time_s: f64) -> f64 {
        let w = self.config.derate_window_s;
        if w > 0.0 && time_s >= self.derate_start_s && time_s < self.derate_start_s + w {
            self.config.derate_factor
        } else {
            1.0
        }
    }

    /// The uncommanded extra auxiliary load at `time_s`, W (0 outside
    /// the disturbance window).
    pub fn aux_disturbance_at(&self, time_s: f64) -> f64 {
        let w = self.config.aux_window_s;
        if w > 0.0 && time_s >= self.aux_start_s && time_s < self.aux_start_s + w {
            self.config.aux_step_w
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::HevParams;

    fn demand() -> WheelDemand {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6)
            .unwrap()
            .demand(15.0, 0.5, 0.0)
    }

    #[test]
    fn severity_zero_is_off() {
        assert!(FaultConfig::at_severity(0.0).is_off());
        assert!(!FaultConfig::at_severity(0.5).is_off());
    }

    #[test]
    fn severity_scales_monotonically_and_clamps() {
        let half = FaultConfig::at_severity(0.5);
        let full = FaultConfig::at_severity(1.0);
        assert!(half.soc_noise < full.soc_noise);
        assert!(half.derate_factor > full.derate_factor);
        let extreme = FaultConfig::at_severity(10.0);
        assert!(extreme.capacity_fade <= 0.90);
        assert!(extreme.derate_factor >= 0.20);
    }

    #[test]
    fn same_seed_same_trajectory() {
        let cfg = FaultConfig::at_severity(1.0);
        let run = |seed: u64| {
            let mut plan = FaultPlan::new(cfg, seed);
            let mut out = Vec::new();
            for _ in 0..3 {
                plan.begin_episode(600.0);
                for step in 0..50 {
                    let t = step as f64;
                    let (soc, d) = plan.sensor(t, 0.6, &demand());
                    out.push((
                        soc,
                        d.speed_mps,
                        plan.motor_derate_at(t),
                        plan.aux_disturbance_at(t),
                    ));
                }
            }
            out
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn episode_streams_are_draw_count_independent() {
        // Episode 1's faults must not depend on how many steps episode 0
        // consumed — checkpoint/resume and variable-length cycles rely on
        // the per-episode reseed.
        let cfg = FaultConfig::at_severity(1.0);
        let mut long = FaultPlan::new(cfg, 7);
        long.begin_episode(600.0);
        for step in 0..500 {
            long.sensor(step as f64, 0.6, &demand());
        }
        let mut short = FaultPlan::new(cfg, 7);
        short.begin_episode(600.0);
        short.sensor(0.0, 0.6, &demand());
        long.begin_episode(600.0);
        short.begin_episode(600.0);
        assert_eq!(
            long.sensor(0.0, 0.6, &demand()),
            short.sensor(0.0, 0.6, &demand())
        );
    }

    #[test]
    fn windows_lie_inside_the_episode() {
        let cfg = FaultConfig::at_severity(1.0);
        let mut plan = FaultPlan::new(cfg, 11);
        for _ in 0..20 {
            plan.begin_episode(400.0);
            assert!((0.0..400.0).contains(&plan.derate_start_s));
            assert!((0.0..400.0).contains(&plan.aux_start_s));
            // Inside the window the derate and the aux step are active.
            let t = plan.derate_start_s + 1e-6;
            assert_eq!(plan.motor_derate_at(t), cfg.derate_factor);
            let t = plan.aux_start_s + 1e-6;
            assert_eq!(plan.aux_disturbance_at(t), cfg.aux_step_w);
        }
    }

    #[test]
    fn off_config_perturbs_nothing_but_still_draws() {
        let mut plan = FaultPlan::new(FaultConfig::off(), 5);
        plan.begin_episode(100.0);
        let d = demand();
        let (soc, observed) = plan.sensor(10.0, 0.63, &d);
        assert_eq!(soc, 0.63);
        assert_eq!(observed, d);
        assert_eq!(plan.motor_derate_at(50.0), 1.0);
        assert_eq!(plan.aux_disturbance_at(50.0), 0.0);
    }

    #[test]
    fn soc_observation_is_clamped() {
        let cfg = FaultConfig {
            soc_drift_per_1000s: 1000.0,
            ..FaultConfig::at_severity(1.0)
        };
        let mut plan = FaultPlan::new(cfg, 3);
        plan.begin_episode(100.0);
        for step in 0..100 {
            let (soc, _) = plan.sensor(step as f64, 0.6, &demand());
            assert!((0.0..=1.0).contains(&soc));
        }
    }

    #[test]
    fn capacity_fade_degrades_the_plant() {
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let nominal = hev.battery().params().capacity_ah;
        FaultPlan::new(FaultConfig::at_severity(1.0), 1).degrade_plant(&mut hev);
        assert!(hev.battery().params().capacity_ah < nominal);
        // An off plan leaves the plant untouched.
        let mut healthy = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        FaultPlan::new(FaultConfig::off(), 1).degrade_plant(&mut healthy);
        assert_eq!(healthy.battery().params().capacity_ah, nominal);
    }
}
