//! Deterministic run telemetry: the glue between the simulation loop and
//! the `hev-trace` recording primitives.
//!
//! An [`EpisodeTelemetry`] collector rides through
//! [`crate::sim::simulate_instrumented`] and gathers, entirely in
//! memory:
//!
//! * a per-episode [`MetricsRegistry`] snapshot (TD-error statistics,
//!   exploration rate, Q-table occupancy, the fuel vs `w·f_aux(p_aux)`
//!   reward decomposition, supervisor intervention counts, per-step
//!   evaluation counts), emitted as one `episode_metrics` JSONL line;
//! * sampled [`StepEvent`] trace lines (`--trace-sample N`);
//! * a [`FlightRecorder`] ring of recent steps, dumped into the trace
//!   stream when the supervisor rejects a decision or a non-finite
//!   control reaches the plant.
//!
//! Nothing here touches a clock or a file: lines are pre-serialized
//! strings collected per task and written afterwards in task order
//! (see `hev_trace::sink`), which is what makes the emitted files
//! byte-identical across `--jobs` worker counts.

use crate::harness::runlog::RunEvent;
use crate::metrics::EpisodeMetrics;
use crate::reward::RewardConfig;
use hev_rl::{QStats, TdStats, TD_ABS_DELTA_BOUNDS};
use hev_trace::evals::Counts;
use hev_trace::json;
use hev_trace::{FlightRecorder, MetricsRegistry, StepEvent, TraceSampler};

/// What telemetry a run collects. The default is fully disabled — the
/// simulation loop then skips every recording branch, keeping the
/// un-instrumented paths bit-identical and cost-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Collect the per-episode metrics registry and emit
    /// `episode_metrics` lines.
    pub metrics: bool,
    /// Record every `trace_sample`-th step as a trace line (`0` = none).
    pub trace_sample: u64,
    /// Flight-recorder ring capacity in steps (`0` = disabled).
    pub flight_capacity: usize,
}

impl TelemetryConfig {
    /// Everything off (the default).
    pub fn disabled() -> Self {
        Self {
            metrics: false,
            trace_sample: 0,
            flight_capacity: 0,
        }
    }

    /// Metrics on, every step traced, a 64-step flight ring.
    pub fn enabled() -> Self {
        Self {
            metrics: true,
            trace_sample: 1,
            flight_capacity: 64,
        }
    }

    /// Whether any collection is configured.
    pub fn is_enabled(&self) -> bool {
        self.metrics || self.trace_sample != 0 || self.flight_capacity != 0
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// What a deciding policy recorded about its most recent decision (only
/// while recording is enabled via
/// [`crate::sim::HevPolicy::set_record_decisions`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionInfo {
    /// Encoded state index `s = [p_dem, v, q, pre]`.
    pub state: usize,
    /// Number of feasible actions in this step's mask.
    pub feasible: usize,
    /// Chosen action index.
    pub action: usize,
    /// The predictor's demand forecast fed into the state encoding, W
    /// (0 when the state space has no prediction dimension).
    pub prediction_w: f64,
}

/// A policy's learning-progress snapshot at episode end.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyTelemetry {
    /// Current exploration rate ε.
    pub epsilon: f64,
    /// TD-error statistics accumulated over the episode.
    pub td: TdStats,
    /// Q-table occupancy summary.
    pub q: QStats,
}

/// Everything one run collected, ready for the harness to write in task
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTelemetry {
    /// The run's label (e.g. `fig2/UDDS/with/run0`).
    pub label: String,
    /// One `episode_metrics` JSONL line per episode.
    pub metrics_lines: Vec<String>,
    /// Sampled step-trace and flight-dump JSONL lines.
    pub trace_lines: Vec<String>,
    /// Prometheus text exposition of the final episode's registry.
    pub prometheus: String,
}

/// The per-run collector threaded through
/// [`crate::sim::simulate_instrumented`]. One collector covers a whole
/// run (many episodes); episode boundaries reset the registry and the
/// flight ring but keep accumulating lines.
#[derive(Debug)]
pub struct EpisodeTelemetry {
    config: TelemetryConfig,
    run: String,
    episode: u64,
    kind: &'static str,
    registry: MetricsRegistry,
    sampler: TraceSampler,
    flight: FlightRecorder,
    metrics_lines: Vec<String>,
    trace_lines: Vec<String>,
    prometheus: String,
    counts_at_start: Counts,
    /// When `Some`, this episode's evaluation counters come from
    /// explicitly attributed deltas (see [`Self::attribute_counts`])
    /// instead of the thread-local window — the lockstep wave's way of
    /// keeping per-lane counts exact while many lanes share a thread.
    attributed: Option<Counts>,
    /// When `Some`, run-log mirror events are buffered here instead of
    /// being emitted live (see [`Self::buffer_runlog`]).
    runlog_buffer: Option<Vec<RunEvent>>,
    last_rejections: usize,
    dumped: bool,
}

impl EpisodeTelemetry {
    /// A collector for the labelled run.
    pub fn new(run: impl Into<String>, config: TelemetryConfig) -> Self {
        Self {
            config,
            run: run.into(),
            episode: 0,
            kind: "train",
            registry: MetricsRegistry::new(),
            sampler: TraceSampler::new(config.trace_sample),
            flight: FlightRecorder::new(config.flight_capacity),
            metrics_lines: Vec::new(),
            trace_lines: Vec::new(),
            prometheus: String::new(),
            counts_at_start: Counts::default(),
            attributed: None,
            runlog_buffer: None,
            last_rejections: 0,
            dumped: false,
        }
    }

    /// The configuration this collector was built with.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// The index of the episode currently being recorded.
    pub fn episode(&self) -> u64 {
        self.episode
    }

    /// The current episode kind (`"train"` or `"eval"`).
    pub fn kind(&self) -> &'static str {
        self.kind
    }

    /// Labels the upcoming episode(s) as training or evaluation.
    pub fn set_kind(&mut self, kind: &'static str) {
        self.kind = kind;
    }

    /// The current episode's registry (for exposition or inspection).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Resets per-episode state; called by the simulation loop at the
    /// top of each instrumented episode. Falls back to windowed counter
    /// deltas; a lockstep wave re-enables attribution per episode via
    /// [`Self::attribute_counts`].
    pub fn begin_episode(&mut self) {
        self.registry.clear();
        self.flight.clear();
        self.counts_at_start = hev_trace::evals::counts();
        self.attributed = None;
        self.last_rejections = 0;
        self.dumped = false;
    }

    /// Switches the current episode's evaluation counters to explicitly
    /// attributed deltas (starting from zero); the driver then feeds
    /// per-step shares via [`Self::note_counts`]. Call after
    /// [`Self::begin_episode`] — beginning an episode reverts to the
    /// windowed default.
    pub fn attribute_counts(&mut self) {
        self.attributed = Some(Counts::default());
    }

    /// Adds one attributed counter delta to the current episode (no-op
    /// unless [`Self::attribute_counts`] enabled attribution).
    pub fn note_counts(&mut self, delta: &Counts) {
        if let Some(acc) = self.attributed.as_mut() {
            acc.add(delta);
        }
    }

    /// Diverts the run-log mirror of `episode_metrics` events into an
    /// internal buffer; the harness drains it with
    /// [`Self::take_runlog_events`] and emits the events in task order.
    /// Used by chunked (wave) execution, where live emission would
    /// interleave lanes.
    pub fn buffer_runlog(&mut self) {
        self.runlog_buffer = Some(Vec::new());
    }

    /// Drains the buffered run-log events, leaving buffering enabled
    /// (empty when [`Self::buffer_runlog`] was never called or nothing
    /// was buffered).
    pub fn take_runlog_events(&mut self) -> Vec<RunEvent> {
        self.runlog_buffer
            .as_mut()
            .map(std::mem::take)
            .unwrap_or_default()
    }

    /// Records one simulated step: always into the flight ring, and into
    /// the trace stream when the sampler picks the step index.
    pub fn record_step(&mut self, ev: &StepEvent) {
        let sampled = self.sampler.samples(ev.step);
        if !sampled && !self.flight.is_enabled() {
            return;
        }
        let line = ev.to_json(&self.run);
        if self.flight.is_enabled() {
            if sampled {
                self.flight.record(line.clone());
            } else {
                self.flight.record(line);
                return;
            }
        }
        self.trace_lines.push(line);
    }

    /// Dumps the flight ring into the trace stream (at most once per
    /// episode) when this step degraded: a non-finite control reached
    /// the plant, or the supervisor's rejection count grew.
    ///
    /// `rejections` is the supervising policy's cumulative
    /// [`crate::DegradationReport::rejections`] for the episode (0 when
    /// unsupervised).
    pub fn note_step_health(&mut self, step: u64, control_finite: bool, rejections: usize) {
        let trigger = if !control_finite {
            Some("non_finite_control")
        } else if rejections > self.last_rejections {
            Some("supervisor_degradation")
        } else {
            None
        };
        self.last_rejections = rejections;
        if self.dumped {
            return;
        }
        if let Some(trigger) = trigger {
            if let Some(line) = self.flight.dump(&self.run, self.episode, trigger, step) {
                self.trace_lines.push(line);
                self.dumped = true;
            }
        }
    }

    /// Closes the episode: populates the registry from the episode's
    /// metrics and the policy's learning snapshot, emits the
    /// `episode_metrics` JSONL line, refreshes the Prometheus
    /// exposition, and advances the episode index.
    pub fn end_episode(
        &mut self,
        metrics: &EpisodeMetrics,
        reward: &RewardConfig,
        policy: Option<PolicyTelemetry>,
    ) {
        if self.config.metrics {
            self.populate_registry(metrics, reward, policy);
            let line = json::Obj::new()
                .u64("v", u64::from(hev_trace::TRACE_SCHEMA_VERSION))
                .str("event", "episode_metrics")
                .str("run", &self.run)
                .u64("episode", self.episode)
                .str("kind", self.kind)
                .raw("metrics", &self.registry.snapshot_json())
                .finish();
            self.metrics_lines.push(line);
            self.prometheus = self.registry.to_prometheus("hev_");
            // Mirror the snapshot into the run log (schema v3) so live
            // progress consumers see it without waiting for the batch's
            // telemetry files. The run log is the nondeterministic side
            // channel; the deterministic copy is `metrics_lines`.
            if let Ok(snapshot) =
                serde_json::from_str::<serde::Value>(&self.registry.snapshot_json())
            {
                let event =
                    crate::harness::runlog::RunEvent::new("episode_metrics", self.run.clone())
                        .index(self.episode as usize)
                        .metrics(snapshot);
                match self.runlog_buffer.as_mut() {
                    Some(buf) => buf.push(event),
                    None => crate::harness::runlog::emit(&event),
                }
            }
        }
        self.episode += 1;
    }

    fn populate_registry(
        &mut self,
        metrics: &EpisodeMetrics,
        reward: &RewardConfig,
        policy: Option<PolicyTelemetry>,
    ) {
        // Attributed deltas when the wave driver feeds them, else the
        // episode's thread-local counter window; identical by
        // construction (the differential suite pins it).
        let counts = self
            .attributed
            .unwrap_or_else(|| hev_trace::evals::counts().since(&self.counts_at_start));
        let r = &mut self.registry;
        r.counter_add("steps", metrics.steps as u64);
        r.counter_add("evals", counts.evals);
        r.counter_add("ctx_rebuilds", counts.ctx_rebuilds);
        r.counter_add("ctx_cache_hits", counts.ctx_cache_hits);
        r.counter_add("ctx_cache_misses", counts.ctx_cache_misses);
        r.counter_add("fallback_steps", metrics.fallback_steps as u64);
        r.counter_add("trace_miss_steps", metrics.trace_miss_steps as u64);
        r.gauge_set("fuel_g", metrics.fuel_g);
        r.gauge_set("distance_m", metrics.distance_m);
        r.gauge_set("reward_total", metrics.total_reward);
        // The paper reward decomposes as Σ(−fuel_i + w·u_i·ΔT); the two
        // terms below are each accumulated independently, so their float
        // sum may differ from `reward_total` in the last bits.
        r.gauge_set("reward_fuel_term", -metrics.fuel_g);
        r.gauge_set(
            "reward_aux_term",
            reward.aux_weight * metrics.utility_sum * reward.dt_s,
        );
        r.gauge_set("soc_initial", metrics.soc_initial);
        r.gauge_set("soc_final", metrics.soc_final);
        r.gauge_set("utility_mean", metrics.mean_utility());
        if let Some(d) = &metrics.degradation {
            r.counter_add("supervisor_decisions", d.decisions as u64);
            r.counter_add("supervisor_infeasible", d.infeasible as u64);
            r.counter_add("supervisor_non_finite", d.non_finite as u64);
            r.counter_add("supervisor_control_errors", d.control_errors as u64);
            r.counter_add("supervisor_myopic_rescues", d.myopic_rescues as u64);
            r.counter_add("supervisor_rule_rescues", d.rule_rescues as u64);
            r.counter_add("supervisor_limp_home", d.limp_home as u64);
        }
        if let Some(p) = policy {
            r.gauge_set("epsilon", p.epsilon);
            r.counter_add("td_updates", p.td.updates);
            r.gauge_set("td_mean_abs_delta", p.td.mean_abs_delta());
            r.gauge_set("td_max_abs_delta", p.td.max_abs_delta);
            r.gauge_set("td_sum_delta", p.td.sum_delta);
            r.histogram_merge(
                "td_abs_delta",
                &TD_ABS_DELTA_BOUNDS,
                &p.td.bucket_counts,
                p.td.sum_abs_delta,
                p.td.updates,
            );
            r.gauge_set("q_states", p.q.n_states as f64);
            r.gauge_set("q_actions", p.q.n_actions as f64);
            r.gauge_set("q_visited", p.q.visited as f64);
            r.gauge_set("q_occupancy", p.q.occupancy());
            r.counter_add("q_visits_total", p.q.visits_total);
        }
    }

    /// Consumes the collector into its collected lines.
    pub fn into_run(self) -> RunTelemetry {
        RunTelemetry {
            label: self.run,
            metrics_lines: self.metrics_lines,
            trace_lines: self.trace_lines,
            prometheus: self.prometheus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_event(step: u64) -> StepEvent {
        StepEvent {
            episode: 0,
            kind: "train",
            step,
            time_s: step as f64,
            p_dem_w: 1000.0,
            speed_mps: 5.0,
            soc: 0.6,
            prediction_w: 0.0,
            state: Some(1),
            feasible: Some(4),
            action: Some(2),
            current_a: 0.0,
            gear: 1,
            p_aux_w: 600.0,
            reward: -0.1,
            fuel_g: 0.1,
            aux_term: 0.0,
            soc_after: 0.6,
            fallback: false,
        }
    }

    #[test]
    fn disabled_config_collects_nothing() {
        let mut t = EpisodeTelemetry::new("r", TelemetryConfig::disabled());
        t.begin_episode();
        t.record_step(&step_event(0));
        t.note_step_health(0, true, 0);
        t.end_episode(&EpisodeMetrics::new(0.6), &RewardConfig::default(), None);
        let run = t.into_run();
        assert!(run.metrics_lines.is_empty());
        assert!(run.trace_lines.is_empty());
        assert!(run.prometheus.is_empty());
    }

    #[test]
    fn sampling_picks_every_nth_step() {
        let mut cfg = TelemetryConfig::disabled();
        cfg.trace_sample = 2;
        let mut t = EpisodeTelemetry::new("r", cfg);
        t.begin_episode();
        for step in 0..5 {
            t.record_step(&step_event(step));
        }
        let run = t.into_run();
        assert_eq!(run.trace_lines.len(), 3, "steps 0, 2, 4");
        assert!(run.trace_lines[1].contains("\"step\":2"));
    }

    #[test]
    fn flight_dump_fires_once_on_degradation_and_contains_recent_steps() {
        let mut cfg = TelemetryConfig::disabled();
        cfg.flight_capacity = 2;
        let mut t = EpisodeTelemetry::new("r", cfg);
        t.begin_episode();
        for step in 0..4 {
            t.record_step(&step_event(step));
            t.note_step_health(step, true, 0);
        }
        assert!(t.into_run().trace_lines.is_empty(), "healthy: no dump");

        let mut t = EpisodeTelemetry::new("r", cfg);
        t.begin_episode();
        t.record_step(&step_event(0));
        t.note_step_health(0, true, 0);
        t.record_step(&step_event(1));
        t.note_step_health(1, true, 1); // supervisor rejected something
        t.record_step(&step_event(2));
        t.note_step_health(2, true, 1); // count stable: no second dump
        let run = t.into_run();
        assert_eq!(run.trace_lines.len(), 1);
        let dump = &run.trace_lines[0];
        assert!(dump.contains("\"event\":\"flight_dump\""));
        assert!(dump.contains("\"trigger\":\"supervisor_degradation\""));
        assert!(dump.contains("\"step\":1"));
    }

    #[test]
    fn non_finite_control_also_triggers_a_dump() {
        let mut cfg = TelemetryConfig::disabled();
        cfg.flight_capacity = 4;
        let mut t = EpisodeTelemetry::new("r", cfg);
        t.begin_episode();
        t.record_step(&step_event(0));
        t.note_step_health(0, false, 0);
        let run = t.into_run();
        assert_eq!(run.trace_lines.len(), 1);
        assert!(run.trace_lines[0].contains("\"trigger\":\"non_finite_control\""));
    }

    #[test]
    fn episode_metrics_line_carries_the_registry_snapshot() {
        let mut cfg = TelemetryConfig::disabled();
        cfg.metrics = true;
        let mut t = EpisodeTelemetry::new("fig2/run0", cfg);
        t.begin_episode();
        let mut m = EpisodeMetrics::new(0.6);
        m.steps = 10;
        m.fuel_g = 12.5;
        let policy = PolicyTelemetry {
            epsilon: 0.25,
            td: TdStats::new(),
            q: QStats {
                n_states: 10,
                n_actions: 4,
                visited: 5,
                visits_total: 20,
            },
        };
        t.end_episode(&m, &RewardConfig::default(), Some(policy));
        let run = t.into_run();
        assert_eq!(run.metrics_lines.len(), 1);
        let line = &run.metrics_lines[0];
        assert!(line.starts_with("{\"v\":1,\"event\":\"episode_metrics\",\"run\":\"fig2/run0\""));
        assert!(line.contains("\"fuel_g\":12.5"));
        assert!(line.contains("\"epsilon\":0.25"));
        assert!(line.contains("\"q_occupancy\":0.125"));
        assert!(run.prometheus.contains("# TYPE hev_fuel_g gauge"));
    }

    #[test]
    fn episode_index_advances_per_episode() {
        let mut cfg = TelemetryConfig::disabled();
        cfg.metrics = true;
        let mut t = EpisodeTelemetry::new("r", cfg);
        for _ in 0..2 {
            t.begin_episode();
            t.end_episode(&EpisodeMetrics::new(0.6), &RewardConfig::default(), None);
        }
        let run = t.into_run();
        assert!(run.metrics_lines[0].contains("\"episode\":0"));
        assert!(run.metrics_lines[1].contains("\"episode\":1"));
    }
}
