//! Cycle-level plans: a drive cycle bound to its precomputed
//! [`ContextTable`].
//!
//! Training replays the same cycle thousands of times; a [`CyclePlan`]
//! performs the per-step demand and context precompute once and shares
//! it immutably (via [`Arc`]) across episodes, lockstep wave lanes,
//! harness workers, and the DP solver's state-of-charge sweep. The
//! planned simulation entry points ([`crate::sim::simulate_planned`] and
//! friends) consume a plan instead of rebuilding per step; the
//! `ctx_rebuilds` counter in [`hev_trace::evals`] proves the
//! amortization (one tick per build, zero per steady-state step).
//!
//! The validity contract is inherited from
//! [`ContextTable`](hev_model::plan): a plan built against one vehicle
//! configuration at motor derate 1.0 serves any vehicle with the same
//! demand-side configuration, at any battery state. Fault-injected steps
//! that derate the motor bypass the table (the simulation loop rebuilds
//! locally for exactly those steps).

use std::sync::Arc;

use drive_cycle::DriveCycle;
use hev_model::{ContextTable, ParallelHev, WheelDemand};

/// A drive cycle plus its precomputed per-step context table, cheap to
/// clone (the table is shared through an [`Arc`]).
#[derive(Debug, Clone)]
pub struct CyclePlan {
    cycle: DriveCycle,
    table: Arc<ContextTable>,
}

impl CyclePlan {
    /// Builds the plan for `cycle` through `hev`'s demand-side
    /// configuration (build with a healthy vehicle, at motor derate
    /// 1.0).
    ///
    /// Each tabulated demand is the same
    /// [`ParallelHev::demand`] call the per-step simulation loop would
    /// make, so planned and unplanned runs are bit-identical.
    pub fn new(hev: &ParallelHev, cycle: &DriveCycle) -> Self {
        let demands: Vec<WheelDemand> = cycle
            .points()
            .map(|p| hev.demand(p.speed_mps, p.accel_mps2, p.grade))
            .collect();
        let table = Arc::new(ContextTable::build(hev, &demands, cycle.dt()));
        Self {
            cycle: cycle.clone(),
            table,
        }
    }

    /// The drive cycle this plan tabulates.
    pub fn cycle(&self) -> &DriveCycle {
        &self.cycle
    }

    /// The shared per-step context table.
    pub fn table(&self) -> &Arc<ContextTable> {
        &self.table
    }

    /// Number of timesteps in the plan.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the plan covers no timesteps.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_cycle::StandardCycle;
    use hev_model::HevParams;

    #[test]
    fn plan_matches_cycle_length_and_shares_table() {
        let hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let cycle = StandardCycle::Nycc.cycle();
        let plan = CyclePlan::new(&hev, &cycle);
        assert_eq!(plan.len(), cycle.len());
        assert!(!plan.is_empty());
        let clone = plan.clone();
        assert!(Arc::ptr_eq(plan.table(), clone.table()));
        // Tabulated demands are the same calls the sim loop makes.
        for (t, p) in cycle.points().enumerate() {
            let fresh = hev.demand(p.speed_mps, p.accel_mps2, p.grade);
            assert_eq!(
                plan.table().demand(t).wheel_torque_nm.to_bits(),
                fresh.wheel_torque_nm.to_bits(),
                "step {t}"
            );
        }
    }
}
