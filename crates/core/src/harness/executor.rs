//! Deterministic work-stealing executor over scoped threads.
//!
//! Tasks are pulled from a shared queue by index, so thread scheduling
//! decides only *when* a task runs, never *what it computes* or *where
//! its result lands*: each result is written back to the slot of its
//! task index, and the returned vector is in task order. A run is
//! therefore bit-identical at any worker count as long as each task is
//! a pure function of its input — which the training harness guarantees
//! by deriving every run's RNG stream from its own
//! [split seed](crate::harness::split_seed).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers the harness uses when none is requested: the
/// machine's available parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(index, input)` for every input and returns the results in
/// input order, fanning the tasks across up to `jobs` scoped worker
/// threads.
///
/// `jobs` is clamped to `[1, inputs.len()]`; with one worker (or one
/// input) the tasks run inline on the caller's thread. A panicking task
/// aborts the whole batch: remaining tasks may be skipped and the panic
/// resurfaces on the caller after all workers have stopped.
pub fn run_indexed<T, R, F>(jobs: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.max(1).min(inputs.len().max(1));
    if jobs <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let input = slots[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task taken twice");
                let result = f(i, input);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker exited without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(jobs, (0..100usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100usize).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let compute = |_: usize, seed: u64| -> u64 {
            // A toy "training run": result depends only on the input.
            let mut h = seed;
            for _ in 0..1000 {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            h
        };
        let serial = run_indexed(1, (0..32u64).collect(), compute);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_indexed(jobs, (0..32u64).collect(), compute), serial);
        }
    }

    #[test]
    fn handles_empty_and_single_input() {
        let empty: Vec<u32> = run_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(4, vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(
            run_indexed(16, vec![1, 2, 3], |_, x| x * 10),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
