//! Deterministic work-stealing executor over scoped threads.
//!
//! Tasks are pulled from a shared queue by index, so thread scheduling
//! decides only *when* a task runs, never *what it computes* or *where
//! its result lands*: each result is written back to the slot of its
//! task index, and the returned vector is in task order. A run is
//! therefore bit-identical at any worker count as long as each task is
//! a pure function of its input — which the training harness guarantees
//! by deriving every run's RNG stream from its own
//! [split seed](crate::harness::split_seed).

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers the harness uses when none is requested: the
/// machine's available parallelism (1 if that cannot be determined).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `f(index, input)` for every input and returns the results in
/// input order, fanning the tasks across up to `jobs` scoped worker
/// threads.
///
/// `jobs` is clamped to `[1, inputs.len()]`; with one worker (or one
/// input) the tasks run inline on the caller's thread. A panicking task
/// aborts the whole batch: remaining tasks may be skipped and the panic
/// resurfaces on the caller after all workers have stopped. Batches that
/// must survive a bad task use [`run_indexed_caught`] instead.
pub fn run_indexed<T, R, F>(jobs: usize, inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = jobs.max(1).min(inputs.len().max(1));
    if jobs <= 1 {
        return inputs
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    let slots: Vec<Mutex<Option<T>>> = inputs.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..slots.len()).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= slots.len() {
                    break;
                }
                let input = slots[i]
                    .lock()
                    // hevlint::allow(panic::expect, a poisoned input slot means another worker already panicked; crash tolerance is layered above via run_caught)
                    .expect("task slot poisoned")
                    .take()
                    // hevlint::allow(panic::expect, the atomic counter hands each index to exactly one worker)
                    .expect("task taken twice");
                let result = f(i, input);
                // hevlint::allow(panic::expect, a poisoned result slot means another worker already panicked; crash tolerance is layered above via run_caught)
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                // hevlint::allow(panic::expect, propagating a worker panic out of the scope is the executor's documented crash semantics)
                .expect("result slot poisoned")
                // hevlint::allow(panic::expect, every index is claimed and stored exactly once; run_caught wraps tasks that may panic)
                .expect("worker exited without storing a result")
        })
        .collect()
}

/// How a single caught task ended: its result, or the message of the
/// panic that killed it.
///
/// Produced by [`run_indexed_caught`]; the vector it returns stays in
/// task order, so a panicked task leaves a typed hole rather than
/// shifting its neighbours.
#[derive(Debug, Clone, PartialEq)]
pub enum RunOutcome<R> {
    /// The task completed and produced a result.
    Ok(R),
    /// The task panicked; the batch kept going without it.
    Panicked {
        /// The panic payload rendered as text (`"non-string panic
        /// payload"` when the payload was neither `&str` nor `String`).
        message: String,
    },
}

impl<R> RunOutcome<R> {
    /// The result, or `None` if the task panicked.
    pub fn ok(self) -> Option<R> {
        match self {
            Self::Ok(r) => Some(r),
            Self::Panicked { .. } => None,
        }
    }

    /// A reference to the result, or `None` if the task panicked.
    pub fn as_ok(&self) -> Option<&R> {
        match self {
            Self::Ok(r) => Some(r),
            Self::Panicked { .. } => None,
        }
    }

    /// Whether the task panicked.
    pub fn is_panicked(&self) -> bool {
        matches!(self, Self::Panicked { .. })
    }

    /// The panic message, or `None` if the task completed.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            Self::Ok(_) => None,
            Self::Panicked { message } => Some(message),
        }
    }
}

/// Renders a panic payload as text. `panic!` with a literal carries a
/// `&str`, formatted panics carry a `String`; anything else is opaque.
pub(crate) fn panic_payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// [`run_indexed`] with per-task panic isolation: a panicking task is
/// caught on its worker and recorded as [`RunOutcome::Panicked`] while
/// every other task runs to completion and keeps its slot.
///
/// Because each input is moved into exactly one task and both the input
/// and any partially-built state are discarded on unwind, the closure is
/// re-entered only for *other* tasks' inputs — no broken invariant can
/// leak between tasks, which is what makes the `AssertUnwindSafe` below
/// sound. Surviving tasks' results are bit-identical to a batch that
/// never contained the panicking task (same inputs, same slots).
pub fn run_indexed_caught<T, R, F>(jobs: usize, inputs: Vec<T>, f: F) -> Vec<RunOutcome<R>>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    run_indexed(jobs, inputs, |i, input| {
        match catch_unwind(AssertUnwindSafe(|| f(i, input))) {
            Ok(r) => RunOutcome::Ok(r),
            Err(payload) => RunOutcome::Panicked {
                message: panic_payload_message(payload.as_ref()),
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        for jobs in [1, 2, 8] {
            let out = run_indexed(jobs, (0..100usize).collect(), |i, x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..100usize).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn identical_results_across_worker_counts() {
        let compute = |_: usize, seed: u64| -> u64 {
            // A toy "training run": result depends only on the input.
            let mut h = seed;
            for _ in 0..1000 {
                h = h
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
            }
            h
        };
        let serial = run_indexed(1, (0..32u64).collect(), compute);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(run_indexed(jobs, (0..32u64).collect(), compute), serial);
        }
    }

    #[test]
    fn handles_empty_and_single_input() {
        let empty: Vec<u32> = run_indexed(4, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(run_indexed(4, vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn more_jobs_than_tasks_is_fine() {
        assert_eq!(
            run_indexed(16, vec![1, 2, 3], |_, x| x * 10),
            vec![10, 20, 30]
        );
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }

    #[test]
    fn caught_batch_survives_a_panicking_task() {
        for jobs in [1, 2, 8] {
            let out = run_indexed_caught(jobs, (0..16u64).collect(), |_, x| {
                assert!(x != 5, "task 5 exploded");
                x * 3
            });
            assert_eq!(out.len(), 16);
            for (i, outcome) in out.iter().enumerate() {
                if i == 5 {
                    let msg = outcome.panic_message().unwrap();
                    assert!(msg.contains("task 5 exploded"), "msg {msg}");
                } else {
                    assert_eq!(outcome.as_ok(), Some(&(i as u64 * 3)));
                }
            }
        }
    }

    #[test]
    fn caught_survivors_match_batch_without_bad_task() {
        let compute = |_: usize, seed: u64| -> u64 {
            assert!(seed != 999, "poison");
            seed.wrapping_mul(6364136223846793005)
        };
        let clean: Vec<u64> = run_indexed_caught(4, vec![1, 2, 3, 4], compute)
            .into_iter()
            .map(|o| o.ok().unwrap())
            .collect();
        let with_bad = run_indexed_caught(4, vec![1, 2, 999, 3, 4], compute);
        let survivors: Vec<u64> = with_bad.into_iter().filter_map(RunOutcome::ok).collect();
        assert_eq!(survivors, clean);
    }

    #[test]
    fn caught_all_ok_matches_uncaught() {
        let compute = |i: usize, x: u32| x + i as u32;
        let plain = run_indexed(3, (0..20u32).collect(), compute);
        let caught: Vec<u32> = run_indexed_caught(3, (0..20u32).collect(), compute)
            .into_iter()
            .map(|o| o.ok().unwrap())
            .collect();
        assert_eq!(plain, caught);
    }

    #[test]
    fn non_string_panic_payload_is_labelled() {
        let out = run_indexed_caught(1, vec![0u8], |_, _| -> u8 {
            std::panic::panic_any(42i32);
        });
        assert_eq!(out[0].panic_message(), Some("non-string panic payload"));
    }
}
