//! Seed-splitting: independent child RNG streams from one master seed.
//!
//! Training fans out over runs (and perturbed replicas); every one of
//! those needs its own RNG stream, and the streams must be the same
//! whether the runs execute serially or across N threads. Deriving the
//! k-th child as `master + k` would make adjacent master seeds share
//! children (master 2015 / run 1 collides with master 2016 / run 0), so
//! children are instead derived by scrambling `(master, index)` through
//! SplitMix64 — the same finalizer xoshiro-family generators use for
//! seed expansion. Pure integer arithmetic: identical on every
//! platform, thread count, and optimization level.

/// One SplitMix64 scramble round.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the `child_index`-th child seed of `master_seed`.
///
/// Deterministic and platform-independent. Distinct `(master, index)`
/// pairs map to distinct children except for astronomically unlikely
/// 64-bit collisions; in particular `split_seed(m, k)` never equals
/// `split_seed(m + 1, k - 1)` the way naive `m + k` derivation does.
pub fn split_seed(master_seed: u64, child_index: u64) -> u64 {
    // Two rounds: the first decorrelates the index, the second mixes it
    // into the master. One round would leave low-entropy structure for
    // small indices.
    splitmix64(master_seed ^ splitmix64(child_index).rotate_left(17))
}

/// A master seed viewed as an indexable family of child seeds.
///
/// Thin convenience wrapper over [`split_seed`] for call sites that
/// hand one child per run to the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Wraps a master seed.
    pub fn new(master_seed: u64) -> Self {
        Self {
            master: master_seed,
        }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The `k`-th child seed.
    pub fn child(&self, k: u64) -> u64 {
        split_seed(self.master, k)
    }

    /// The first `n` child seeds, in order.
    pub fn children(&self, n: usize) -> Vec<u64> {
        (0..n as u64).map(|k| self.child(k)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        assert_eq!(split_seed(2015, 0), split_seed(2015, 0));
        assert_eq!(
            SeedSequence::new(7).children(4),
            SeedSequence::new(7).children(4)
        );
    }

    #[test]
    fn no_adjacent_master_collisions() {
        // The failure mode of `master + k` derivation.
        for m in 0..100u64 {
            for k in 1..10u64 {
                assert_ne!(split_seed(m, k), split_seed(m + 1, k - 1));
            }
        }
    }

    #[test]
    fn children_are_distinct() {
        let mut seen = HashSet::new();
        for m in [0u64, 1, 2015, u64::MAX] {
            for k in 0..1000 {
                assert!(seen.insert(split_seed(m, k)), "collision at ({m}, {k})");
            }
        }
    }

    #[test]
    fn children_differ_from_master() {
        for m in [0u64, 42, 2015] {
            assert_ne!(split_seed(m, 0), m);
        }
    }
}
