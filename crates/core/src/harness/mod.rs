//! Deterministic parallel training harness.
//!
//! Experiments fan out over independent training runs (different seeds)
//! and perturbed-replica episodes. Those tasks are embarrassingly
//! parallel *if* no RNG stream is shared between them — so the harness
//! is built around that invariant:
//!
//! * [`split_seed`] derives each task's RNG stream from a single master
//!   seed and the task index (never from thread identity or execution
//!   order);
//! * [`run_indexed`] fans tasks over scoped worker threads, writing
//!   each result back to its task-index slot;
//! * together they make any batch **bit-identical at every worker
//!   count**: same master seed in, same `EpisodeMetrics` and Q-tables
//!   out, whether `jobs` is 1 or 64.
//!
//! Per-run progress and wall-clock timing are emitted as JSON lines
//! through the [`runlog`] sink (stderr or a file — never stdout, which
//! carries the deterministic experiment output).
//!
//! # Example
//!
//! ```
//! use hev_control::harness::{Harness, SeedSequence};
//!
//! let harness = Harness::new(4);
//! let results = harness.run_seeded("demo", 2015, 8, |_k, seed| {
//!     // ... train with `seed`, return metrics ...
//!     seed % 97
//! });
//! // Identical to the serial run:
//! assert_eq!(results, Harness::serial().run_seeded("demo", 2015, 8, |_k, seed| seed % 97));
//! assert_eq!(results.len(), 8);
//! let seq = SeedSequence::new(2015);
//! assert_eq!(seq.child(0) % 97, results[0]);
//! ```

mod executor;
pub mod runlog;
mod seed;

pub use executor::{default_jobs, run_indexed, run_indexed_caught, RunOutcome};
pub use runlog::{RunEvent, RunLog};
pub use seed::{split_seed, SeedSequence};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

/// Domain-separation tag mixed into a task's seed before deriving retry
/// seeds, keeping them disjoint from the `SeedSequence` children the
/// task may split internally ("RTRY" in ASCII, twice).
pub const RETRY_SEED_TAG: u64 = 0x5254_5259_5254_5259;

/// One task of a batch: a label for the run log, the task's derived
/// seed, and an arbitrary payload.
#[derive(Debug, Clone)]
pub struct RunSpec<T> {
    /// Run-log label (e.g. `fig2/UDDS/with/run1`).
    pub label: String,
    /// The task's RNG seed, already split from the master seed.
    pub seed: u64,
    /// Task input.
    pub payload: T,
}

/// A fixed-width parallel runner with run-log reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Harness {
    jobs: usize,
}

impl Harness {
    /// A harness with the given worker count (`0` means
    /// [`default_jobs`]).
    pub fn new(jobs: usize) -> Self {
        Self {
            jobs: if jobs == 0 { default_jobs() } else { jobs },
        }
    }

    /// A single-threaded harness (the reference execution).
    pub fn serial() -> Self {
        Self { jobs: 1 }
    }

    /// A harness sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Self::new(0)
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs a batch of labeled tasks, returning results in task order.
    ///
    /// `f` receives `(task index, task seed, payload)`. Results are
    /// bit-identical at every worker count provided `f` derives all its
    /// randomness from the task seed.
    pub fn run<T, R, F>(&self, group: &str, tasks: Vec<RunSpec<T>>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, u64, T) -> R + Sync,
    {
        let total = tasks.len();
        let batch_t0 = Instant::now();
        runlog::emit(
            &RunEvent::new("batch_start", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1))),
        );
        let results = run_indexed(self.jobs, tasks, |i, spec: RunSpec<T>| {
            let t0 = Instant::now();
            runlog::emit(
                &RunEvent::new("run_start", &spec.label)
                    .index(i)
                    .total(total)
                    .seed(spec.seed),
            );
            let result = f(i, spec.seed, spec.payload);
            runlog::emit(
                &RunEvent::new("run_end", &spec.label)
                    .index(i)
                    .total(total)
                    .seed(spec.seed)
                    .elapsed(t0),
            );
            result
        });
        runlog::emit(
            &RunEvent::new("batch_end", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1)))
                .elapsed(batch_t0),
        );
        results
    }

    /// Runs a batch with per-task panic isolation and bounded
    /// reseed-and-retry.
    ///
    /// Like [`Harness::run`], but a panicking task no longer aborts the
    /// batch: the panic is caught on its worker, logged as a `run_panic`
    /// event (with the panic message in the event's `error` field), and
    /// the task is re-attempted up to `max_retries` times before being
    /// recorded as [`RunOutcome::Panicked`]. Retry `a` runs with seed
    /// `split_seed(task_seed ^ RETRY_SEED_TAG, a)` — derived from the
    /// task's own seed, never from execution order — and is announced by
    /// a `run_retry` event carrying the new seed, so batches stay
    /// bit-identical at every worker count. The tag keeps retry seeds
    /// disjoint from the `SeedSequence::new(task_seed)` children a task
    /// may split internally.
    ///
    /// Payloads must be `Clone` so a retry can restart from the original
    /// input; surviving tasks' results are identical to a batch that
    /// never contained the panicking task.
    ///
    /// When the dying task had a telemetry flight recorder running
    /// (`hev_trace::recorder` mirrors recorded steps into a thread-local
    /// ring), the ring's contents are attached to the run log as a
    /// `flight_dump` event right after `run_panic`, so the steps leading
    /// up to the crash survive it.
    pub fn run_caught<T, R, F>(
        &self,
        group: &str,
        tasks: Vec<RunSpec<T>>,
        max_retries: usize,
        f: F,
    ) -> Vec<RunOutcome<R>>
    where
        T: Send + Sync + Clone,
        R: Send,
        F: Fn(usize, u64, T) -> R + Sync,
    {
        let total = tasks.len();
        let batch_t0 = Instant::now();
        runlog::emit(
            &RunEvent::new("batch_start", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1))),
        );
        let results = run_indexed(self.jobs, tasks, |i, spec: RunSpec<T>| {
            let mut seed = spec.seed;
            let mut attempt = 0usize;
            loop {
                let t0 = Instant::now();
                runlog::emit(
                    &RunEvent::new("run_start", &spec.label)
                        .index(i)
                        .total(total)
                        .seed(seed),
                );
                let payload = spec.payload.clone();
                // The catch and the task share this worker thread, so the
                // thread-local panic ring observed after a catch is
                // exactly the dying task's (cleared here so a previous
                // task's ring can't leak in).
                hev_trace::recorder::clear_panic_ring();
                match catch_unwind(AssertUnwindSafe(|| f(i, seed, payload))) {
                    Ok(result) => {
                        runlog::emit(
                            &RunEvent::new("run_end", &spec.label)
                                .index(i)
                                .total(total)
                                .seed(seed)
                                .elapsed(t0),
                        );
                        return RunOutcome::Ok(result);
                    }
                    Err(payload) => {
                        let message = executor::panic_payload_message(payload.as_ref());
                        runlog::emit(
                            &RunEvent::new("run_panic", &spec.label)
                                .index(i)
                                .total(total)
                                .seed(seed)
                                .elapsed(t0)
                                .error(&message),
                        );
                        let ring = hev_trace::recorder::take_panic_ring();
                        if !ring.is_empty() {
                            let events: Vec<serde::Value> = ring
                                .iter()
                                .map(|line| {
                                    serde_json::from_str::<serde::Value>(line)
                                        .unwrap_or_else(|_| serde::Value::Str(line.clone()))
                                })
                                .collect();
                            runlog::emit(
                                &RunEvent::new("flight_dump", &spec.label)
                                    .index(i)
                                    .total(total)
                                    .seed(seed)
                                    .metrics(serde::Value::Seq(events)),
                            );
                        }
                        if attempt >= max_retries {
                            return RunOutcome::Panicked { message };
                        }
                        attempt += 1;
                        seed = split_seed(spec.seed ^ RETRY_SEED_TAG, attempt as u64);
                        runlog::emit(
                            &RunEvent::new("run_retry", &spec.label)
                                .index(i)
                                .total(total)
                                .seed(seed),
                        );
                    }
                }
            }
        });
        runlog::emit(
            &RunEvent::new("batch_end", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1)))
                .elapsed(batch_t0),
        );
        results
    }

    /// Runs a batch of task *chunks*, returning the flattened results in
    /// task order.
    ///
    /// A chunk is a group of tasks executed together on one worker — the
    /// unit of lockstep wave training, where one worker steps a whole
    /// wave of episodes sharing a precomputed cycle plan. `f` receives
    /// `(base index, chunk)` where `base` is the task index of the
    /// chunk's first task, and returns one `(result, buffered run-log
    /// events)` pair per task in chunk order.
    ///
    /// The run log stays **per task**, not per chunk: `batch_start`
    /// carries the total *task* count (byte-identical to the header
    /// [`Harness::run`] would write for the flattened batch), and after
    /// all chunks complete the harness emits, for every task in task
    /// order, its `run_start`, the buffered events `f` returned for it,
    /// and its `run_end`. Because nothing is emitted from the workers,
    /// the log is deterministic at **every** worker count — modulo
    /// `elapsed_s`, which on `run_end` is the wall time of the task's
    /// whole chunk (chunked tasks share a clock).
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a different number of results than the
    /// chunk has tasks.
    pub fn run_chunked<T, R, F>(&self, group: &str, chunks: Vec<Vec<RunSpec<T>>>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, Vec<RunSpec<T>>) -> Vec<(R, Vec<RunEvent>)> + Sync,
    {
        let total: usize = chunks.iter().map(Vec::len).sum();
        let batch_t0 = Instant::now();
        runlog::emit(
            &RunEvent::new("batch_start", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1))),
        );
        // Labels and seeds survive on this side of `f` so the post-hoc
        // emission below doesn't depend on what `f` does with the specs.
        let mut base = 0usize;
        let mut inputs = Vec::with_capacity(chunks.len());
        let mut metas: Vec<Vec<(String, u64)>> = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            metas.push(chunk.iter().map(|s| (s.label.clone(), s.seed)).collect());
            let b = base;
            base += chunk.len();
            inputs.push((b, chunk));
        }
        let outputs = run_indexed(
            self.jobs,
            inputs,
            |_ci, (b, chunk): (usize, Vec<RunSpec<T>>)| {
                let n = chunk.len();
                let t0 = Instant::now();
                let out = f(b, chunk);
                assert_eq!(
                    out.len(),
                    n,
                    "chunk callback must return one result per task"
                );
                (out, t0.elapsed().as_secs_f64())
            },
        );
        let mut results = Vec::with_capacity(total);
        let mut i = 0usize;
        for (meta, (out, chunk_elapsed)) in metas.into_iter().zip(outputs) {
            for ((label, seed), (result, events)) in meta.into_iter().zip(out) {
                runlog::emit(
                    &RunEvent::new("run_start", &label)
                        .index(i)
                        .total(total)
                        .seed(seed),
                );
                for event in &events {
                    runlog::emit(event);
                }
                let mut end = RunEvent::new("run_end", &label)
                    .index(i)
                    .total(total)
                    .seed(seed);
                end.elapsed_s = Some(chunk_elapsed);
                runlog::emit(&end);
                results.push(result);
                i += 1;
            }
        }
        runlog::emit(
            &RunEvent::new("batch_end", group)
                .total(total)
                .jobs(self.jobs.min(total.max(1)))
                .elapsed(batch_t0),
        );
        results
    }

    /// Runs `n` seed-split tasks: task `k` gets seed
    /// `split_seed(master_seed, k)` and label `<group>/run<k>`.
    pub fn run_seeded<R, F>(&self, group: &str, master_seed: u64, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, u64) -> R + Sync,
    {
        let seq = SeedSequence::new(master_seed);
        let tasks = (0..n)
            .map(|k| RunSpec {
                label: format!("{group}/run{k}"),
                seed: seq.child(k as u64),
                payload: (),
            })
            .collect();
        self.run(group, tasks, |i, seed, ()| f(i, seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(Harness::new(0).jobs(), default_jobs());
        assert_eq!(Harness::auto().jobs(), default_jobs());
        assert_eq!(Harness::serial().jobs(), 1);
        assert_eq!(Harness::new(5).jobs(), 5);
    }

    #[test]
    fn run_seeded_matches_serial_at_any_width() {
        let work = |_k: usize, seed: u64| {
            // Deterministic pseudo-training keyed only on the seed.
            (0..100).fold(seed, |h, _| h.rotate_left(7) ^ 0x2545_F491_4F6C_DD1D)
        };
        let reference = Harness::serial().run_seeded("t", 99, 16, work);
        for jobs in [2, 4, 16] {
            assert_eq!(Harness::new(jobs).run_seeded("t", 99, 16, work), reference);
        }
    }

    #[test]
    fn run_seeded_uses_split_seeds() {
        let seeds = Harness::serial().run_seeded("t", 2015, 4, |_, s| s);
        assert_eq!(seeds, SeedSequence::new(2015).children(4));
    }

    fn specs(n: u64) -> Vec<RunSpec<u64>> {
        let seq = SeedSequence::new(7);
        (0..n)
            .map(|k| RunSpec {
                label: format!("t/{k}"),
                seed: seq.child(k),
                payload: k,
            })
            .collect()
    }

    #[test]
    fn run_caught_batch_completes_and_survivors_match() {
        let work = |_i: usize, seed: u64, payload: u64| {
            assert!(payload != 3, "payload 3 always dies");
            seed.wrapping_mul(payload | 1)
        };
        // Retries re-derive the seed, but payload 3 panics regardless of
        // seed, so it exhausts its retries and stays Panicked.
        for jobs in [1, 2, 8] {
            let out = Harness::new(jobs).run_caught("t", specs(6), 2, work);
            assert_eq!(out.len(), 6);
            assert!(out[3].is_panicked());
            let clean: Vec<u64> = {
                let mut s = specs(6);
                s.remove(3);
                Harness::new(jobs).run("t", s, work)
            };
            let survivors: Vec<u64> = out.into_iter().filter_map(RunOutcome::ok).collect();
            assert_eq!(survivors, clean);
        }
    }

    #[test]
    fn run_caught_retry_succeeds_with_derived_seed() {
        // Fails on the original seed only; any retry seed succeeds.
        let orig = specs(4)[2].seed;
        let work = move |_i: usize, seed: u64, _p: u64| {
            assert!(seed != orig, "first attempt dies");
            seed
        };
        let out = Harness::serial().run_caught("t", specs(4), 1, work);
        let expected_retry_seed = split_seed(orig ^ RETRY_SEED_TAG, 1);
        assert_eq!(out[2].as_ok(), Some(&expected_retry_seed));
        // Zero retries: the task stays dead.
        let out = Harness::serial().run_caught("t", specs(4), 0, work);
        assert!(out[2].is_panicked());
        assert!(out[2]
            .panic_message()
            .unwrap()
            .contains("first attempt dies"));
    }

    #[test]
    fn run_caught_without_panics_matches_run() {
        let work = |i: usize, seed: u64, payload: u64| (i as u64) ^ seed ^ payload;
        let plain = Harness::new(4).run("t", specs(8), work);
        let caught: Vec<u64> = Harness::new(4)
            .run_caught("t", specs(8), 3, work)
            .into_iter()
            .map(|o| o.ok().unwrap())
            .collect();
        assert_eq!(plain, caught);
    }

    #[test]
    fn run_chunked_flattens_in_task_order_and_matches_run() {
        let work = |i: usize, seed: u64, payload: u64| (i as u64) ^ seed ^ payload;
        let plain = Harness::new(4).run("t", specs(6), work);
        let all = specs(6);
        let chunks: Vec<Vec<RunSpec<u64>>> =
            vec![all[0..2].to_vec(), all[2..5].to_vec(), all[5..6].to_vec()];
        for jobs in [1, 2, 8] {
            let chunked = Harness::new(jobs).run_chunked("t", chunks.clone(), |base, chunk| {
                chunk
                    .into_iter()
                    .enumerate()
                    .map(|(j, s)| (work(base + j, s.seed, s.payload), Vec::new()))
                    .collect()
            });
            assert_eq!(chunked, plain, "jobs={jobs}");
        }
    }

    #[test]
    fn run_preserves_task_order_and_payloads() {
        let tasks: Vec<RunSpec<u64>> = (0..10)
            .map(|k| RunSpec {
                label: format!("t/{k}"),
                seed: k,
                payload: k * 100,
            })
            .collect();
        let out = Harness::new(4).run("t", tasks, |i, seed, payload| (i as u64, seed, payload));
        for (i, (idx, seed, payload)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*seed, i as u64);
            assert_eq!(*payload, i as u64 * 100);
        }
    }
}
