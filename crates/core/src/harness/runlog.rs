//! JSON-lines run log: per-run progress and timing without touching
//! stdout.
//!
//! Experiment *results* go to stdout and must stay byte-identical
//! across worker counts; *progress* is a side channel. The sink
//! therefore writes one JSON object per line to stderr or a file, and
//! timing fields are the only nondeterministic content — consumers that
//! diff logs should drop `elapsed_s`.
//!
//! The sink is installed process-globally (like a logger) so deep call
//! sites — the executor fanning out training runs — can report without
//! threading a handle through every experiment signature.
//!
//! # Schema
//!
//! **v3** (this version) adds two event kinds — `episode_metrics` (an
//! instrumented episode finished; `metrics` carries the telemetry
//! registry snapshot) and `flight_dump` (a caught panic's worker left a
//! flight-recorder ring behind; `metrics` carries the recorded step
//! events) — and the always-present `metrics` field (`null` on every
//! other kind). Like v2, the change is purely additive: v1/v2 consumers
//! that read their own fields — such as the CI determinism diff, which
//! drops `elapsed_s` and compares the rest — keep working untouched,
//! because un-instrumented batches emit no v3 kinds and `metrics` is
//! `null` everywhere they look.
//!
//! **v2** added `run_panic` (a caught task died; `error` carries the
//! panic message), `run_retry` (the task is being re-attempted with the
//! derived seed in `seed`), and the always-present `error` field
//! (`null` except on `run_panic`).

use serde::Serialize;
use std::io::Write;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// One progress record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RunEvent {
    /// Event kind: `batch_start`, `run_start`, `run_end`, `batch_end`,
    /// `target_start`, `target_end`, `run_panic`, `run_retry`,
    /// `episode_metrics`, `flight_dump` (see the module docs for the
    /// schema history).
    pub event: String,
    /// Human-readable task label (e.g. `fig2/UDDS/with/run1`).
    pub label: String,
    /// Task index within its batch.
    pub index: Option<u64>,
    /// Batch size.
    pub total: Option<u64>,
    /// The task's derived RNG seed.
    pub seed: Option<u64>,
    /// Worker-thread count of the batch.
    pub jobs: Option<u64>,
    /// Wall-clock duration, seconds. The only nondeterministic field.
    pub elapsed_s: Option<f64>,
    /// Panic message of a `run_panic` event; `null` otherwise.
    pub error: Option<String>,
    /// Structured payload of an `episode_metrics` (registry snapshot) or
    /// `flight_dump` (recorded step events) event; `null` otherwise.
    pub metrics: Option<serde::Value>,
}

impl RunEvent {
    /// A record with the given kind and label and no optional fields.
    pub fn new(event: impl Into<String>, label: impl Into<String>) -> Self {
        Self {
            event: event.into(),
            label: label.into(),
            index: None,
            total: None,
            seed: None,
            jobs: None,
            elapsed_s: None,
            error: None,
            metrics: None,
        }
    }

    /// Sets the task index.
    pub fn index(mut self, i: usize) -> Self {
        self.index = Some(i as u64);
        self
    }

    /// Sets the batch size.
    pub fn total(mut self, n: usize) -> Self {
        self.total = Some(n as u64);
        self
    }

    /// Sets the task seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = Some(s);
        self
    }

    /// Sets the worker count.
    pub fn jobs(mut self, j: usize) -> Self {
        self.jobs = Some(j as u64);
        self
    }

    /// Sets the elapsed wall-clock time.
    pub fn elapsed(mut self, since: Instant) -> Self {
        self.elapsed_s = Some(since.elapsed().as_secs_f64());
        self
    }

    /// Sets the error message (used by `run_panic` events).
    pub fn error(mut self, message: impl Into<String>) -> Self {
        self.error = Some(message.into());
        self
    }

    /// Sets the structured payload (used by `episode_metrics` and
    /// `flight_dump` events).
    pub fn metrics(mut self, value: serde::Value) -> Self {
        self.metrics = Some(value);
        self
    }
}

/// A JSON-lines sink for [`RunEvent`]s, safe to share across workers.
pub struct RunLog {
    writer: Mutex<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for RunLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunLog").finish_non_exhaustive()
    }
}

impl RunLog {
    /// A sink over an arbitrary writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            writer: Mutex::new(writer),
        }
    }

    /// A sink writing to stderr.
    pub fn stderr() -> Self {
        Self::new(Box::new(std::io::stderr()))
    }

    /// A sink writing (truncating) to the given file.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(std::fs::File::create(path)?)))
    }

    /// Writes one event as a JSON line. I/O and serialization errors are
    /// swallowed and a poisoned sink is recovered: progress reporting
    /// must never abort (or panic out of) a training batch.
    pub fn emit(&self, event: &RunEvent) {
        let Ok(line) = serde_json::to_string(event) else {
            return;
        };
        let mut w = match self.writer.lock() {
            Ok(w) => w,
            // A worker panicked while holding the sink; the sink itself
            // is just a buffered writer, so keep logging through it.
            Err(poisoned) => poisoned.into_inner(),
        };
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

static GLOBAL: OnceLock<RunLog> = OnceLock::new();

/// Installs the process-wide run log. Returns `false` (and drops the
/// sink) if one is already installed.
pub fn install(log: RunLog) -> bool {
    GLOBAL.set(log).is_ok()
}

/// The installed run log, if any.
pub fn global() -> Option<&'static RunLog> {
    GLOBAL.get()
}

/// Emits to the installed run log, if any.
pub fn emit(event: &RunEvent) {
    if let Some(log) = global() {
        log.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A writer that appends into a shared buffer.
    struct SharedBuf(Arc<StdMutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_json_line_per_event() {
        let buf = Arc::new(StdMutex::new(Vec::new()));
        let log = RunLog::new(Box::new(SharedBuf(buf.clone())));
        log.emit(
            &RunEvent::new("run_start", "t/run0")
                .index(0)
                .total(3)
                .seed(42),
        );
        log.emit(&RunEvent::new("run_end", "t/run0").index(0).total(3));
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"run_start\""));
        assert!(lines[0].contains("\"seed\":42"));
        assert!(lines[1].contains("\"run_end\""));
    }

    #[test]
    fn events_round_trip() {
        let e = RunEvent::new("run_end", "x").index(2).total(8).jobs(4);
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"elapsed_s\":null"));
        assert!(json.contains("\"index\":2"));
    }

    #[test]
    fn run_panic_event_carries_error() {
        let e = RunEvent::new("run_panic", "t/run2")
            .index(2)
            .seed(7)
            .error("boom");
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"event\":\"run_panic\""));
        assert!(json.contains("\"error\":\"boom\""));
        // v1 events keep the field, as null, so v1 consumers see no change.
        let v1 = serde_json::to_string(&RunEvent::new("run_end", "x")).unwrap();
        assert!(v1.contains("\"error\":null"));
    }

    #[test]
    fn episode_metrics_event_carries_the_snapshot() {
        let snapshot: serde::Value =
            serde_json::from_str("{\"fuel_g\":12.5,\"steps\":10}").expect("valid snapshot json");
        let e = RunEvent::new("episode_metrics", "fig2/run0")
            .index(3)
            .metrics(snapshot);
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"event\":\"episode_metrics\""));
        assert!(json.contains("\"fuel_g\":12.5"));
        assert!(json.contains("\"steps\":10"));
    }

    #[test]
    fn v2_events_keep_metrics_null_for_old_readers() {
        // The v3 field is additive: every pre-v3 kind serializes it as
        // null, so a v2 consumer that ignores unknown fields (and the CI
        // determinism diff, which compares whole lines minus elapsed_s)
        // sees stable output.
        for kind in ["batch_start", "run_start", "run_end", "run_panic"] {
            let json = serde_json::to_string(&RunEvent::new(kind, "x")).unwrap();
            assert!(json.contains("\"metrics\":null"), "{kind}: {json}");
        }
    }

    #[test]
    fn global_emit_without_install_is_a_noop() {
        // Must not panic. (Another test may have installed a sink; both
        // paths are exercised across the suite.)
        emit(&RunEvent::new("run_start", "noop"));
    }
}
