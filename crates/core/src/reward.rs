//! The reward function (paper §4.3.3):
//! `r = (−ṁ_f + w·f_aux(p_aux)) · ΔT`.

use hev_model::StepOutcome;
use serde::{Deserialize, Serialize};

/// Reward configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Weighting factor `w` trading fuel (g/s) against auxiliary utility
    /// (dimensionless, ∈ [−1, 1]).
    pub aux_weight: f64,
    /// Time-step length `ΔT`, seconds.
    pub dt_s: f64,
    /// Optional soft barrier near the charge-sustaining bounds: penalty
    /// per unit state-of-charge beyond `soc_margin` of a window edge.
    /// Zero disables shaping (the hard window is enforced by action
    /// feasibility regardless).
    pub soc_barrier_weight: f64,
    /// Width of the soft-barrier region inside each window edge.
    pub soc_margin: f64,
    /// The charge-sustaining window the barrier refers to.
    pub soc_window: (f64, f64),
    /// Equivalence factor `s` charging net battery usage as fuel at
    /// `s·P_batt/D_f` g/s in the *learning* reward (0 disables). This is
    /// the standard equivalent-consumption term: it makes the agent
    /// charge-indifferent instead of gaming battery depletion within an
    /// episode. The reported paper reward (Table 2) never includes it.
    pub battery_equiv_factor: f64,
    /// Proportional state-of-charge feedback on the equivalence factor:
    /// `s(q) = s₀ − k·(q − q_target)` (adaptive ECMS). Keeps the learned
    /// policy charge-sustaining around `soc_target`.
    pub soc_feedback_gain: f64,
    /// Target state of charge for the feedback term.
    pub soc_target: f64,
    /// Fuel energy density used by the equivalence term, J/g.
    pub fuel_lhv_j_per_g: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            aux_weight: 0.4,
            dt_s: 1.0,
            soc_barrier_weight: 2.0,
            soc_margin: 0.03,
            soc_window: (0.40, 0.80),
            // ≈ 1 / (fuel→battery path efficiency of this powertrain).
            battery_equiv_factor: 3.6,
            soc_feedback_gain: 30.0,
            soc_target: 0.60,
            fuel_lhv_j_per_g: hev_model::FUEL_LHV_J_PER_G,
        }
    }
}

impl RewardConfig {
    /// The shaped reward used for learning and inner optimization: the
    /// paper's reward plus the battery equivalent-consumption term and
    /// the soft window barrier.
    pub fn reward(&self, outcome: &StepOutcome) -> f64 {
        let s = (self.battery_equiv_factor
            - self.soc_feedback_gain * (outcome.soc_after - self.soc_target))
            .max(0.0);
        let equiv = s * outcome.battery_power_w / self.fuel_lhv_j_per_g;
        // `fuel_g` is already integrated over the step (and carries the
        // engine-restart penalty); only the rate-like terms scale by ΔT.
        -outcome.fuel_g + (-equiv + self.aux_weight * outcome.aux_utility) * self.dt_s
            - self.soc_barrier(outcome.soc_after) * self.dt_s
    }

    /// The paper's reward without shaping (used for reporting Table 2,
    /// which accumulates exactly `(−ṁ_f + w·f_aux)·ΔT`).
    pub fn paper_reward(&self, outcome: &StepOutcome) -> f64 {
        -outcome.fuel_g + self.aux_weight * outcome.aux_utility * self.dt_s
    }

    fn soc_barrier(&self, soc: f64) -> f64 {
        // hevlint::allow(float::eq, exact sentinel: a configured weight of literal 0.0 disables the barrier term; no arithmetic feeds this value)
        if self.soc_barrier_weight == 0.0 {
            return 0.0;
        }
        let (lo, hi) = self.soc_window;
        let below = (lo + self.soc_margin - soc).max(0.0);
        let above = (soc - (hi - self.soc_margin)).max(0.0);
        self.soc_barrier_weight * (below + above) / self.soc_margin.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::OperatingMode;

    fn outcome(fuel_rate: f64, utility: f64, soc: f64) -> StepOutcome {
        StepOutcome {
            mode: OperatingMode::IceOnly,
            fuel_rate_g_per_s: fuel_rate,
            fuel_g: fuel_rate,
            engine_started: false,
            ice_torque_nm: 0.0,
            ice_speed_rad_s: 0.0,
            em_torque_nm: 0.0,
            em_speed_rad_s: 0.0,
            battery_current_a: 0.0,
            battery_power_w: 0.0,
            p_aux_w: 600.0,
            aux_utility: utility,
            friction_brake_torque_nm: 0.0,
            soc_before: soc,
            soc_after: soc,
        }
    }

    #[test]
    fn reward_matches_paper_formula_mid_window() {
        let cfg = RewardConfig {
            aux_weight: 0.5,
            ..Default::default()
        };
        let o = outcome(0.8, 1.0, 0.6);
        let r = cfg.reward(&o);
        assert!((r - (-0.8 + 0.5)).abs() < 1e-12);
        assert_eq!(r, cfg.paper_reward(&o));
    }

    #[test]
    fn fuel_consumption_is_penalized() {
        let cfg = RewardConfig::default();
        assert!(cfg.reward(&outcome(2.0, 0.0, 0.6)) < cfg.reward(&outcome(0.5, 0.0, 0.6)));
    }

    #[test]
    fn utility_is_rewarded() {
        let cfg = RewardConfig::default();
        assert!(cfg.reward(&outcome(1.0, 1.0, 0.6)) > cfg.reward(&outcome(1.0, -1.0, 0.6)));
    }

    #[test]
    fn soc_barrier_fires_near_edges_only() {
        let cfg = RewardConfig::default();
        let mid = cfg.reward(&outcome(0.0, 0.0, 0.60));
        let low = cfg.reward(&outcome(0.0, 0.0, 0.405));
        let high = cfg.reward(&outcome(0.0, 0.0, 0.795));
        assert_eq!(mid, 0.0);
        assert!(low < 0.0);
        assert!(high < 0.0);
    }

    #[test]
    fn barrier_disabled_when_weight_zero() {
        let cfg = RewardConfig {
            soc_barrier_weight: 0.0,
            ..Default::default()
        };
        assert_eq!(cfg.reward(&outcome(0.0, 0.0, 0.401)), 0.0);
    }

    #[test]
    fn dt_scales_utility_but_not_integrated_fuel() {
        let cfg = RewardConfig {
            dt_s: 2.0,
            aux_weight: 0.4,
            ..Default::default()
        };
        // fuel_g is already per-step; the utility term is a rate × ΔT.
        let o = outcome(1.0, 0.5, 0.6);
        assert!((cfg.reward(&o) - (-1.0 + 0.4 * 0.5 * 2.0)).abs() < 1e-12);
    }

    #[test]
    fn restart_penalty_reaches_the_reward() {
        let cfg = RewardConfig::default();
        let mut started = outcome(0.5, 0.0, 0.6);
        started.fuel_g += 0.25;
        started.engine_started = true;
        assert!(cfg.reward(&started) < cfg.reward(&outcome(0.5, 0.0, 0.6)));
    }
}
