//! The RL state space `s = [p_dem, v, q, pre]` (paper Eq. 13–14).

use hev_rl::{ProductSpace, UniformGrid};
use serde::{Deserialize, Serialize};

/// Configuration of the discretized state space.
///
/// Each dimension is a uniform level grid; the prediction dimension is
/// optional — disabling it reproduces the "without prediction" RL
/// controller the paper compares against in Figure 2 (and the ICCAD'14
/// baseline's state definition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpaceConfig {
    /// Levels of the propulsion power demand `p_dem`, W.
    pub power_demand: UniformGrid,
    /// Levels of the vehicle speed `v`, m/s.
    pub speed: UniformGrid,
    /// Levels of the battery charge `q` (state of charge fraction).
    pub charge: UniformGrid,
    /// Levels of the predicted future power demand `pre`, W; `None`
    /// removes the prediction dimension.
    pub prediction: Option<UniformGrid>,
}

impl StateSpaceConfig {
    /// The default joint-control state space (with prediction).
    ///
    /// The power-demand dimension is the critical one: it directly
    /// selects the power split, so it gets the finest grid (≈ 4 kW per
    /// level). Coarser grids alias dissimilar demands into one state and
    /// measurably cost fuel (see the state-granularity note in
    /// EXPERIMENTS.md).
    pub fn with_prediction() -> Self {
        Self {
            power_demand: UniformGrid::new(-40_000.0, 60_000.0, 24),
            speed: UniformGrid::new(0.0, 40.0, 10),
            charge: UniformGrid::new(0.40, 0.80, 8),
            prediction: Some(UniformGrid::new(-20_000.0, 40_000.0, 5)),
        }
    }

    /// The same state space without the prediction dimension.
    pub fn without_prediction() -> Self {
        Self {
            prediction: None,
            ..Self::with_prediction()
        }
    }
}

impl Default for StateSpaceConfig {
    fn default() -> Self {
        Self::with_prediction()
    }
}

/// One continuous observation to be quantized into a state index.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateSample {
    /// Propulsion power demand, W.
    pub power_demand_w: f64,
    /// Vehicle speed, m/s.
    pub speed_mps: f64,
    /// Battery state of charge (fraction).
    pub soc: f64,
    /// Predicted future power demand, W (ignored when the space has no
    /// prediction dimension).
    pub prediction_w: f64,
}

/// The discretized state space: quantizes [`StateSample`]s into flat
/// indices for the Q-table.
///
/// # Examples
///
/// ```
/// use hev_control::{StateSample, StateSpace, StateSpaceConfig};
///
/// let space = StateSpace::new(StateSpaceConfig::with_prediction());
/// let s = space.encode(&StateSample {
///     power_demand_w: 5_000.0,
///     speed_mps: 12.0,
///     soc: 0.62,
///     prediction_w: 4_000.0,
/// });
/// assert!(s < space.n_states());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateSpace {
    config: StateSpaceConfig,
    product: ProductSpace,
}

impl StateSpace {
    /// Builds the space from its configuration.
    pub fn new(config: StateSpaceConfig) -> Self {
        let mut dims = vec![
            config.power_demand.len(),
            config.speed.len(),
            config.charge.len(),
        ];
        if let Some(pre) = &config.prediction {
            dims.push(pre.len());
        }
        Self {
            product: ProductSpace::new(dims),
            config,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StateSpaceConfig {
        &self.config
    }

    /// Whether the space includes the prediction dimension.
    pub fn has_prediction(&self) -> bool {
        self.config.prediction.is_some()
    }

    /// Total number of states.
    pub fn n_states(&self) -> usize {
        self.product.len()
    }

    /// Quantizes a sample into a flat state index.
    pub fn encode(&self, sample: &StateSample) -> usize {
        let mut idx = vec![
            self.config.power_demand.index(sample.power_demand_w),
            self.config.speed.index(sample.speed_mps),
            self.config.charge.index(sample.soc),
        ];
        if let Some(pre) = &self.config.prediction {
            idx.push(pre.index(sample.prediction_w));
        }
        self.product.flatten(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StateSample {
        StateSample {
            power_demand_w: 0.0,
            speed_mps: 10.0,
            soc: 0.6,
            prediction_w: 0.0,
        }
    }

    #[test]
    fn with_prediction_has_more_states() {
        let with = StateSpace::new(StateSpaceConfig::with_prediction());
        let without = StateSpace::new(StateSpaceConfig::without_prediction());
        assert!(with.n_states() > without.n_states());
        assert_eq!(with.n_states(), without.n_states() * 5);
        assert!(with.has_prediction());
        assert!(!without.has_prediction());
    }

    #[test]
    fn encode_is_within_bounds_for_extremes() {
        let space = StateSpace::new(StateSpaceConfig::with_prediction());
        for pd in [-1e9, 0.0, 1e9] {
            for v in [-5.0, 0.0, 500.0] {
                for q in [0.0, 0.6, 1.0] {
                    for pre in [-1e9, 0.0, 1e9] {
                        let s = space.encode(&StateSample {
                            power_demand_w: pd,
                            speed_mps: v,
                            soc: q,
                            prediction_w: pre,
                        });
                        assert!(s < space.n_states());
                    }
                }
            }
        }
    }

    #[test]
    fn nearby_samples_share_state() {
        let space = StateSpace::new(StateSpaceConfig::default());
        let a = space.encode(&sample());
        let mut s2 = sample();
        s2.speed_mps += 0.01;
        assert_eq!(a, space.encode(&s2));
    }

    #[test]
    fn distinct_levels_produce_distinct_states() {
        let space = StateSpace::new(StateSpaceConfig::default());
        let a = space.encode(&sample());
        let mut s2 = sample();
        s2.soc = 0.79;
        assert_ne!(a, space.encode(&s2));
    }

    #[test]
    fn prediction_changes_state_only_when_enabled() {
        let with = StateSpace::new(StateSpaceConfig::with_prediction());
        let without = StateSpace::new(StateSpaceConfig::without_prediction());
        let mut s2 = sample();
        s2.prediction_w = 30_000.0;
        assert_ne!(with.encode(&sample()), with.encode(&s2));
        assert_eq!(without.encode(&sample()), without.encode(&s2));
    }
}
