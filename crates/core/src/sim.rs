//! The episodic simulation harness (the paper's backward-looking control
//! flow, §2.2).

use crate::fault::FaultPlan;
use crate::metrics::{DegradationReport, EpisodeMetrics};
use crate::plan::CyclePlan;
use crate::reward::RewardConfig;
use crate::telemetry::{DecisionInfo, EpisodeTelemetry, PolicyTelemetry};
use drive_cycle::DriveCycle;
use hev_model::{ContextTable, ControlInput, ParallelHev, StepContext, StepOutcome, WheelDemand};
use hev_trace::StepEvent;

/// A typed controller-internal failure while producing a control.
///
/// Controllers record these instead of panicking mid-episode (they used
/// to be `expect`s); the supervisor collects them via
/// [`HevPolicy::take_control_error`] and counts them in the episode's
/// [`DegradationReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlError {
    /// A full-space action decoded without a gear command.
    MissingGear {
        /// The offending action index.
        action: usize,
    },
    /// A full-space action decoded without an auxiliary-power command.
    MissingAux {
        /// The offending action index.
        action: usize,
    },
    /// A decided control carried a non-finite field.
    NonFinite {
        /// Which field was non-finite.
        field: &'static str,
    },
}

impl std::fmt::Display for ControlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingGear { action } => {
                write!(f, "full-space action {action} decoded without a gear")
            }
            Self::MissingAux { action } => {
                write!(f, "full-space action {action} decoded without an aux power")
            }
            Self::NonFinite { field } => write!(f, "control field {field} is non-finite"),
        }
    }
}

impl std::error::Error for ControlError {}

/// What a controller observes before deciding (§4.3.1: all quantities are
/// available from online measurement; the charge via Coulomb counting).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation<'a> {
    /// Step index within the cycle.
    pub step: usize,
    /// Time since cycle start, s.
    pub time_s: f64,
    /// Wheel-level demand (from the driver's pedals).
    pub demand: &'a WheelDemand,
    /// Battery state of charge.
    pub soc: f64,
    /// Precomputed step context for this demand (stage 1 of the staged
    /// evaluation pipeline). Controllers that peek many candidate controls
    /// evaluate them against this via [`ParallelHev::peek_with_context`]
    /// instead of re-deriving the gear kinematics per peek.
    pub ctx: &'a StepContext,
}

/// A supervisory HEV controller: decides the control input each step and
/// receives feedback on the realized outcome (learning controllers update
/// themselves in `feedback`).
pub trait HevPolicy {
    /// Called once before each episode.
    fn begin_episode(&mut self) {}

    /// Chooses the control input for the observed state.
    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput;

    /// Receives the realized outcome and reward of the decided step.
    fn feedback(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        outcome: &StepOutcome,
        reward: f64,
    ) {
        let _ = (hev, obs, outcome, reward);
    }

    /// Called once after each episode.
    fn end_episode(&mut self) {}

    /// Takes (and clears) the most recent [`ControlError`] the controller
    /// recorded while deciding, if any. Default: controllers report none.
    fn take_control_error(&mut self) -> Option<ControlError> {
        None
    }

    /// The supervisor-intervention report accumulated over the current
    /// episode, if this policy tracks one (see
    /// `hev_control::supervisor::SupervisedPolicy`). The simulation loop
    /// attaches it to [`EpisodeMetrics::degradation`] at episode end.
    fn degradation(&self) -> Option<DegradationReport> {
        None
    }

    /// Enables or disables per-decision telemetry recording. Policies
    /// that support it expose each decision via
    /// [`HevPolicy::last_decision`] while enabled; the default ignores
    /// the request, so un-instrumented policies pay nothing.
    fn set_record_decisions(&mut self, on: bool) {
        let _ = on;
    }

    /// The most recent decision's telemetry, when recording is enabled
    /// and the last `decide` chose an action from the policy's own
    /// action space (`None` on fallback paths and for policies that
    /// don't record).
    fn last_decision(&self) -> Option<DecisionInfo> {
        None
    }

    /// The policy's learning-progress snapshot (exploration rate,
    /// TD-error statistics, Q-table occupancy), when recording is
    /// enabled and the policy tracks one.
    fn telemetry_snapshot(&self) -> Option<PolicyTelemetry> {
        None
    }
}

/// Searches for any feasible control for the current demand: a coarse
/// ladder first (preferring currents near zero), then a fine current scan
/// over every gear, with the preferred and then the minimum auxiliary
/// power.
pub fn feasible_control(hev: &ParallelHev, demand: &WheelDemand, dt: f64) -> Option<ControlInput> {
    let (aux_min, _) = hev.aux().power_range();
    // One step context serves the whole scan (each `peek` used to rebuild
    // it); verdicts and evaluation counts are unchanged — the staged
    // pipeline's contract makes `peek_with_context` replay `peek` exactly.
    let ctx = hev.step_context(demand);
    let coarse = [
        0.0, -4.0, 4.0, -8.0, 8.0, -15.0, 15.0, 25.0, -25.0, 50.0, 100.0,
    ];
    for aux in [hev.aux().preferred_power(), aux_min] {
        for &i in &coarse {
            for gear in 0..hev.drivetrain().num_gears() {
                let c = ControlInput {
                    battery_current_a: i,
                    gear,
                    p_aux_w: aux,
                };
                if hev.peek_with_context(&ctx, &c, dt).is_ok() {
                    return Some(c);
                }
            }
        }
        // Fine scan: high-demand points can have narrow feasible current
        // bands (engine near wide-open throttle plus a machine near its
        // torque limit).
        let mut i = -80.0;
        while i <= 120.0 {
            for gear in 0..hev.drivetrain().num_gears() {
                let c = ControlInput {
                    battery_current_a: i,
                    gear,
                    p_aux_w: aux,
                };
                if hev.peek_with_context(&ctx, &c, dt).is_ok() {
                    return Some(c);
                }
            }
            i += 4.0;
        }
    }
    None
}

/// A last-resort control for the current demand: [`feasible_control`],
/// falling back to a zero-current 1st-gear request when even the fine
/// scan fails (the simulation harness then clips the demand — a "trace
/// miss", as backward-looking simulators such as ADVISOR report).
pub fn fallback_control(hev: &ParallelHev, demand: &WheelDemand, dt: f64) -> ControlInput {
    feasible_control(hev, demand, dt).unwrap_or(ControlInput {
        battery_current_a: 0.0,
        gear: 0,
        p_aux_w: hev.aux().preferred_power(),
    })
}

/// Scales a wheel demand's torque/force/power by `factor`, keeping the
/// kinematics (speed, wheel speed) intact — used for trace-miss clipping.
fn scale_demand(demand: &WheelDemand, factor: f64) -> WheelDemand {
    WheelDemand {
        tractive_force_n: demand.tractive_force_n * factor,
        wheel_torque_nm: demand.wheel_torque_nm * factor,
        power_demand_w: demand.power_demand_w * factor,
        ..*demand
    }
}

/// Simulates one driving cycle under a controller, returning the episode
/// metrics. The vehicle's battery state carries across steps; callers
/// reset it between episodes if desired.
///
/// Infeasible controller decisions are replaced by [`fallback_control`]
/// and counted in [`EpisodeMetrics::fallback_steps`].
pub fn simulate(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
) -> EpisodeMetrics {
    simulate_with_faults(hev, cycle, controller, reward, None)
}

/// [`simulate`] with an optional fault-injection plan.
///
/// With `faults: None` this *is* `simulate` — no variate is drawn and
/// every step is bit-identical to the unfaulted harness. With a plan,
/// each step first applies the active motor derating (before the step
/// context is built, so the per-gear torque tables see the derated
/// envelope), then perturbs the *observation* handed to the controller
/// (SOC noise/drift, speed-measurement noise) while the plant steps on
/// the truth, and finally adds any active auxiliary-load disturbance to
/// the decided control (clamped to the auxiliary unit's range). Plant
/// degradation (capacity fade) is applied separately, once per vehicle,
/// via [`FaultPlan::degrade_plant`].
pub fn simulate_with_faults(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
    faults: Option<&mut FaultPlan>,
) -> EpisodeMetrics {
    simulate_instrumented(hev, cycle, controller, reward, faults, None)
}

/// [`simulate_with_faults`] with an optional telemetry collector.
///
/// With `telemetry: None` this *is* `simulate_with_faults`: no decision
/// recording is switched on, no step events are built, and the episode
/// is bit-identical to (and as cheap as) the un-instrumented harness.
/// With a collector, each step is offered to the trace sampler and the
/// flight ring, and the flight ring is dumped into the trace stream the
/// first time a step degrades — a non-finite control reaches the plant
/// or the supervisor's rejection count grows (see
/// [`EpisodeTelemetry::note_step_health`]).
pub fn simulate_instrumented(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
    faults: Option<&mut FaultPlan>,
    telemetry: Option<&mut EpisodeTelemetry>,
) -> EpisodeMetrics {
    simulate_core(hev, cycle, None, controller, reward, faults, telemetry)
}

/// [`simulate`] against a precomputed [`CyclePlan`]: bit-identical to the
/// per-step path, but the per-step demand and context precompute comes
/// from the plan's shared table, so a steady-state episode records zero
/// `ctx_rebuilds`.
pub fn simulate_planned(
    hev: &mut ParallelHev,
    plan: &CyclePlan,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
) -> EpisodeMetrics {
    simulate_planned_instrumented(hev, plan, controller, reward, None, None)
}

/// [`simulate_instrumented`] against a precomputed [`CyclePlan`].
///
/// Fault-injected steps whose motor derate is active bypass the table
/// for exactly those steps (the derated envelope changes the per-gear
/// torque tables) and rebuild locally — counted, because those rebuilds
/// are real; every healthy step reads the shared table and records
/// nothing.
pub fn simulate_planned_instrumented(
    hev: &mut ParallelHev,
    plan: &CyclePlan,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
    faults: Option<&mut FaultPlan>,
    telemetry: Option<&mut EpisodeTelemetry>,
) -> EpisodeMetrics {
    simulate_core(
        hev,
        plan.cycle(),
        Some(plan.table()),
        controller,
        reward,
        faults,
        telemetry,
    )
}

/// Everything a decided step consumes besides the vehicle, the
/// controller, and the observation: the *true* (unfaulted) demand the
/// plant steps on, and the kinematic scalars of the cycle point.
pub(crate) struct StepEnv<'a> {
    /// True wheel demand (the observation may carry a noisy copy).
    pub(crate) true_demand: &'a WheelDemand,
    /// The cycle point's speed, m/s (for the distance integral).
    pub(crate) point_speed_mps: f64,
    /// Step length, s.
    pub(crate) dt: f64,
}

/// The mutable sinks of a decided step: the fault plan's read-only
/// disturbance channel, the reward model, the episode tally, and the
/// optional telemetry collector.
pub(crate) struct StepIo<'a> {
    pub(crate) faults: Option<&'a FaultPlan>,
    pub(crate) reward: &'a RewardConfig,
    pub(crate) metrics: &'a mut EpisodeMetrics,
    pub(crate) telemetry: Option<&'a mut EpisodeTelemetry>,
}

/// One decided step: asks the controller, applies any auxiliary-load
/// disturbance, steps the plant (falling back on infeasibility), scores
/// the outcome, and records metrics/telemetry/feedback. Shared verbatim
/// by the sequential loop and the lockstep episode wave so both are
/// bit-identical by construction.
pub(crate) fn decided_step(
    hev: &mut ParallelHev,
    controller: &mut dyn HevPolicy,
    obs: &Observation<'_>,
    env: &StepEnv<'_>,
    io: &mut StepIo<'_>,
) {
    let _span = hev_trace::span::enter("control.step");
    let mut control = controller.decide(hev, obs);
    if let Some(plan) = io.faults {
        let extra_w = plan.aux_disturbance_at(obs.time_s);
        if extra_w > 0.0 {
            let (_, aux_max) = hev.aux().power_range();
            control.p_aux_w = (control.p_aux_w + extra_w).min(aux_max);
        }
    }
    let (outcome, was_fallback) = match hev.step_with_context(obs.ctx, &control, env.dt) {
        Ok(o) => (o, false),
        Err(_) => (
            step_with_fallback(hev, env.true_demand, env.dt, io.metrics),
            true,
        ),
    };
    let r = io.reward.reward(&outcome);
    io.metrics.record(
        &outcome,
        io.reward.paper_reward(&outcome),
        env.point_speed_mps * env.dt,
        was_fallback,
    );
    if let Some(t) = io.telemetry.as_deref_mut() {
        let info = controller.last_decision();
        t.record_step(&StepEvent {
            episode: t.episode(),
            kind: t.kind(),
            step: obs.step as u64,
            time_s: obs.time_s,
            p_dem_w: obs.demand.power_demand_w,
            speed_mps: obs.demand.speed_mps,
            soc: obs.soc,
            prediction_w: info.map_or(0.0, |i| i.prediction_w),
            state: info.map(|i| i.state as u64),
            feasible: info.map(|i| i.feasible as u64),
            action: info.map(|i| i.action as u64),
            current_a: control.battery_current_a,
            gear: control.gear as u64,
            p_aux_w: control.p_aux_w,
            reward: r,
            fuel_g: outcome.fuel_g,
            aux_term: io.reward.aux_weight * outcome.aux_utility * io.reward.dt_s,
            soc_after: outcome.soc_after,
            fallback: was_fallback,
        });
        let control_finite = control.battery_current_a.is_finite() && control.p_aux_w.is_finite();
        let rejections = controller.degradation().map_or(0, |d| d.rejections());
        t.note_step_health(obs.step as u64, control_finite, rejections);
    }
    controller.feedback(hev, obs, &outcome, r);
}

/// The one simulation loop behind every public entry point. With
/// `table: None` each step derives its demand and rebuilds its context;
/// with a table both come precomputed, and a local (counted) rebuild
/// happens only on steps whose motor derate is active.
fn simulate_core(
    hev: &mut ParallelHev,
    cycle: &DriveCycle,
    table: Option<&ContextTable>,
    controller: &mut dyn HevPolicy,
    reward: &RewardConfig,
    mut faults: Option<&mut FaultPlan>,
    mut telemetry: Option<&mut EpisodeTelemetry>,
) -> EpisodeMetrics {
    let dt = cycle.dt();
    let mut metrics = EpisodeMetrics::new(hev.soc());
    // One step context per step, its gear table reused across the whole
    // episode: the controller's mask/argmax/act evaluations and the final
    // apply all complete against the same precomputed kinematics. When a
    // cycle table is supplied this scratch serves only derated steps.
    let mut ctx = StepContext::default();
    if let Some(plan) = faults.as_deref_mut() {
        plan.begin_episode(cycle.duration_s());
    }
    if let Some(t) = telemetry.as_deref_mut() {
        controller.set_record_decisions(true);
        t.begin_episode();
    }
    controller.begin_episode();
    for (step, point) in cycle.points().enumerate() {
        let mut derate = 1.0;
        if let Some(plan) = faults.as_deref() {
            derate = plan.motor_derate_at(point.time_s);
            hev.set_motor_derate(derate);
        }
        let owned_demand;
        let demand: &WheelDemand = match table {
            Some(tab) => tab.demand(step),
            None => {
                owned_demand = hev.demand(point.speed_mps, point.accel_mps2, point.grade);
                &owned_demand
            }
        };
        let ctx_ref: &StepContext = match table {
            // The table was built healthy; a derated motor envelope
            // changes the per-gear torque tables, so those steps rebuild
            // locally (and are counted — the rebuild is real).
            // hevlint::allow(float::eq, exact sentinel: motor_derate_at returns literal 1.0 outside the fault window; the value is configuration, not an arithmetic result)
            Some(tab) if derate == 1.0 => tab.context(step),
            _ => {
                hev.rebuild_context(&mut ctx, demand);
                &ctx
            }
        };
        let (observed_soc, observed_demand) = match faults.as_deref_mut() {
            Some(plan) => plan.sensor(point.time_s, hev.soc(), demand),
            None => (hev.soc(), *demand),
        };
        let obs = Observation {
            step,
            time_s: point.time_s,
            demand: &observed_demand,
            soc: observed_soc,
            ctx: ctx_ref,
        };
        let env = StepEnv {
            true_demand: demand,
            point_speed_mps: point.speed_mps,
            dt,
        };
        let mut io = StepIo {
            faults: faults.as_deref(),
            reward,
            metrics: &mut metrics,
            telemetry: telemetry.as_deref_mut(),
        };
        decided_step(hev, controller, &obs, &env, &mut io);
    }
    if faults.is_some() {
        // Leave the vehicle healthy for the next (differently-windowed)
        // episode; begin_episode re-applies the next window.
        hev.set_motor_derate(1.0);
    }
    controller.end_episode();
    metrics.degradation = controller.degradation();
    if let Some(t) = telemetry {
        t.end_episode(&metrics, reward, controller.telemetry_snapshot());
        controller.set_record_decisions(false);
    }
    metrics
}

/// Applies the best feasible control, clipping the demand when the
/// powertrain cannot deliver it at all (trace miss).
fn step_with_fallback(
    hev: &mut ParallelHev,
    demand: &WheelDemand,
    dt: f64,
    metrics: &mut EpisodeMetrics,
) -> StepOutcome {
    // The control was verified feasible, so `step` succeeds; on the
    // impossible failure we fall through to the clipping loop instead of
    // panicking the episode.
    if let Some(c) = feasible_control(hev, demand, dt) {
        if let Ok(outcome) = hev.step(demand, &c, dt) {
            return outcome;
        }
    }
    // Trace miss: the demand exceeds the powertrain's capability; deliver
    // as much as possible (ADVISOR reports the same condition).
    metrics.trace_miss_steps += 1;
    let mut factor = 0.9;
    for _ in 0..60 {
        let clipped = scale_demand(demand, factor);
        if let Some(c) = feasible_control(hev, &clipped, dt) {
            if let Ok(outcome) = hev.step(&clipped, &c, dt) {
                return outcome;
            }
        }
        factor *= 0.9;
    }
    // Park the vehicle for one step: a zero demand with the idle-load
    // control is the most conservative request the plant accepts. With a
    // hostile (but finite) demand even 0.9^60 clipping can fail, and an
    // episode must never panic the process — serving quarantine depends
    // on library code staying total.
    let parked = ControlInput {
        battery_current_a: 0.0,
        gear: 0,
        p_aux_w: hev.aux().preferred_power(),
    };
    if let Ok(outcome) = hev.step(&WheelDemand::default(), &parked, dt) {
        return outcome;
    }
    // Even parking failed (e.g. the battery window rejects the idle
    // load): freeze the plant for this step and report an all-zero
    // stopped outcome. The step still counts as a trace miss above.
    StepOutcome {
        mode: hev_model::OperatingMode::Stopped,
        fuel_rate_g_per_s: 0.0,
        fuel_g: 0.0,
        engine_started: false,
        ice_torque_nm: 0.0,
        ice_speed_rad_s: 0.0,
        em_torque_nm: 0.0,
        em_speed_rad_s: 0.0,
        battery_current_a: 0.0,
        battery_power_w: 0.0,
        p_aux_w: 0.0,
        aux_utility: 0.0,
        friction_brake_torque_nm: 0.0,
        soc_before: hev.soc(),
        soc_after: hev.soc(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn short_cycle() -> DriveCycle {
        ProfileBuilder::new("short")
            .idle(3.0)
            .trip(40.0, 10.0, 15.0, 8.0, 4.0)
            .build()
            .unwrap()
    }

    /// A controller that always asks for something infeasible, to
    /// exercise the fallback path.
    struct Broken;

    impl HevPolicy for Broken {
        fn decide(&mut self, _hev: &ParallelHev, _obs: &Observation<'_>) -> ControlInput {
            ControlInput {
                battery_current_a: 1e6,
                gear: 99,
                p_aux_w: -5.0,
            }
        }
    }

    /// A controller that lets the fallback drive (decides something
    /// reasonable).
    struct Passive;

    impl HevPolicy for Passive {
        fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
            fallback_control(hev, obs.demand, 1.0)
        }
    }

    #[test]
    fn fallback_covers_whole_cycle() {
        let mut hev = hev();
        let m = simulate(
            &mut hev,
            &short_cycle(),
            &mut Broken,
            &RewardConfig::default(),
        );
        assert_eq!(m.steps, short_cycle().len());
        assert_eq!(m.fallback_steps, m.steps);
        assert!(m.fuel_g >= 0.0);
    }

    #[test]
    fn passive_controller_completes_without_fallback() {
        let mut hev = hev();
        let m = simulate(
            &mut hev,
            &short_cycle(),
            &mut Passive,
            &RewardConfig::default(),
        );
        assert_eq!(m.fallback_steps, 0);
        assert!(m.distance_m > 100.0);
    }

    #[test]
    fn fallback_control_is_feasible_across_operating_points() {
        let hev = hev();
        for (v, a) in [
            (0.0, 0.0),
            (2.0, 0.8),
            (10.0, 1.0),
            (20.0, 0.0),
            (25.0, -2.0),
            (5.0, -1.0),
        ] {
            let d = hev.demand(v, a, 0.0);
            let c = fallback_control(&hev, &d, 1.0);
            assert!(hev.peek(&d, &c, 1.0).is_ok(), "v={v} a={a}");
        }
    }

    #[test]
    fn impossible_demand_clips_as_trace_miss() {
        // 2 m/s² at 108+ km/h needs ≈ 100 kW at the wheels — beyond the
        // powertrain's ≈ 80 kW total: no control exists and the harness
        // must clip the demand, not panic.
        let mut hev = hev();
        let speeds: Vec<f64> = (0..6).map(|i| 30.0 + 2.0 * i as f64).collect();
        let c = DriveCycle::from_speeds_mps("impossible", 1.0, speeds).unwrap();
        let m = simulate(&mut hev, &c, &mut Passive, &RewardConfig::default());
        assert_eq!(m.steps, c.len());
        assert!(m.trace_miss_steps > 0, "expected trace misses");
        assert!((0.40..=0.80).contains(&m.soc_final));
    }

    #[test]
    fn hostile_finite_demand_never_panics_the_fallback() {
        // A demand so large that even 0.9^60 clipping leaves it far
        // beyond the powertrain's envelope: the fallback must park the
        // vehicle and return a finite outcome, never panic — serving
        // sessions run episodes in library code where a panic would
        // trigger a quarantine.
        let mut hev = hev();
        let hostile = WheelDemand {
            speed_mps: 1e12,
            accel_mps2: 1e12,
            grade: 0.9,
            tractive_force_n: 1e15,
            wheel_torque_nm: 1e15,
            wheel_speed_rad_s: 1e12,
            power_demand_w: 1e18,
        };
        let mut m = EpisodeMetrics::new(hev.soc());
        let outcome = step_with_fallback(&mut hev, &hostile, 1.0, &mut m);
        assert_eq!(m.trace_miss_steps, 1);
        assert!(outcome.soc_after.is_finite());
        assert!(outcome.fuel_g.is_finite());
        assert!(hev.soc().is_finite());
    }

    #[test]
    fn metrics_track_soc_endpoints() {
        let mut hev = hev();
        let m = simulate(
            &mut hev,
            &short_cycle(),
            &mut Passive,
            &RewardConfig::default(),
        );
        assert_eq!(m.soc_initial, 0.6);
        assert_eq!(m.soc_final, hev.soc());
    }

    fn assert_metrics_bit_identical(a: &EpisodeMetrics, b: &EpisodeMetrics) {
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fallback_steps, b.fallback_steps);
        assert_eq!(a.trace_miss_steps, b.trace_miss_steps);
        assert_eq!(a.fuel_g.to_bits(), b.fuel_g.to_bits());
        assert_eq!(a.distance_m.to_bits(), b.distance_m.to_bits());
        assert_eq!(a.total_reward.to_bits(), b.total_reward.to_bits());
        assert_eq!(a.soc_final.to_bits(), b.soc_final.to_bits());
    }

    #[test]
    fn planned_episode_is_bit_identical_to_per_step_path() {
        let cycle = short_cycle();
        let mut unplanned_hev = hev();
        let baseline = simulate(
            &mut unplanned_hev,
            &cycle,
            &mut Passive,
            &RewardConfig::default(),
        );
        let mut planned_hev = hev();
        let plan = CyclePlan::new(&planned_hev, &cycle);
        let planned = simulate_planned(
            &mut planned_hev,
            &plan,
            &mut Passive,
            &RewardConfig::default(),
        );
        assert_metrics_bit_identical(&baseline, &planned);
        assert_eq!(
            planned_hev.soc().to_bits(),
            unplanned_hev.soc().to_bits(),
            "plant state must agree after the episode"
        );
    }

    #[test]
    fn planned_episode_skips_the_loop_rebuilds() {
        // `Passive` decides via `fallback_control`, whose scan builds one
        // (counted) step context per step in both paths; the per-step
        // loop's own rebuild is what the plan amortizes away. So the
        // planned episode must record exactly `len` fewer rebuilds.
        let cycle = short_cycle();
        let mut a = hev();
        let before = hev_trace::evals::ctx_rebuilds();
        simulate(&mut a, &cycle, &mut Passive, &RewardConfig::default());
        let unplanned = hev_trace::evals::ctx_rebuilds().wrapping_sub(before);
        let mut b = hev();
        let plan = CyclePlan::new(&b, &cycle);
        let before = hev_trace::evals::ctx_rebuilds();
        simulate_planned(&mut b, &plan, &mut Passive, &RewardConfig::default());
        let planned = hev_trace::evals::ctx_rebuilds().wrapping_sub(before);
        assert_eq!(planned, unplanned - cycle.len() as u64);
    }

    #[test]
    fn planned_faulted_episode_matches_per_step_path() {
        use crate::fault::FaultConfig;
        let cycle = short_cycle();
        let config = FaultConfig {
            soc_noise: 0.01,
            soc_drift_per_1000s: 0.02,
            speed_noise: 0.02,
            derate_factor: 0.6,
            derate_window_s: 5.0,
            aux_step_w: 300.0,
            aux_window_s: 4.0,
            capacity_fade: 0.0,
        };
        let mut unplanned_hev = hev();
        let mut faults = FaultPlan::new(config, 7);
        let baseline = simulate_with_faults(
            &mut unplanned_hev,
            &cycle,
            &mut Passive,
            &RewardConfig::default(),
            Some(&mut faults),
        );
        let mut planned_hev = hev();
        let plan = CyclePlan::new(&planned_hev, &cycle);
        let mut faults = FaultPlan::new(config, 7);
        let planned = simulate_planned_instrumented(
            &mut planned_hev,
            &plan,
            &mut Passive,
            &RewardConfig::default(),
            Some(&mut faults),
            None,
        );
        assert_metrics_bit_identical(&baseline, &planned);
    }

    #[test]
    fn simulation_preserves_step_count_and_distance() {
        let mut hev = hev();
        let cycle = short_cycle();
        let m = simulate(&mut hev, &cycle, &mut Passive, &RewardConfig::default());
        assert_eq!(m.steps, cycle.len());
        // Trapezoid vs rectangle integration differ slightly.
        assert!((m.distance_m - cycle.distance_m()).abs() / cycle.distance_m() < 0.05);
    }
}
