//! The proposed RL-based joint controller of powertrain and auxiliary
//! systems (paper §4).
//!
//! A TD(λ) agent observes the state `s = [p_dem, v, q, pre]` and selects
//! a battery current from the reduced action space (or a complete
//! `(i, R(k), p_aux)` tuple from the full space). Under the reduced space
//! the per-step [`InnerOptimizer`] picks the gear and auxiliary power
//! that maximize the instantaneous reward — making the agent *partially
//! model-free* exactly as §4.3.2 describes.

use crate::action::ActionSpace;
use crate::inner_opt::{
    fill_mask_wave, InnerOptimizer, ResolveScratch, ResolvedAction, WaveMaskLane,
};
use crate::metrics::EpisodeMetrics;
use crate::plan::CyclePlan;
use crate::reward::RewardConfig;
use crate::sim::{
    fallback_control, simulate, simulate_instrumented, simulate_planned,
    simulate_planned_instrumented, ControlError, HevPolicy, Observation,
};
use crate::state::{StateSample, StateSpace, StateSpaceConfig};
use crate::telemetry::{DecisionInfo, EpisodeTelemetry, PolicyTelemetry};
use crate::wave::WaveStep;
use drive_cycle::DriveCycle;
use hev_model::{CandidateBatch, ControlInput, CurrentContextCache, ParallelHev, StepOutcome};
use hev_predict::{Ewma, Predictor};
use hev_rl::{DecayingEpsilon, ExplorationPolicy, QStats, TdLambda, TdLambdaConfig, TdStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the joint controller.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointControllerConfig {
    /// State-space discretization.
    pub state: StateSpaceConfig,
    /// Action space (reduced recommended).
    pub action: ActionSpace,
    /// TD(λ) hyper-parameters.
    pub td: TdLambdaConfig,
    /// Reward definition.
    pub reward: RewardConfig,
    /// Initial exploration rate ε₀.
    pub epsilon0: f64,
    /// Multiplicative ε decay per episode.
    pub epsilon_decay: f64,
    /// Exploration floor.
    pub epsilon_floor: f64,
    /// Inner optimizer for the reduced action space.
    pub inner: InnerOptimizer,
    /// Learning rate of the EWMA demand predictor (Eq. 12). Ignored when
    /// the state space has no prediction dimension.
    pub predictor_alpha: f64,
    /// Initial state of charge each training/evaluation episode starts
    /// from.
    pub initial_soc: f64,
    /// RNG seed (exploration).
    pub seed: u64,
}

impl JointControllerConfig {
    /// The paper's proposed configuration: prediction-augmented state,
    /// reduced action space, jointly optimized auxiliary power.
    pub fn proposed() -> Self {
        Self {
            state: StateSpaceConfig::with_prediction(),
            action: ActionSpace::reduced(),
            // A small learning rate matters: per-state returns are noisy
            // under state aliasing, and α = 0.05 averages them out.
            td: TdLambdaConfig {
                alpha: 0.05,
                ..TdLambdaConfig::default()
            },
            reward: RewardConfig::default(),
            epsilon0: 0.30,
            epsilon_decay: 0.985,
            epsilon_floor: 0.01,
            inner: InnerOptimizer::default(),
            predictor_alpha: 0.30,
            initial_soc: 0.60,
            seed: 2015,
        }
    }

    /// The proposed controller *without* the prediction dimension
    /// (Figure 2's comparison).
    pub fn without_prediction() -> Self {
        Self {
            state: StateSpaceConfig::without_prediction(),
            ..Self::proposed()
        }
    }

    /// The powertrain-only RL baseline in the style of ICCAD'14 \[13\]: no
    /// prediction, auxiliary power pinned at the preferred level, reduced
    /// action space.
    pub fn powertrain_only(fixed_aux_w: f64) -> Self {
        Self {
            state: StateSpaceConfig::without_prediction(),
            inner: InnerOptimizer::with_fixed_aux(fixed_aux_w),
            ..Self::proposed()
        }
    }

    /// The proposed controller over the full (non-reduced) action space
    /// of Eq. 15, for the action-space ablation.
    pub fn full_action_space(num_gears: usize, aux_levels: Vec<f64>) -> Self {
        Self {
            action: ActionSpace::full(num_gears, aux_levels),
            ..Self::proposed()
        }
    }
}

impl Default for JointControllerConfig {
    fn default() -> Self {
        Self::proposed()
    }
}

/// The RL-based joint HEV controller, generic over the driving-profile
/// predictor (default: the paper's exponential weighting function).
///
/// # Examples
///
/// ```no_run
/// use drive_cycle::StandardCycle;
/// use hev_control::{JointController, JointControllerConfig};
/// use hev_model::{HevParams, ParallelHev};
///
/// let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
/// let mut agent = JointController::new(JointControllerConfig::proposed());
/// let cycle = StandardCycle::Udds.cycle();
/// agent.train(&mut hev, &cycle, 100);
/// let metrics = agent.evaluate(&mut hev, &cycle);
/// println!("fuel {:.0} g, reward {:.1}", metrics.fuel_g, metrics.total_reward);
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone)]
pub struct JointController<P: Predictor = Ewma> {
    config: JointControllerConfig,
    state_space: StateSpace,
    learner: TdLambda,
    policy: DecayingEpsilon,
    predictor: P,
    rng: StdRng,
    training: bool,
    /// `(state, action, reward)` awaiting the next state's bootstrap.
    pending: Option<(usize, usize, f64)>,
    /// Set in `decide`, consumed in `feedback`.
    awaiting_reward: Option<(usize, usize)>,
    /// Reusable per-step buffers (not part of the learned state).
    scratch: StepScratch,
    /// The most recent action-decoding failure, taken (and cleared) by
    /// [`HevPolicy::take_control_error`]. A malformed full-space action
    /// degrades gracefully — masked infeasible / skipped / fallen back —
    /// instead of panicking mid-episode.
    last_error: Option<ControlError>,
    /// Whether per-decision telemetry recording is on
    /// ([`HevPolicy::set_record_decisions`]). Off by default: the
    /// recording branches below are then never taken, so un-instrumented
    /// runs are bit-identical to a build without telemetry. Deliberately
    /// *not* part of [`ControllerSnapshot`] — observability must never
    /// change the persisted learner schema.
    record_stats: bool,
    /// TD-error statistics for the current episode (only fed while
    /// `record_stats` is on).
    td_stats: TdStats,
    /// The latest decision's telemetry, for [`HevPolicy::last_decision`].
    last_decision: Option<DecisionInfo>,
}

/// Decodes a full-space action into a complete [`ControlInput`],
/// recording a typed [`ControlError`] in `slot` (and returning `None`)
/// when the decoded action is missing its gear or auxiliary-power
/// command.
fn decode_full_action(
    space: &ActionSpace,
    action: usize,
    slot: &mut Option<ControlError>,
) -> Option<ControlInput> {
    let c = space.decode(action);
    let Some(gear) = c.gear else {
        *slot = Some(ControlError::MissingGear { action });
        return None;
    };
    let Some(p_aux_w) = c.p_aux_w else {
        *slot = Some(ControlError::MissingAux { action });
        return None;
    };
    Some(ControlInput {
        battery_current_a: c.battery_current_a,
        gear,
        p_aux_w,
    })
}

/// Reusable per-step working memory: the feasibility mask and the
/// resolution cache. Reset at the top of each `decide`, so one allocation
/// serves the whole episode, and each action's inner optimization runs at
/// most once per step — masking, argmax, and acting share the entry.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    /// The current step's epoch; memo entries stamped with an older epoch
    /// are stale, which makes the per-step reset O(1) instead of a memset
    /// over the (large) memoized resolutions.
    epoch: u64,
    /// Per-action feasibility for the current step.
    mask: Vec<bool>,
    /// Per-action memoized inner-optimization result, valid only when its
    /// stamp equals `epoch`; the payload `None` means resolved infeasible.
    resolved: Vec<(u64, Option<ResolvedAction>)>,
    /// Candidate batch of the full action space's mask sweep, whose
    /// per-action outcomes the myopic argmax then reuses (the reduced
    /// space masks through the resolve scratch's batch instead).
    batch: CandidateBatch,
    /// Battery-context cache of the full-space mask sweep, valid for one
    /// step's battery state (cleared by each mask fill).
    ctx_cache: CurrentContextCache,
    /// Buffers of the batched inner optimization.
    resolve: ResolveScratch,
    /// Full space only: action index → lane of `batch` (`usize::MAX` for
    /// malformed actions that never became a lane).
    full_lane: Vec<usize>,
    /// Epoch stamp of the full-space mask batch: when it equals `epoch`,
    /// `batch`/`full_lane` hold this step's per-action outcomes and the
    /// myopic argmax reads them instead of re-peeking.
    mask_batch_stamp: u64,
    /// Set by the lockstep wave's fused prefill: the next `decide` call
    /// finds its scratch already reset and its mask already filled (with
    /// evaluations fused across wave lanes) and must not redo either.
    /// Consumed (cleared) by that `decide`.
    prefilled: bool,
}

impl StepScratch {
    fn reset(&mut self, n_actions: usize) {
        self.epoch += 1;
        self.mask.clear();
        self.mask.resize(n_actions, false);
        if self.resolved.len() != n_actions {
            self.resolved.clear();
            self.resolved.resize(n_actions, (0, None));
        }
    }
}

/// A serializable checkpoint of a trained controller: configuration,
/// learned Q-table (with traces and visit counts), the exploration
/// state, and the exploration RNG state. Predictor state is not saved —
/// predictors reset at each episode boundary anyway, so a snapshot taken
/// at an episode boundary is the controller's *complete* state: resuming
/// from it replays the remaining training bit-for-bit (see
/// [`crate::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControllerSnapshot {
    /// The controller configuration.
    pub config: JointControllerConfig,
    /// The trained TD(λ) learner.
    pub learner: TdLambda,
    /// The exploration rate at checkpoint time.
    pub epsilon: f64,
    /// The exploration RNG's internal state (xoshiro256++ words).
    pub rng_state: [u64; 4],
}

impl JointController<Ewma> {
    /// Creates the controller with the paper's EWMA predictor.
    pub fn new(config: JointControllerConfig) -> Self {
        let predictor = Ewma::new(config.predictor_alpha);
        Self::with_predictor(config, predictor)
    }

    /// Restores a controller from a [`ControllerSnapshot`], resuming with
    /// the checkpointed exploration rate and RNG state.
    pub fn from_snapshot(snapshot: ControllerSnapshot) -> Self {
        let mut restored = Self::new(snapshot.config);
        restored.learner = snapshot.learner;
        restored.policy = DecayingEpsilon::new(
            snapshot.epsilon,
            restored.config.epsilon_decay,
            restored.config.epsilon_floor.min(snapshot.epsilon),
        );
        restored.rng = StdRng::from_state(snapshot.rng_state);
        restored
    }
}

impl<P: Predictor> JointController<P> {
    /// Creates the controller with a custom predictor (ablation A5).
    pub fn with_predictor(config: JointControllerConfig, predictor: P) -> Self {
        let state_space = StateSpace::new(config.state.clone());
        let learner = TdLambda::new(state_space.n_states(), config.action.len(), config.td);
        let policy =
            DecayingEpsilon::new(config.epsilon0, config.epsilon_decay, config.epsilon_floor);
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            state_space,
            learner,
            policy,
            predictor,
            rng,
            training: true,
            pending: None,
            awaiting_reward: None,
            scratch: StepScratch::default(),
            last_error: None,
            record_stats: false,
            td_stats: TdStats::new(),
            last_decision: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &JointControllerConfig {
        &self.config
    }

    /// The underlying TD(λ) learner (inspect Q values, coverage, …).
    pub fn learner(&self) -> &TdLambda {
        &self.learner
    }

    /// The discretized state space.
    pub fn state_space(&self) -> &StateSpace {
        &self.state_space
    }

    /// The current exploration rate.
    pub fn epsilon(&self) -> f64 {
        self.policy.epsilon()
    }

    /// Switches between training (explore + learn) and evaluation
    /// (greedy, frozen) behaviour for direct use as a [`HevPolicy`].
    /// [`JointController::train`] and [`JointController::evaluate`] manage
    /// this flag themselves.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }

    /// Checkpoints the controller (see [`ControllerSnapshot`]).
    pub fn snapshot(&self) -> ControllerSnapshot {
        ControllerSnapshot {
            config: self.config.clone(),
            learner: self.learner.clone(),
            epsilon: self.policy.epsilon(),
            rng_state: self.rng.state(),
        }
    }

    /// Trains a single episode on a cycle — the unit step of
    /// [`JointController::train`] and
    /// [`JointController::train_portfolio`], exposed so checkpointed
    /// drivers ([`crate::checkpoint`]) can interleave episodes with
    /// snapshots. Resets the battery to the configured initial state of
    /// charge first.
    pub fn train_episode(&mut self, hev: &mut ParallelHev, cycle: &DriveCycle) -> EpisodeMetrics {
        self.training = true;
        hev.reset_soc(self.config.initial_soc);
        let reward = self.config.reward;
        simulate(hev, cycle, self, &reward)
    }

    /// [`JointController::train_episode`] with an optional telemetry
    /// collector (labelled `"train"`). With `None` this delegates to the
    /// plain path, bit-identically.
    pub fn train_episode_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        cycle: &DriveCycle,
        telemetry: Option<&mut EpisodeTelemetry>,
    ) -> EpisodeMetrics {
        match telemetry {
            None => self.train_episode(hev, cycle),
            Some(t) => {
                self.training = true;
                hev.reset_soc(self.config.initial_soc);
                let reward = self.config.reward;
                t.set_kind("train");
                simulate_instrumented(hev, cycle, self, &reward, None, Some(t))
            }
        }
    }

    /// Trains for `episodes` episodes on a cycle, resetting the battery
    /// to the configured initial state of charge each episode. Returns
    /// per-episode metrics (learning curve).
    pub fn train(
        &mut self,
        hev: &mut ParallelHev,
        cycle: &DriveCycle,
        episodes: usize,
    ) -> Vec<EpisodeMetrics> {
        (0..episodes)
            .map(|_| self.train_episode(hev, cycle))
            .collect()
    }

    /// Trains one episode on each cycle of a portfolio in turn (used with
    /// randomized micro-trip cycles for generalization).
    pub fn train_portfolio(
        &mut self,
        hev: &mut ParallelHev,
        cycles: &[DriveCycle],
        rounds: usize,
    ) -> Vec<EpisodeMetrics> {
        self.train_portfolio_instrumented(hev, cycles, rounds, None)
    }

    /// [`JointController::train_portfolio`] with an optional telemetry
    /// collector shared by every episode.
    pub fn train_portfolio_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        cycles: &[DriveCycle],
        rounds: usize,
        mut telemetry: Option<&mut EpisodeTelemetry>,
    ) -> Vec<EpisodeMetrics> {
        let mut out = Vec::with_capacity(rounds * cycles.len());
        for _ in 0..rounds {
            for cycle in cycles {
                out.push(self.train_episode_instrumented(hev, cycle, telemetry.as_deref_mut()));
            }
        }
        out
    }

    /// [`JointController::train_episode`] against a precomputed
    /// [`CyclePlan`]: bit-identical, but the per-step context precompute
    /// is amortized into the plan's one-time build.
    pub fn train_episode_planned(
        &mut self,
        hev: &mut ParallelHev,
        plan: &CyclePlan,
    ) -> EpisodeMetrics {
        self.training = true;
        hev.reset_soc(self.config.initial_soc);
        let reward = self.config.reward;
        simulate_planned(hev, plan, self, &reward)
    }

    /// [`JointController::train_episode_planned`] with an optional
    /// telemetry collector (labelled `"train"`).
    pub fn train_episode_planned_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        plan: &CyclePlan,
        telemetry: Option<&mut EpisodeTelemetry>,
    ) -> EpisodeMetrics {
        match telemetry {
            None => self.train_episode_planned(hev, plan),
            Some(t) => {
                self.training = true;
                hev.reset_soc(self.config.initial_soc);
                let reward = self.config.reward;
                t.set_kind("train");
                simulate_planned_instrumented(hev, plan, self, &reward, None, Some(t))
            }
        }
    }

    /// [`JointController::train_portfolio`] against precomputed plans
    /// (one per portfolio cycle, in portfolio order).
    pub fn train_portfolio_planned(
        &mut self,
        hev: &mut ParallelHev,
        plans: &[CyclePlan],
        rounds: usize,
    ) -> Vec<EpisodeMetrics> {
        self.train_portfolio_planned_instrumented(hev, plans, rounds, None)
    }

    /// [`JointController::train_portfolio_planned`] with an optional
    /// telemetry collector shared by every episode.
    pub fn train_portfolio_planned_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        plans: &[CyclePlan],
        rounds: usize,
        mut telemetry: Option<&mut EpisodeTelemetry>,
    ) -> Vec<EpisodeMetrics> {
        let mut out = Vec::with_capacity(rounds * plans.len());
        for _ in 0..rounds {
            for plan in plans {
                out.push(self.train_episode_planned_instrumented(
                    hev,
                    plan,
                    telemetry.as_deref_mut(),
                ));
            }
        }
        out
    }

    /// [`JointController::evaluate`] against a precomputed [`CyclePlan`].
    pub fn evaluate_planned(&mut self, hev: &mut ParallelHev, plan: &CyclePlan) -> EpisodeMetrics {
        self.evaluate_planned_instrumented(hev, plan, None)
    }

    /// [`JointController::evaluate_planned`] with an optional telemetry
    /// collector (labelled `"eval"`).
    pub fn evaluate_planned_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        plan: &CyclePlan,
        telemetry: Option<&mut EpisodeTelemetry>,
    ) -> EpisodeMetrics {
        self.training = false;
        hev.reset_soc(self.config.initial_soc);
        let reward = self.config.reward;
        let metrics = match telemetry {
            None => simulate_planned(hev, plan, self, &reward),
            Some(t) => {
                t.set_kind("eval");
                simulate_planned_instrumented(hev, plan, self, &reward, None, Some(t))
            }
        };
        self.training = true;
        metrics
    }

    /// Greedy evaluation on a cycle (no exploration, no learning).
    pub fn evaluate(&mut self, hev: &mut ParallelHev, cycle: &DriveCycle) -> EpisodeMetrics {
        self.evaluate_instrumented(hev, cycle, None)
    }

    /// [`JointController::evaluate`] with an optional telemetry
    /// collector (labelled `"eval"`). With `None` this delegates to the
    /// plain path, bit-identically.
    pub fn evaluate_instrumented(
        &mut self,
        hev: &mut ParallelHev,
        cycle: &DriveCycle,
        telemetry: Option<&mut EpisodeTelemetry>,
    ) -> EpisodeMetrics {
        self.training = false;
        hev.reset_soc(self.config.initial_soc);
        let reward = self.config.reward;
        let metrics = match telemetry {
            None => simulate(hev, cycle, self, &reward),
            Some(t) => {
                t.set_kind("eval");
                simulate_instrumented(hev, cycle, self, &reward, None, Some(t))
            }
        };
        self.training = true;
        metrics
    }

    fn encode_state(&self, obs: &Observation<'_>) -> usize {
        let prediction = if self.state_space.has_prediction() {
            self.predictor.predict()
        } else {
            0.0
        };
        self.state_space.encode(&StateSample {
            power_demand_w: obs.demand.power_demand_w,
            speed_mps: obs.demand.speed_mps,
            soc: obs.soc,
            prediction_w: prediction,
        })
    }

    /// Fills `self.scratch.mask` with per-action feasibility, evaluated
    /// against the observation's precomputed step context.
    ///
    /// Both action spaces go through the batched kernel (verdicts
    /// bit-identical to the scalar probes): the reduced space's current
    /// grid masks via [`InnerOptimizer::fill_mask_batched`], and the full
    /// space evaluates every decodable action as one batch whose
    /// per-action outcomes [`JointController::best_myopic_action`] then
    /// reuses for free.
    fn fill_action_mask(&mut self, hev: &ParallelHev, obs: &Observation<'_>) {
        let dt = self.config.reward.dt_s;
        match &self.config.action {
            ActionSpace::Reduced { currents } => {
                self.config.inner.fill_mask_batched(
                    hev,
                    obs.ctx,
                    currents,
                    dt,
                    &mut self.scratch.resolve,
                    &mut self.scratch.mask,
                );
            }
            full @ ActionSpace::Full { .. } => {
                if self.config.inner.scalar_reference {
                    for idx in 0..self.scratch.mask.len() {
                        // A malformed action is simply masked infeasible.
                        self.scratch.mask[idx] =
                            decode_full_action(full, idx, &mut self.last_error).is_some_and(
                                |control| hev.peek_with_context(obs.ctx, &control, dt).is_ok(),
                            );
                    }
                    return;
                }
                let n = self.scratch.mask.len();
                let batch = &mut self.scratch.batch;
                batch.begin(dt);
                // Full-space actions repeat each grid current across every
                // (gear, aux) combination; the cache builds each distinct
                // current's context once for the whole sweep.
                self.scratch.ctx_cache.clear();
                self.scratch.full_lane.clear();
                self.scratch.full_lane.resize(n, usize::MAX);
                for idx in 0..n {
                    // A malformed action is simply masked infeasible
                    // (it never becomes a lane, costing no evaluation —
                    // exactly like the scalar decode-then-skip).
                    if let Some(control) = decode_full_action(full, idx, &mut self.last_error) {
                        self.scratch.full_lane[idx] = batch.len();
                        batch.push_tagged(
                            control.battery_current_a,
                            control.gear,
                            control.p_aux_w,
                            idx,
                        );
                    }
                }
                hev.evaluate_batch_cached(obs.ctx, batch, &mut self.scratch.ctx_cache);
                for idx in 0..n {
                    let lane = self.scratch.full_lane[idx];
                    self.scratch.mask[idx] =
                        lane != usize::MAX && self.scratch.batch.is_feasible(lane);
                }
                self.scratch.mask_batch_stamp = self.scratch.epoch;
            }
        }
    }

    /// Resolves a reduced-space action's inner optimization at most once
    /// per step: masking, argmax, and acting all share the memoized entry
    /// (the resolution is a pure function of `(hev state, ctx, current)`,
    /// so reuse is bit-identical to re-resolving).
    fn resolve_cached(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        action: usize,
        current: f64,
    ) -> Option<ResolvedAction> {
        let (stamp, memo) = self.scratch.resolved[action];
        if stamp == self.scratch.epoch {
            return memo;
        }
        let inner = self.config.inner;
        let reward = self.config.reward;
        let resolved = inner.resolve_with_scratch(
            hev,
            obs.ctx,
            current,
            reward.dt_s,
            &reward,
            &mut self.scratch.resolve,
        );
        self.scratch.resolved[action] = (self.scratch.epoch, resolved);
        resolved
    }

    /// The feasible action with the best instantaneous (inner-optimized)
    /// reward — the myopic policy used when evaluation reaches a state
    /// never visited during training. Reads `self.scratch.mask`.
    fn best_myopic_action(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> Option<usize> {
        let dt = self.config.reward.dt_s;
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.scratch.mask.len() {
            if !self.scratch.mask[idx] {
                continue;
            }
            let reward = if let ActionSpace::Reduced { currents } = &self.config.action {
                let current = currents[idx];
                self.resolve_cached(hev, obs, idx, current)
                    .map(|r| r.reward)
            } else if self.scratch.mask_batch_stamp == self.scratch.epoch {
                // The mask batch already evaluated this action this step;
                // its stored lane replays the peek bit-for-bit at zero
                // extra evaluations.
                let lane = self.scratch.full_lane[idx];
                if lane == usize::MAX {
                    None
                } else {
                    self.scratch
                        .batch
                        .outcome(lane)
                        .ok()
                        .map(|o| self.config.reward.reward(&o))
                }
            } else {
                // Scalar reference: a malformed action scores no reward
                // (skipped).
                decode_full_action(&self.config.action, idx, &mut self.last_error).and_then(
                    |control| {
                        hev.peek_with_context(obs.ctx, &control, dt)
                            .ok()
                            .map(|o| self.config.reward.reward(&o))
                    },
                )
            };
            if let Some(r) = reward {
                if best.is_none_or(|(_, br)| r > br) {
                    best = Some((idx, r));
                }
            }
        }
        best.map(|(a, _)| a)
    }

    fn control_for_action(
        &mut self,
        hev: &ParallelHev,
        obs: &Observation<'_>,
        action: usize,
    ) -> Option<ControlInput> {
        if let ActionSpace::Reduced { currents } = &self.config.action {
            let current = currents[action];
            self.resolve_cached(hev, obs, action, current)
                .map(|r| r.control)
        } else {
            // `None` sends `decide` down its existing fallback path.
            decode_full_action(&self.config.action, action, &mut self.last_error)
        }
    }
}

impl<P: Predictor> HevPolicy for JointController<P> {
    fn begin_episode(&mut self) {
        self.pending = None;
        self.awaiting_reward = None;
        self.last_error = None;
        if self.record_stats {
            self.td_stats.reset();
            self.last_decision = None;
        }
        self.predictor.reset();
    }

    fn take_control_error(&mut self) -> Option<ControlError> {
        self.last_error.take()
    }

    fn decide(&mut self, hev: &ParallelHev, obs: &Observation<'_>) -> ControlInput {
        let state = self.encode_state(obs);
        if self.record_stats {
            self.last_decision = None;
        }
        // A wave prefill already reset the scratch and filled the mask
        // (bit-identically — same evaluations, fused across lanes);
        // everything after this point is per-lane work either way.
        if !std::mem::take(&mut self.scratch.prefilled) {
            let _span = hev_trace::span::enter("control.mask");
            self.scratch.reset(self.config.action.len());
            self.fill_action_mask(hev, obs);
        }
        if !self.scratch.mask.iter().any(|&m| m) {
            // No discrete action feasible (rare): let the harness fall
            // back; no learning credit this step.
            self.awaiting_reward = None;
            return fallback_control(hev, obs.demand, self.config.reward.dt_s);
        }
        // Flush the pending transition now that the successor state and
        // its feasible set are known (Algorithm 1, lines 5–10).
        if self.training {
            if let Some((s, a, r)) = self.pending.take() {
                let _span = hev_trace::span::enter("control.td_update");
                let delta = self
                    .learner
                    .update(s, a, r, state, Some(&self.scratch.mask));
                if self.record_stats {
                    self.td_stats.record(delta);
                }
            }
        }
        let action = if self.training {
            self.learner
                .select(state, &self.scratch.mask, &self.policy, &mut self.rng)
        } else {
            // Evaluation: restrict the greedy choice to actions the agent
            // actually experienced (unvisited entries carry the spuriously
            // attractive initialization). In a never-visited state, act
            // myopically: best instantaneous reward among feasible actions.
            match self.learner.greedy_visited(state, Some(&self.scratch.mask)) {
                Some(a) => a,
                None => match self.best_myopic_action(hev, obs) {
                    Some(a) => a,
                    None => {
                        self.awaiting_reward = None;
                        return fallback_control(hev, obs.demand, self.config.reward.dt_s);
                    }
                },
            }
        };
        match self.control_for_action(hev, obs, action) {
            Some(control) => {
                self.awaiting_reward = Some((state, action));
                if self.record_stats {
                    self.last_decision = Some(DecisionInfo {
                        state,
                        feasible: self.scratch.mask.iter().filter(|&&m| m).count(),
                        action,
                        prediction_w: if self.state_space.has_prediction() {
                            self.predictor.predict()
                        } else {
                            0.0
                        },
                    });
                }
                control
            }
            None => {
                self.awaiting_reward = None;
                fallback_control(hev, obs.demand, self.config.reward.dt_s)
            }
        }
    }

    fn feedback(
        &mut self,
        _hev: &ParallelHev,
        obs: &Observation<'_>,
        _outcome: &StepOutcome,
        reward: f64,
    ) {
        if self.training {
            if let Some((s, a)) = self.awaiting_reward.take() {
                self.pending = Some((s, a, reward));
            }
        }
        // Eq. 12: the predictor learns from the measured demand; its
        // output becomes part of the next step's state.
        self.predictor.observe(obs.demand.power_demand_w);
    }

    fn end_episode(&mut self) {
        if self.training {
            if let Some((s, a, r)) = self.pending.take() {
                // Terminal flush: bootstrap on the last state itself.
                let delta = self.learner.update(s, a, r, s, None);
                if self.record_stats {
                    self.td_stats.record(delta);
                }
            }
            self.policy.end_episode();
        }
        self.pending = None;
        self.awaiting_reward = None;
        self.learner.end_episode();
    }

    fn set_record_decisions(&mut self, on: bool) {
        self.record_stats = on;
        if !on {
            self.last_decision = None;
        }
    }

    fn last_decision(&self) -> Option<DecisionInfo> {
        self.last_decision
    }

    fn telemetry_snapshot(&self) -> Option<PolicyTelemetry> {
        if !self.record_stats {
            return None;
        }
        Some(PolicyTelemetry {
            epsilon: self.policy.epsilon(),
            td: self.td_stats.clone(),
            q: QStats::from_table(self.learner.q()),
        })
    }
}

impl<P: Predictor> WaveStep for JointController<P> {
    /// Fused per-step prefill: resets every lane's scratch, then fills
    /// the reduced-space feasibility masks with candidate evaluations
    /// fused across lanes into `shared` (one gear-major wave per gear
    /// index). Lanes that can't fuse — scalar reference mode, full
    /// action space, more than 64 grid currents, or a step length that
    /// differs from the wave's — fill their own mask exactly as a
    /// sequential `decide` would. Either way, each lane's mask, memo
    /// epoch, and caches end up bit-identical to the sequential path,
    /// and the following `decide` skips straight to action selection.
    fn prefill_wave(
        policies: &mut [&mut Self],
        hevs: &[&ParallelHev],
        obses: &[Observation<'_>],
        shared: &mut CandidateBatch,
        counts: &mut [hev_trace::evals::Counts],
    ) {
        let n = policies.len();
        let mut eligible = vec![false; n];
        let mut fused_dt: Option<f64> = None;
        for (i, p) in policies.iter_mut().enumerate() {
            let p = &mut **p;
            let before = hev_trace::evals::counts();
            p.scratch.reset(p.config.action.len());
            let dt = p.config.reward.dt_s;
            let mut ok = !p.config.inner.scalar_reference
                && matches!(&p.config.action, ActionSpace::Reduced { currents } if currents.len() <= 64);
            if ok {
                match fused_dt {
                    None => fused_dt = Some(dt),
                    Some(d) if d.to_bits() == dt.to_bits() => {}
                    Some(_) => ok = false,
                }
            }
            if !ok {
                p.fill_action_mask(hevs[i], &obses[i]);
            }
            eligible[i] = ok;
            p.scratch.prefilled = true;
            counts[i].add(&hev_trace::evals::counts().since(&before));
        }
        let Some(dt) = fused_dt else {
            return;
        };
        let mut lanes: Vec<WaveMaskLane<'_>> = Vec::with_capacity(n);
        let mut fused_idx: Vec<usize> = Vec::with_capacity(n);
        for (i, p) in policies.iter_mut().enumerate() {
            if !eligible[i] {
                continue;
            }
            let p = &mut **p;
            let ActionSpace::Reduced { currents } = &p.config.action else {
                continue;
            };
            lanes.push(WaveMaskLane {
                inner: p.config.inner,
                hev: hevs[i],
                ctx: obses[i].ctx,
                currents,
                scratch: &mut p.scratch.resolve,
                mask: p.scratch.mask.as_mut_slice(),
            });
            fused_idx.push(i);
        }
        let mut lane_counts = vec![hev_trace::evals::Counts::default(); lanes.len()];
        fill_mask_wave(&mut lanes, dt, shared, &mut lane_counts);
        drop(lanes);
        for (k, &i) in fused_idx.iter().enumerate() {
            counts[i].add(&lane_counts[k]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drive_cycle::ProfileBuilder;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn tiny_cycle() -> DriveCycle {
        ProfileBuilder::new("tiny")
            .idle(3.0)
            .trip(35.0, 8.0, 12.0, 7.0, 3.0)
            .trip(50.0, 10.0, 15.0, 9.0, 4.0)
            .build()
            .unwrap()
    }

    fn quick_config() -> JointControllerConfig {
        let mut c = JointControllerConfig::proposed();
        // Small spaces for fast tests.
        c.state = StateSpaceConfig {
            power_demand: hev_rl::UniformGrid::new(-30_000.0, 50_000.0, 6),
            speed: hev_rl::UniformGrid::new(0.0, 30.0, 5),
            charge: hev_rl::UniformGrid::new(0.4, 0.8, 5),
            prediction: Some(hev_rl::UniformGrid::new(-15_000.0, 30_000.0, 3)),
        };
        c
    }

    #[test]
    fn training_improves_charge_corrected_fuel() {
        // Corrected fuel (fuel + the fuel-equivalent of net battery
        // depletion) is the objective the shaped reward encodes; the
        // greedy policy must beat the exploration-heavy early episodes
        // on it.
        let corrected = |m: &crate::metrics::EpisodeMetrics| {
            m.fuel_g - (m.soc_final - m.soc_initial) * 7_800.0 * 3_600.0 / (0.28 * 42_600.0)
        };
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        let learning = agent.train(&mut hev, &cycle, 80);
        let after = agent.evaluate(&mut hev, &cycle);
        let early: f64 = learning[..5].iter().map(&corrected).sum::<f64>() / 5.0;
        assert!(
            corrected(&after) < early,
            "greedy {} g did not beat early training {} g",
            corrected(&after),
            early
        );
    }

    #[test]
    fn trained_policy_stays_near_myopic_quality() {
        // An untrained controller evaluates as the myopic inner-opt
        // policy (a strong ECMS-like baseline); training on a tiny state
        // space may not beat it, but must not collapse.
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut myopic_agent = JointController::new(quick_config());
        let myopic = myopic_agent.evaluate(&mut hev, &cycle);
        let mut agent = JointController::new(quick_config());
        agent.train(&mut hev, &cycle, 80);
        let trained = agent.evaluate(&mut hev, &cycle);
        assert!(
            trained.total_reward > myopic.total_reward * 1.5,
            "trained {} collapsed vs myopic {}",
            trained.total_reward,
            myopic.total_reward
        );
    }

    #[test]
    fn evaluation_is_deterministic() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        agent.train(&mut hev, &cycle, 10);
        let a = agent.evaluate(&mut hev, &cycle);
        let b = agent.evaluate(&mut hev, &cycle);
        assert_eq!(a.fuel_g, b.fuel_g);
        assert_eq!(a.total_reward, b.total_reward);
    }

    #[test]
    fn epsilon_decays_during_training() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        let e0 = agent.epsilon();
        agent.train(&mut hev, &cycle, 20);
        assert!(agent.epsilon() < e0);
    }

    #[test]
    fn q_table_gets_visited() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        agent.train(&mut hev, &cycle, 3);
        assert!(agent.learner().q().coverage() > 10);
    }

    #[test]
    fn full_action_space_also_runs() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut cfg = quick_config();
        cfg.action = ActionSpace::full(5, vec![100.0, 600.0, 1_100.0]);
        let mut agent = JointController::new(cfg);
        agent.train(&mut hev, &cycle, 3);
        let m = agent.evaluate(&mut hev, &cycle);
        assert_eq!(m.steps, cycle.len());
    }

    #[test]
    fn powertrain_only_pins_aux() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut cfg = JointControllerConfig::powertrain_only(600.0);
        cfg.state = quick_config().state;
        cfg.state.prediction = None;
        let mut agent = JointController::new(cfg);
        agent.train(&mut hev, &cycle, 3);
        let m = agent.evaluate(&mut hev, &cycle);
        // With aux pinned at the preferred power, utility is 0 (the peak)
        // every step.
        assert!(m.mean_utility().abs() < 1e-9);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        agent.train(&mut hev, &cycle, 10);
        let expected = agent.evaluate(&mut hev, &cycle);

        let json = serde_json::to_string(&agent.snapshot()).unwrap();
        let snapshot: ControllerSnapshot = serde_json::from_str(&json).unwrap();
        let mut restored = JointController::from_snapshot(snapshot);
        let restored_metrics = restored.evaluate(&mut hev, &cycle);
        assert_eq!(restored_metrics.fuel_g, expected.fuel_g);
        assert_eq!(restored_metrics.total_reward, expected.total_reward);
        assert_eq!(restored.epsilon(), agent.epsilon());
    }

    #[test]
    fn restored_controller_keeps_learning() {
        let mut hev = hev();
        let cycle = tiny_cycle();
        let mut agent = JointController::new(quick_config());
        agent.train(&mut hev, &cycle, 5);
        let coverage_before = agent.learner().q().coverage();
        let mut restored = JointController::from_snapshot(agent.snapshot());
        restored.train(&mut hev, &cycle, 10);
        assert!(restored.learner().q().coverage() >= coverage_before);
    }

    #[test]
    fn malformed_action_records_typed_error_instead_of_panicking() {
        // A reduced-space decode reaching the full-control path used to
        // hit `expect("full action has a gear")`; it now records a typed
        // `ControlError` and degrades gracefully.
        let mut slot = None;
        let control = decode_full_action(&ActionSpace::reduced(), 3, &mut slot);
        assert_eq!(control, None);
        assert_eq!(slot, Some(ControlError::MissingGear { action: 3 }));
        assert!(slot.unwrap().to_string().contains("without a gear"));
        // A well-formed full space decodes cleanly and records nothing.
        let mut slot = None;
        let full = ActionSpace::full(3, vec![100.0, 600.0]);
        let control = decode_full_action(&full, 2, &mut slot);
        assert!(control.is_some());
        assert_eq!(slot, None);
    }

    #[test]
    fn take_control_error_clears_the_slot() {
        let mut agent = JointController::new(quick_config());
        agent.last_error = Some(ControlError::MissingAux { action: 1 });
        assert_eq!(
            agent.take_control_error(),
            Some(ControlError::MissingAux { action: 1 })
        );
        assert_eq!(agent.take_control_error(), None);
    }

    #[test]
    fn custom_predictor_is_accepted() {
        use hev_predict::MovingAverage;
        let cfg = quick_config();
        let mut agent = JointController::with_predictor(cfg, MovingAverage::new(5));
        let mut hev = hev();
        let cycle = tiny_cycle();
        agent.train(&mut hev, &cycle, 2);
        let m = agent.evaluate(&mut hev, &cycle);
        assert_eq!(m.steps, cycle.len());
    }
}
