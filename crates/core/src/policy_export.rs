//! Export and inspection of a learned policy.
//!
//! A tabular Q-function is opaque; [`PolicyTable`] projects the learned
//! greedy action onto the two physically meaningful axes — vehicle speed
//! and propulsion power demand — at a fixed battery level, producing the
//! kind of "power-split map" engineers read (and OEM calibrators ship).

use crate::controller::JointController;
use crate::state::{StateSample, StateSpace};
use hev_predict::Predictor;
use serde::{Deserialize, Serialize};

/// A learned power-split map: for each `(speed, demand)` cell, the
/// greedy battery current, or `None` where the agent never visited.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyTable {
    /// Speed grid centers, m/s.
    pub speeds_mps: Vec<f64>,
    /// Demand grid centers, W.
    pub demands_w: Vec<f64>,
    /// Fixed battery level the slice was taken at.
    pub soc: f64,
    /// `cells[d][v]`: greedy current (A) at demand row `d`, speed column
    /// `v`; `None` = never visited.
    pub cells: Vec<Vec<Option<f64>>>,
}

impl PolicyTable {
    /// Extracts the greedy-current map of a trained controller at the
    /// given battery level (prediction fixed to the demand — the
    /// "steady" slice).
    pub fn extract<P: Predictor>(
        controller: &JointController<P>,
        soc: f64,
        speed_points: usize,
        demand_points: usize,
    ) -> Self {
        let space: &StateSpace = controller.state_space();
        let cfg = space.config();
        let (v_lo, v_hi) = (cfg.speed.min(), cfg.speed.max());
        let (d_lo, d_hi) = (cfg.power_demand.min(), cfg.power_demand.max());
        let speeds: Vec<f64> = (0..speed_points)
            .map(|i| v_lo + (v_hi - v_lo) * (i as f64 + 0.5) / speed_points as f64)
            .collect();
        let demands: Vec<f64> = (0..demand_points)
            .map(|i| d_lo + (d_hi - d_lo) * (i as f64 + 0.5) / demand_points as f64)
            .collect();
        let currents = controller.config().action.currents().to_vec();
        let cells = demands
            .iter()
            .map(|&p| {
                speeds
                    .iter()
                    .map(|&v| {
                        let s = space.encode(&StateSample {
                            power_demand_w: p,
                            speed_mps: v,
                            soc,
                            prediction_w: p,
                        });
                        controller
                            .learner()
                            .greedy_visited(s, None)
                            .map(|a| currents[a])
                    })
                    .collect()
            })
            .collect();
        Self {
            speeds_mps: speeds,
            demands_w: demands,
            soc,
            cells,
        }
    }

    /// Fraction of cells the agent visited.
    pub fn coverage(&self) -> f64 {
        let total = self.cells.len() * self.cells.first().map_or(0, Vec::len);
        if total == 0 {
            return 0.0;
        }
        let visited = self.cells.iter().flatten().filter(|c| c.is_some()).count();
        visited as f64 / total as f64
    }

    /// Renders an ASCII heat map (`.` unvisited, `-` charge, `0` near
    /// zero, `+` assist, `#` strong assist), demand rows from high to
    /// low.
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for row in self.cells.iter().rev() {
            for cell in row {
                out.push(match cell {
                    None => '.',
                    Some(i) if *i <= -10.0 => '-',
                    Some(i) if *i < 10.0 => '0',
                    Some(i) if *i < 50.0 => '+',
                    Some(_) => '#',
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::JointControllerConfig;
    use drive_cycle::ProfileBuilder;
    use hev_model::{HevParams, ParallelHev};

    fn trained() -> JointController {
        let cycle = ProfileBuilder::new("t")
            .idle(3.0)
            .trip(40.0, 10.0, 15.0, 8.0, 4.0)
            .build()
            .unwrap();
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap();
        let mut agent = JointController::new(JointControllerConfig::proposed());
        agent.train(&mut hev, &cycle, 5);
        agent
    }

    #[test]
    fn untrained_policy_is_empty() {
        let agent = JointController::new(JointControllerConfig::proposed());
        let table = PolicyTable::extract(&agent, 0.6, 6, 6);
        assert_eq!(table.coverage(), 0.0);
        assert!(table.render_ascii().chars().all(|c| c == '.' || c == '\n'));
    }

    #[test]
    fn trained_policy_has_coverage() {
        let table = PolicyTable::extract(&trained(), 0.6, 8, 8);
        assert!(table.coverage() > 0.0);
        assert_eq!(table.cells.len(), 8);
        assert_eq!(table.cells[0].len(), 8);
    }

    #[test]
    fn grid_centers_span_state_space() {
        let agent = JointController::new(JointControllerConfig::proposed());
        let table = PolicyTable::extract(&agent, 0.6, 4, 4);
        assert!(table.speeds_mps[0] > 0.0);
        assert!(*table.speeds_mps.last().unwrap() < 40.0);
        assert!(table.demands_w[0] > -40_000.0);
        assert!(*table.demands_w.last().unwrap() < 60_000.0);
    }

    #[test]
    fn ascii_render_shape() {
        let table = PolicyTable::extract(&trained(), 0.6, 5, 3);
        let rendered = table.render_ascii();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines.iter().all(|l| l.len() == 5));
    }
}
