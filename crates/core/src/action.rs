//! The RL action spaces (paper §4.3.2, Eq. 15).
//!
//! The *full* action space discretizes the whole control vector
//! `a = [i, R(k), p_aux]`. The *reduced* action space keeps only the
//! battery current; the gear and auxiliary power are then chosen by the
//! per-step inner optimization ([`crate::inner_opt`]), which shrinks the
//! Q-table, speeds up convergence, and frees `p_aux` from discretization
//! — at the price of needing partial component models (the paper's
//! recommended trade-off).

use serde::{Deserialize, Serialize};

/// The default battery-current grid, A (positive discharges). Spans
/// strong regenerative charging to full electric assist.
pub fn default_currents() -> Vec<f64> {
    vec![
        -60.0, -40.0, -25.0, -15.0, -8.0, -4.0, 0.0, 4.0, 8.0, 15.0, 25.0, 40.0, 60.0, 80.0, 100.0,
    ]
}

/// A decoded action.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActionChoice {
    /// Battery current, A.
    pub battery_current_a: f64,
    /// Gear index; `None` in the reduced space (inner optimization picks
    /// it).
    pub gear: Option<usize>,
    /// Auxiliary power, W; `None` in the reduced space.
    pub p_aux_w: Option<f64>,
}

/// A finite action space over the HEV control variables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ActionSpace {
    /// `a_re = [i]`: current only (the paper's recommended reduced space).
    Reduced {
        /// Current grid, A.
        currents: Vec<f64>,
    },
    /// `a = [i, R(k), p_aux]`: the complete discretized space of Eq. 15.
    Full {
        /// Current grid, A.
        currents: Vec<f64>,
        /// Number of gears.
        num_gears: usize,
        /// Auxiliary power levels, W.
        aux_levels: Vec<f64>,
    },
}

impl ActionSpace {
    /// The reduced space over the default current grid.
    pub fn reduced() -> Self {
        ActionSpace::Reduced {
            currents: default_currents(),
        }
    }

    /// The full space over the default current grid, `num_gears` gears,
    /// and `aux_levels` auxiliary power levels.
    pub fn full(num_gears: usize, aux_levels: Vec<f64>) -> Self {
        ActionSpace::Full {
            currents: default_currents(),
            num_gears,
            aux_levels,
        }
    }

    /// Whether this is the reduced space.
    pub fn is_reduced(&self) -> bool {
        matches!(self, ActionSpace::Reduced { .. })
    }

    /// Number of discrete actions.
    pub fn len(&self) -> usize {
        match self {
            ActionSpace::Reduced { currents } => currents.len(),
            ActionSpace::Full {
                currents,
                num_gears,
                aux_levels,
            } => currents.len() * num_gears * aux_levels.len(),
        }
    }

    /// Whether the space has no actions (never true for the provided
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decodes a flat action index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn decode(&self, index: usize) -> ActionChoice {
        match self {
            ActionSpace::Reduced { currents } => ActionChoice {
                battery_current_a: currents[index],
                gear: None,
                p_aux_w: None,
            },
            ActionSpace::Full {
                currents,
                num_gears,
                aux_levels,
            } => {
                assert!(index < self.len(), "action index out of range");
                let n_aux = aux_levels.len();
                let aux = index % n_aux;
                let rest = index / n_aux;
                let gear = rest % num_gears;
                let cur = rest / num_gears;
                ActionChoice {
                    battery_current_a: currents[cur],
                    gear: Some(gear),
                    p_aux_w: Some(aux_levels[aux]),
                }
            }
        }
    }

    /// The current grid.
    pub fn currents(&self) -> &[f64] {
        match self {
            ActionSpace::Reduced { currents } | ActionSpace::Full { currents, .. } => currents,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_len_is_current_count() {
        let a = ActionSpace::reduced();
        assert_eq!(a.len(), 15);
        assert!(a.is_reduced());
    }

    #[test]
    fn reduced_decode_gives_bare_current() {
        let a = ActionSpace::reduced();
        let c = a.decode(0);
        assert_eq!(c.battery_current_a, -60.0);
        assert_eq!(c.gear, None);
        assert_eq!(c.p_aux_w, None);
    }

    #[test]
    fn full_len_is_product() {
        let a = ActionSpace::full(5, vec![100.0, 600.0, 1_100.0]);
        assert_eq!(a.len(), 15 * 5 * 3);
        assert!(!a.is_reduced());
    }

    #[test]
    fn full_decode_roundtrips_all_indices() {
        let a = ActionSpace::full(3, vec![100.0, 600.0]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..a.len() {
            let c = a.decode(i);
            let key = (
                c.battery_current_a.to_bits(),
                c.gear.unwrap(),
                c.p_aux_w.unwrap().to_bits(),
            );
            assert!(seen.insert(key), "duplicate action {i}");
        }
        assert_eq!(seen.len(), a.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn full_decode_validates() {
        ActionSpace::full(2, vec![600.0]).decode(1_000);
    }

    #[test]
    fn current_grid_is_monotone_and_spans_zero() {
        let c = default_currents();
        assert!(c.windows(2).all(|w| w[1] > w[0]));
        assert!(c.contains(&0.0));
        assert!(c[0] < 0.0 && c[c.len() - 1] > 0.0);
    }
}
