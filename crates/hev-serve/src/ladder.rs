//! The degradation ladder: deadline-budgeted control synthesis.
//!
//! A request's deadline is an **eval-count budget** — virtual time read
//! from the `hev_trace::evals` thread-local counter, so "time" is a
//! pure function of the work performed and deterministic at every shard
//! count. The responder walks four tiers in strictly descending
//! fidelity (the same chain `hev_control::SupervisedPolicy` degrades
//! through), entering a tier only while its estimated cost still fits
//! the remaining budget:
//!
//! 1. [`Rung::Full`](crate::wire::Rung::Full) — inner-optimized resolve
//!    over the full battery-current ladder;
//! 2. [`Rung::Myopic`](crate::wire::Rung::Myopic) — the same resolve
//!    over a coarse current subset;
//! 3. [`Rung::Rule`](crate::wire::Rung::Rule) — the rule-based
//!    baseline's decision;
//! 4. [`Rung::LimpHome`](crate::wire::Rung::LimpHome) — the feasibility
//!    search of [`fallback_control`], attempted regardless of budget so
//!    a response is always produced.
//!
//! Every candidate is validated the supervisor's way — finite fields
//! plus a `peek_with_context` feasibility probe — so a served control
//! is never infeasible and never non-finite. The walk can only move
//! down the ladder, never back up (the monotonicity the admission
//! proptests pin).

use crate::wire::Rung;
use hev_control::sim::{fallback_control, HevPolicy, Observation};
use hev_control::{
    default_currents, InnerOptimizer, ResolveScratch, RewardConfig, RuleBasedController,
};
use hev_model::{ControlInput, ParallelHev, StepContext, WheelDemand};
use hev_trace::evals;

/// Ladder tuning: the service-default budget, per-tier cost estimates,
/// and the optimizers each tier runs.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderConfig {
    /// Default per-request eval budget when the request carries none.
    pub budget_evals: u64,
    /// Estimated eval cost of the full tier (gates entry).
    pub full_cost: u64,
    /// Estimated eval cost of the myopic tier (gates entry).
    pub myopic_cost: u64,
    /// Estimated eval cost of the rule tier (gates entry).
    pub rule_cost: u64,
    /// Battery-current ladder of the full tier.
    pub currents: Vec<f64>,
    /// Coarse battery-current subset of the myopic tier.
    pub myopic_currents: Vec<f64>,
    /// Inner optimizer resolving gear and auxiliary power per current.
    pub inner: InnerOptimizer,
    /// Reward definition (also supplies the step duration `dt_s` used by
    /// every feasibility check and committed step).
    pub reward: RewardConfig,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self {
            // The full tier costs ≈ gears × (aux grid + 2 × refine) per
            // current ≈ 2.3k evals over the 15-current ladder; 4k leaves
            // headroom for validation probes.
            budget_evals: 4000,
            full_cost: 2500,
            myopic_cost: 700,
            rule_cost: 50,
            currents: default_currents(),
            myopic_currents: vec![-25.0, 0.0, 25.0, 60.0],
            inner: InnerOptimizer::default(),
            reward: RewardConfig::default(),
        }
    }
}

/// What one ladder walk produced.
#[derive(Debug, Clone, PartialEq)]
pub struct LadderOutcome {
    /// The winning control (validated feasible and finite).
    pub control: ControlInput,
    /// The tier that produced it.
    pub rung: Rung,
    /// Every tier attempted, in walk order (strictly descending — the
    /// ladder never escalates back up within one request).
    pub trail: Vec<Rung>,
    /// Evaluations each attempted tier spent, parallel to `trail` — the
    /// per-rung cost attribution a causal request trace reports.
    pub trail_evals: Vec<u64>,
    /// Peek-equivalent evaluations the walk spent.
    pub evals: u64,
}

/// Supervisor-style validation: finite fields plus the step's
/// feasibility probe.
fn validate(hev: &ParallelHev, ctx: &StepContext, control: &ControlInput, dt: f64) -> bool {
    control.is_finite() && hev.peek_with_context(ctx, control, dt).is_ok()
}

/// The feasible control with the best instantaneous inner-optimized
/// reward over `currents` (the supervisor's myopic tier, parameterized
/// by the current set).
fn best_over_currents(
    hev: &ParallelHev,
    ctx: &StepContext,
    currents: &[f64],
    config: &LadderConfig,
    scratch: &mut ResolveScratch,
    dt: f64,
) -> Option<ControlInput> {
    let mut best: Option<(f64, ControlInput)> = None;
    for &current in currents {
        if let Some(resolved) =
            config
                .inner
                .resolve_with_scratch(hev, ctx, current, dt, &config.reward, scratch)
        {
            if best.as_ref().is_none_or(|(r, _)| resolved.reward > *r) {
                best = Some((resolved.reward, resolved.control));
            }
        }
    }
    best.map(|(_, control)| control)
}

/// Walks the ladder under `budget` evals and returns the first tier
/// whose candidate validates, or `None` when even limp-home is
/// infeasible (the caller maps that to a typed error — it is never a
/// panic and never an infeasible served control).
///
/// `step`, `time_s`, and `obs_soc` describe the (possibly
/// sensor-faulted) observation handed to the rule tier.
#[allow(clippy::too_many_arguments)]
pub fn decide(
    hev: &ParallelHev,
    ctx: &StepContext,
    demand: &WheelDemand,
    config: &LadderConfig,
    rule: &mut RuleBasedController,
    scratch: &mut ResolveScratch,
    budget: u64,
    step: usize,
    time_s: f64,
    obs_soc: f64,
) -> Option<LadderOutcome> {
    let dt = config.reward.dt_s;
    let start = evals::count();
    let mut trail = Vec::with_capacity(4);
    let mut trail_evals = Vec::with_capacity(4);

    if config.full_cost <= budget {
        let _span = hev_trace::span::enter("serve.ladder.full");
        trail.push(Rung::Full);
        let tier = evals::count();
        let candidate = best_over_currents(hev, ctx, &config.currents, config, scratch, dt)
            .filter(|control| validate(hev, ctx, control, dt));
        trail_evals.push(evals::since(tier));
        if let Some(control) = candidate {
            return Some(LadderOutcome {
                control,
                rung: Rung::Full,
                trail,
                trail_evals,
                evals: evals::since(start),
            });
        }
    }

    if evals::since(start) + config.myopic_cost <= budget {
        let _span = hev_trace::span::enter("serve.ladder.myopic");
        trail.push(Rung::Myopic);
        let tier = evals::count();
        let candidate = best_over_currents(hev, ctx, &config.myopic_currents, config, scratch, dt)
            .filter(|control| validate(hev, ctx, control, dt));
        trail_evals.push(evals::since(tier));
        if let Some(control) = candidate {
            return Some(LadderOutcome {
                control,
                rung: Rung::Myopic,
                trail,
                trail_evals,
                evals: evals::since(start),
            });
        }
    }

    if evals::since(start) + config.rule_cost <= budget {
        let _span = hev_trace::span::enter("serve.ladder.rule");
        trail.push(Rung::Rule);
        let tier = evals::count();
        let obs = Observation {
            step,
            time_s,
            demand,
            soc: obs_soc,
            ctx,
        };
        let control = rule.decide(hev, &obs);
        let ok = validate(hev, ctx, &control, dt);
        trail_evals.push(evals::since(tier));
        if ok {
            return Some(LadderOutcome {
                control,
                rung: Rung::Rule,
                trail,
                trail_evals,
                evals: evals::since(start),
            });
        }
    }

    // Limp-home is attempted regardless of remaining budget: a response
    // must always be produced, and this tier is the cheapest.
    let _span = hev_trace::span::enter("serve.ladder.limp_home");
    trail.push(Rung::LimpHome);
    let tier = evals::count();
    let control = fallback_control(hev, demand, dt);
    let ok = validate(hev, ctx, &control, dt);
    trail_evals.push(evals::since(tier));
    if ok {
        return Some(LadderOutcome {
            control,
            rung: Rung::LimpHome,
            trail,
            trail_evals,
            evals: evals::since(start),
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hev_model::HevParams;

    fn hev() -> ParallelHev {
        ParallelHev::new(HevParams::default_parallel_hev(), 0.6).unwrap()
    }

    fn walk(budget: u64, speed: f64, accel: f64) -> Option<LadderOutcome> {
        let hev = hev();
        let demand = hev.demand(speed, accel, 0.0);
        let ctx = hev.step_context(&demand);
        let config = LadderConfig::default();
        let mut rule = RuleBasedController::default();
        rule.begin_episode();
        let mut scratch = ResolveScratch::new();
        decide(
            &hev,
            &ctx,
            &demand,
            &config,
            &mut rule,
            &mut scratch,
            budget,
            0,
            0.0,
            0.6,
        )
    }

    #[test]
    fn generous_budget_serves_from_the_full_tier() {
        let out = walk(100_000, 12.0, 0.3).expect("feasible demand must be served");
        assert_eq!(out.rung, Rung::Full);
        assert_eq!(out.trail, vec![Rung::Full]);
        assert!(out.control.is_finite());
        assert!(out.evals > 0);
    }

    #[test]
    fn tight_budgets_degrade_monotonically() {
        // Budgets below each tier's entry cost must land on a lower rung.
        let full = walk(100_000, 12.0, 0.3).unwrap();
        let myopic = walk(1500, 12.0, 0.3).unwrap();
        let rule = walk(300, 12.0, 0.3).unwrap();
        let limp = walk(0, 12.0, 0.3).unwrap();
        assert_eq!(full.rung, Rung::Full);
        assert_eq!(myopic.rung, Rung::Myopic);
        assert_eq!(rule.rung, Rung::Rule);
        assert_eq!(limp.rung, Rung::LimpHome);
        // A trail never escalates back up, and every attempted tier
        // carries its own eval cost (summing to no more than the walk's
        // total — validation probes outside a tier are walk overhead).
        for out in [full, myopic, rule, limp] {
            for pair in out.trail.windows(2) {
                assert!(pair[0].index() < pair[1].index());
            }
            assert_eq!(*out.trail.last().unwrap(), out.rung);
            assert_eq!(out.trail_evals.len(), out.trail.len());
            assert!(out.trail_evals.iter().sum::<u64>() <= out.evals);
        }
    }

    #[test]
    fn zero_budget_still_serves_limp_home() {
        let out = walk(0, 5.0, 0.1).expect("limp-home always answers feasible demands");
        assert_eq!(out.rung, Rung::LimpHome);
        assert_eq!(out.trail, vec![Rung::LimpHome]);
    }

    #[test]
    fn served_controls_are_always_feasible() {
        let hev = hev();
        for (budget, speed, accel) in [(100_000, 20.0, 1.0), (1500, 8.0, -0.5), (0, 0.0, 0.0)] {
            if let Some(out) = walk(budget, speed, accel) {
                let demand = hev.demand(speed, accel, 0.0);
                let ctx = hev.step_context(&demand);
                assert!(hev
                    .peek_with_context(&ctx, &out.control, RewardConfig::default().dt_s)
                    .is_ok());
            }
        }
    }
}
