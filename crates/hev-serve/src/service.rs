//! The service loop: bounded admission, sharded execution, and crash
//! quarantine.
//!
//! Requests are consumed in ticks of [`ServeConfig::tick_requests`].
//! Each tick runs three sequential-parallel-sequential stages:
//!
//! 1. **Admission (sequential)** — requests are routed to per-session
//!    queues bounded by [`ServeConfig::queue_capacity`]; an unknown
//!    session id is answered immediately with a typed error and a full
//!    queue sheds the request with an explicit backpressure verdict.
//!    Both decisions depend only on queue depth and request order.
//! 2. **Execution (parallel)** — each session's queue is one task for
//!    `run_indexed_caught` over [`ServeConfig::shards`] workers. The
//!    task's content (session state + queued requests) is independent
//!    of the shard count, and eval budgets are differenced inside the
//!    task, so responses are byte-identical at any shard count.
//! 3. **Scatter & quarantine (sequential)** — verdicts land in the slot
//!    of their request's stream position (never a client-supplied
//!    field, so a hostile index cannot address memory). A panicked task
//!    quarantines its session: the queued requests are dumped through a
//!    [`FlightRecorder`], the session is rebuilt with a retry-tagged
//!    reseed (advancing its epoch), and the whole queue is replayed
//!    sequentially with per-request crash isolation — a request that
//!    panics the reseeded session too is answered
//!    [`RequestError::SessionCrashed`] and the session reseeds again.
//!    The shard never stops serving and every request gets exactly one
//!    response.

use crate::ladder::LadderConfig;
use crate::session::{Session, SessionSpec};
use crate::wire::{Request, RequestError, Response, Rung, Verdict};
use hev_control::harness::{run_indexed_caught, RunOutcome};
use hev_model::ParamError;
use hev_trace::json::Obj;
use hev_trace::{span, FlightRecorder, MetricsRegistry, SpanTree};
use std::collections::BTreeMap;

/// Service tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker threads the per-tick session batches fan out over.
    pub shards: usize,
    /// Bounded per-session admission queue depth; a request arriving at
    /// a full queue is shed.
    pub queue_capacity: usize,
    /// Requests consumed per tick.
    pub tick_requests: usize,
    /// The degradation-ladder configuration shared by every session.
    pub ladder: LadderConfig,
    /// Span-profile the request lifecycle: collects a merged span tree
    /// (admission, ladder rungs, quarantine) plus one causal trace line
    /// per request. Off by default — serving is then span-free and the
    /// response stream is byte-identical to an unprofiled build.
    pub profile: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            // A tick admits ~2 requests per session of the default
            // 8-session fleet, well under the queue bound: an evenly
            // loaded fleet sheds nothing, and shedding appears only
            // under chaos-mode bursts (16+ consecutive requests at one
            // hot session within a tick).
            queue_capacity: 8,
            tick_requests: 16,
            ladder: LadderConfig::default(),
            profile: false,
        }
    }
}

/// Per-session serving statistics (the degradation report's rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests addressed to the session (admitted or shed).
    pub requests: u64,
    /// Requests served with a control.
    pub served: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Requests answered with a typed error.
    pub errors: u64,
    /// Served-request counts per ladder rung (full, myopic, rule,
    /// limp-home).
    pub rungs: [u64; 4],
    /// Times the session was quarantined and reseeded.
    pub quarantines: u64,
    /// Requests answered `session_crashed` (panicked twice).
    pub crashed: u64,
}

impl SessionStats {
    fn record(&mut self, verdict: &Verdict) {
        self.requests += 1;
        match verdict {
            Verdict::Served { rung, .. } => {
                self.served += 1;
                // hevlint::allow(panic::reachable-from-serve, Rung::index() is 0..4 by construction into a [u64; 4])
                self.rungs[rung.index()] += 1;
            }
            Verdict::Shed { .. } => self.shed += 1,
            Verdict::Error(RequestError::SessionCrashed) => {
                self.errors += 1;
                self.crashed += 1;
            }
            Verdict::Error(_) => self.errors += 1,
        }
    }
}

/// Everything one [`serve`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutput {
    /// One response per request, in request stream order.
    pub responses: Vec<Response>,
    /// Per-session statistics, in session-id order.
    pub stats: BTreeMap<u64, SessionStats>,
    /// Requests addressed to ids no session has.
    pub unknown_session: u64,
    /// Total quarantine events across all sessions.
    pub quarantines: u64,
    /// Flight-recorder dumps and quarantine events, in occurrence order
    /// (deterministic: quarantines are scattered sequentially).
    pub flight_dumps: Vec<String>,
    /// Merged span tree of the whole serve call (empty unless
    /// [`ServeConfig::profile`] is set). Per-task trees merge
    /// commutatively, so the tree is byte-identical at any shard count.
    pub span_tree: SpanTree,
    /// One causal trace JSONL line per request, in stream order (empty
    /// unless [`ServeConfig::profile`] is set). The trace id is the
    /// request's stream slot — never a client-supplied field.
    pub request_traces: Vec<String>,
}

impl ServeOutput {
    /// The deterministic response stream: one JSON line per request, in
    /// stream order, newline-terminated.
    pub fn response_stream(&self) -> String {
        let mut out = String::new();
        for r in &self.responses {
            out.push_str(&r.to_jsonl());
            out.push('\n');
        }
        out
    }

    /// Eval counts of every served request, in response order.
    pub fn served_evals(&self) -> Vec<u64> {
        self.responses
            .iter()
            .filter_map(|r| match r.verdict {
                Verdict::Served { evals, .. } => Some(evals),
                _ => None,
            })
            .collect()
    }

    /// Registers the serve counters and the eval-budget histogram in a
    /// metrics registry (Prometheus exposition comes with it).
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut errors = 0u64;
        let mut crashed = 0u64;
        let mut rungs = [0u64; 4];
        for s in self.stats.values() {
            served += s.served;
            shed += s.shed;
            errors += s.errors;
            crashed += s.crashed;
            for (acc, r) in rungs.iter_mut().zip(s.rungs.iter()) {
                *acc += r;
            }
        }
        registry.counter_add("serve.requests", self.responses.len() as u64);
        registry.counter_add("serve.served", served);
        registry.counter_add("serve.shed", shed);
        registry.counter_add("serve.errors", errors + self.unknown_session);
        registry.counter_add("serve.unknown_session", self.unknown_session);
        registry.counter_add("serve.quarantines", self.quarantines);
        registry.counter_add("serve.crashed_requests", crashed);
        for (rung, count) in [Rung::Full, Rung::Myopic, Rung::Rule, Rung::LimpHome]
            .iter()
            .zip(rungs.iter())
        {
            registry.counter_add(&format!("serve.rung.{}", rung.name()), *count);
        }
        const BOUNDS: [f64; 7] = [100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0, 10000.0];
        for evals in self.served_evals() {
            registry.histogram_observe("serve.request_evals", &BOUNDS, evals as f64);
        }
        // Per-rung occupancy and shed depth, as histograms: where served
        // requests landed on the ladder (and what each rung cost), and
        // how deep the queue was when backpressure shed.
        for r in &self.responses {
            match &r.verdict {
                Verdict::Served { rung, evals, .. } => {
                    registry.histogram_observe(
                        &format!("serve.rung_evals.{}", rung.name()),
                        &BOUNDS,
                        *evals as f64,
                    );
                }
                Verdict::Shed { depth } => {
                    registry.histogram_observe(
                        "serve.shed_depth",
                        &crate::report::SHED_DEPTH_BOUNDS,
                        *depth as f64,
                    );
                }
                Verdict::Error(_) => {}
            }
        }
        // The span tree's per-phase eval histograms (empty unless the
        // serve call was profiled).
        if !self.span_tree.is_empty() {
            self.span_tree.populate_registry(registry, "serve.span.");
        }
    }
}

/// Encodes one causal request-trace JSONL line: admission (`queued` =
/// queue depth at enqueue), the ladder walk (`trail`, empty for
/// requests that never reached it), and the outcome. The trace id is
/// the request's stream slot.
fn trace_line(
    slot: usize,
    session: u64,
    index: u64,
    queued: usize,
    verdict: &Verdict,
    trail: &[(Rung, u64)],
    quarantined: bool,
) -> String {
    let mut obj = Obj::new()
        .u64("trace", slot as u64)
        .u64("session", session)
        .u64("request", index)
        .u64("queued", queued as u64);
    match verdict {
        Verdict::Served { rung, evals, .. } => {
            obj = obj
                .str("outcome", "served")
                .str("rung", rung.name())
                .u64("evals", *evals);
        }
        Verdict::Shed { depth } => {
            obj = obj.str("outcome", "shed").u64("depth", *depth as u64);
        }
        Verdict::Error(err) => {
            obj = obj.str("outcome", "error").str("error", err.code());
        }
    }
    if quarantined {
        obj = obj.bool("quarantined", true);
    }
    let rungs: Vec<String> = trail
        .iter()
        .map(|(rung, evals)| {
            Obj::new()
                .str("rung", rung.name())
                .u64("evals", *evals)
                .finish()
        })
        .collect();
    obj.raw_seq("trail", rungs.iter().map(String::as_str))
        .finish()
}

/// Encodes a request for a flight-recorder dump.
fn request_event(req: &Request) -> String {
    Obj::new()
        .str("event", "queued_request")
        .u64("index", req.index)
        .u64("session", req.session)
        .u64("epoch", req.epoch)
        .f64("soc", req.soc)
        .f64("speed_mps", req.speed_mps)
        .f64("accel_mps2", req.accel_mps2)
        .f64("grade", req.grade)
        .u64("budget_evals", req.budget_evals)
        .bool("crash", req.crash)
        .finish()
}

/// One session's tick batch: the session id, the session itself
/// (removed from the table for the duration of the fan-out), and its
/// admitted `(slot, request)` queue.
type SessionBatch = (u64, Session, Vec<(usize, Request)>);

/// Stores `response` at stream slot `slot`. Slots are sized to the
/// request count and slot ids come from stream position (never from a
/// client-supplied field), so the write is always in range; `get_mut`
/// keeps the path panic-free regardless, and a hole left by an
/// out-of-range id would still be caught by the final
/// every-request-answered check.
fn place(slots: &mut [Option<Response>], slot: usize, response: Response) {
    if let Some(s) = slots.get_mut(slot) {
        *s = Some(response);
    }
}

/// Serves `requests` (in order) against the fleet described by
/// `sessions`, returning one response per request plus per-session
/// degradation statistics. See the module docs for the tick pipeline
/// and the determinism argument. `Err` only on an invalid session spec
/// (a service-configuration error, not a request-reachable state).
pub fn serve(
    config: &ServeConfig,
    sessions: &[SessionSpec],
    requests: &[Request],
) -> Result<ServeOutput, ParamError> {
    let mut table: BTreeMap<u64, Session> = BTreeMap::new();
    let mut specs: BTreeMap<u64, SessionSpec> = BTreeMap::new();
    let mut stats: BTreeMap<u64, SessionStats> = BTreeMap::new();
    for spec in sessions {
        table.insert(spec.id, Session::new(*spec, 0)?);
        specs.insert(spec.id, *spec);
        stats.insert(spec.id, SessionStats::default());
    }

    let mut slots: Vec<Option<Response>> = vec![None; requests.len()];
    let mut unknown_session = 0u64;
    let mut quarantines = 0u64;
    let mut flight_dumps = Vec::new();
    let profile = config.profile;
    let mut span_tree = SpanTree::default();
    // Partial span trees salvaged from crashed tasks (see the execution
    // closure); a Mutex because workers may crash concurrently, merged
    // once at the end — merge order is irrelevant (commutative).
    let salvaged: std::sync::Mutex<SpanTree> = std::sync::Mutex::new(SpanTree::default());
    let mut trace_slots: Vec<Option<String>> = if profile {
        vec![None; requests.len()]
    } else {
        Vec::new()
    };
    let tick = config.tick_requests.max(1);

    for (tick_index, chunk) in requests.chunks(tick).enumerate() {
        // Stage 1: sequential admission into bounded per-session queues.
        // Slots are addressed by stream position, never by the
        // client-supplied index field. When profiling, admission is its
        // own caller-thread span window (execution tasks open their own
        // windows, inline at shards == 1, so the stages never share one).
        if profile {
            span::begin_task();
        }
        let mut queues: BTreeMap<u64, Vec<(usize, Request)>> = BTreeMap::new();
        {
            let _admission = span::enter("serve.admission");
            for (offset, req) in chunk.iter().enumerate() {
                let slot = tick_index * tick + offset;
                if !table.contains_key(&req.session) {
                    unknown_session += 1;
                    let verdict = Verdict::Error(RequestError::UnknownSession);
                    if let Some(t) = trace_slots.get_mut(slot) {
                        *t = Some(trace_line(
                            slot,
                            req.session,
                            req.index,
                            0,
                            &verdict,
                            &[],
                            false,
                        ));
                    }
                    place(
                        &mut slots,
                        slot,
                        Response {
                            index: req.index,
                            session: req.session,
                            verdict,
                        },
                    );
                    continue;
                }
                let queue = queues.entry(req.session).or_default();
                if queue.len() >= config.queue_capacity {
                    let verdict = Verdict::Shed { depth: queue.len() };
                    if let Some(s) = stats.get_mut(&req.session) {
                        s.record(&verdict);
                    }
                    if let Some(t) = trace_slots.get_mut(slot) {
                        *t = Some(trace_line(
                            slot,
                            req.session,
                            req.index,
                            queue.len(),
                            &verdict,
                            &[],
                            false,
                        ));
                    }
                    place(
                        &mut slots,
                        slot,
                        Response {
                            index: req.index,
                            session: req.session,
                            verdict,
                        },
                    );
                } else {
                    queue.push((slot, *req));
                }
            }
        }
        if profile {
            span_tree.merge(&span::take_tree());
        }

        // Stage 2: one task per session queue, fanned over the shards.
        // Queue contents are retained on the caller side so a panicked
        // task's requests can be replayed after the quarantine reseed.
        let mut batch: Vec<SessionBatch> = Vec::with_capacity(queues.len());
        let mut retained: Vec<(u64, Vec<(usize, Request)>)> = Vec::with_capacity(queues.len());
        for (id, reqs) in queues {
            if let Some(session) = table.remove(&id) {
                retained.push((id, reqs.clone()));
                batch.push((id, session, reqs));
            }
        }
        let ladder = &config.ladder;
        let outcomes = run_indexed_caught(config.shards, batch, |_, (id, mut session, reqs)| {
            if profile {
                span::begin_task();
            }
            // A crashing session burns real evals before its panic; the
            // catch below salvages that partial span tree so the profile
            // accounts for every eval the counters saw, then resumes the
            // unwind for the executor's quarantine path. The partial
            // work is a pure function of the session's request batch, so
            // the salvaged tree is shard-invariant like everything else.
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                reqs.iter()
                    .map(|(slot, req)| {
                        let verdict = session.process(req, ladder);
                        let trail = if profile {
                            session.last_trail().to_vec()
                        } else {
                            Vec::new()
                        };
                        (*slot, req.index, verdict, trail)
                    })
                    .collect::<Vec<(usize, u64, Verdict, Vec<(Rung, u64)>)>>()
            }));
            let verdicts = match caught {
                Ok(v) => v,
                Err(payload) => {
                    if profile {
                        if let Ok(mut s) = salvaged.lock() {
                            s.merge(&span::take_tree());
                        }
                    }
                    std::panic::resume_unwind(payload);
                }
            };
            let tree = if profile {
                Some(span::take_tree())
            } else {
                None
            };
            (id, session, verdicts, tree)
        });

        // Stage 3: sequential scatter + quarantine of panicked tasks.
        for (outcome, (id, reqs)) in outcomes.into_iter().zip(retained) {
            match outcome {
                RunOutcome::Ok((id_back, session, verdicts, tree)) => {
                    if let Some(tree) = tree {
                        span_tree.merge(&tree);
                    }
                    table.insert(id_back, session);
                    for (pos, (slot, index, verdict, trail)) in verdicts.into_iter().enumerate() {
                        if let Some(s) = stats.get_mut(&id_back) {
                            s.record(&verdict);
                        }
                        if let Some(t) = trace_slots.get_mut(slot) {
                            *t = Some(trace_line(
                                slot, id_back, index, pos, &verdict, &trail, false,
                            ));
                        }
                        place(
                            &mut slots,
                            slot,
                            Response {
                                index,
                                session: id_back,
                                verdict,
                            },
                        );
                    }
                }
                RunOutcome::Panicked { message } => {
                    // The quarantine replay runs inline on this thread,
                    // so its ladder spans nest under `serve.quarantine`
                    // in a window of their own.
                    if profile {
                        span::begin_task();
                    }
                    let quarantine_span = span::enter("serve.quarantine");
                    quarantines += 1;
                    let stat = stats.entry(id).or_default();
                    stat.quarantines += 1;
                    let mut attempt = stat.quarantines;
                    // Dump the doomed queue through the flight recorder
                    // before replaying it.
                    let mut recorder = FlightRecorder::new(reqs.len().max(1));
                    for (_, req) in &reqs {
                        recorder.record(request_event(req));
                    }
                    let first = reqs.first().map(|(_, r)| r.index).unwrap_or(0);
                    if let Some(dump) = recorder.dump(
                        &format!("session-{id}"),
                        tick_index as u64,
                        "session_panic",
                        first,
                    ) {
                        flight_dumps.push(dump);
                    }
                    flight_dumps.push(
                        Obj::new()
                            .str("event", "quarantine")
                            .u64("session", id)
                            .u64("attempt", attempt)
                            .str("panic", &message)
                            .u64("first_request", first)
                            .u64("queued", reqs.len() as u64)
                            .finish(),
                    );
                    // Rebuild with a retry-tagged reseed and replay the
                    // queue with per-request crash isolation.
                    let spec = specs.get(&id).copied();
                    let mut session = match spec {
                        Some(spec) => Some(Session::new(spec, attempt)?),
                        None => None,
                    };
                    for (pos, (slot, req)) in reqs.iter().enumerate() {
                        let mut trail: Vec<(Rung, u64)> = Vec::new();
                        let verdict = match session.take() {
                            Some(live) => {
                                let mut replayed =
                                    run_indexed_caught(1, vec![(live, *req)], |_, (mut s, r)| {
                                        let v = s.process(&r, ladder);
                                        (s, v)
                                    });
                                match replayed.pop() {
                                    Some(RunOutcome::Ok((s, v))) => {
                                        if profile {
                                            trail = s.last_trail().to_vec();
                                        }
                                        session = Some(s);
                                        v
                                    }
                                    _ => {
                                        // Crashed again: reseed once more
                                        // for the rest of the queue.
                                        attempt += 1;
                                        stat.quarantines += 1;
                                        quarantines += 1;
                                        session = match spec {
                                            Some(spec) => Some(Session::new(spec, attempt)?),
                                            None => None,
                                        };
                                        Verdict::Error(RequestError::SessionCrashed)
                                    }
                                }
                            }
                            None => Verdict::Error(RequestError::UnknownSession),
                        };
                        stat.record(&verdict);
                        if let Some(t) = trace_slots.get_mut(*slot) {
                            *t = Some(trace_line(
                                *slot, id, req.index, pos, &verdict, &trail, true,
                            ));
                        }
                        place(
                            &mut slots,
                            *slot,
                            Response {
                                index: req.index,
                                session: id,
                                verdict,
                            },
                        );
                    }
                    if let Some(live) = session {
                        table.insert(id, live);
                    }
                    drop(quarantine_span);
                    if profile {
                        span_tree.merge(&span::take_tree());
                    }
                }
            }
        }
    }

    let responses: Vec<Response> = slots
        .into_iter()
        // hevlint::allow(panic, every admitted request is placed exactly once by construction (unknown-session answer, shed, batch verdict, or quarantine replay); a hole would be a service bug, never a request-reachable state)
        .map(|slot| slot.expect("request left without a response"))
        .collect();
    // Every request that got a response also got a trace line by the
    // same placement sites; `flatten` keeps the path panic-free.
    let request_traces: Vec<String> = trace_slots.into_iter().flatten().collect();
    span_tree.merge(&salvaged.into_inner().unwrap_or_default());
    Ok(ServeOutput {
        responses,
        stats,
        unknown_session,
        quarantines,
        flight_dumps,
        span_tree,
        request_traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: u64) -> Vec<SessionSpec> {
        (0..n)
            .map(|id| SessionSpec {
                id,
                seed: 100 + id,
                severity: 0.5,
                initial_soc: 0.6,
            })
            .collect()
    }

    fn request(index: u64, session: u64) -> Request {
        Request {
            index,
            session,
            epoch: 0,
            soc: 0.6,
            speed_mps: 8.0,
            accel_mps2: 0.1,
            grade: 0.0,
            budget_evals: 600,
            crash: false,
        }
    }

    fn config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            queue_capacity: 2,
            tick_requests: 8,
            ladder: LadderConfig::default(),
            profile: false,
        }
    }

    #[test]
    fn every_request_gets_exactly_one_response_in_order() {
        let requests: Vec<Request> = (0..12).map(|i| request(i, i % 3)).collect();
        let out = serve(&config(), &specs(3), &requests).unwrap();
        assert_eq!(out.responses.len(), 12);
        for (i, r) in out.responses.iter().enumerate() {
            assert_eq!(r.index, i as u64);
        }
    }

    #[test]
    fn hostile_index_fields_cannot_misroute_responses() {
        // The index field is a client echo; slotting uses stream
        // position, so wild indices neither panic nor collide.
        let mut requests: Vec<Request> = (0..4).map(|i| request(i, 0)).collect();
        requests[1].index = u64::MAX;
        requests[2].index = 0;
        let out = serve(&config(), &specs(1), &requests).unwrap();
        assert_eq!(out.responses.len(), 4);
        assert_eq!(out.responses[1].index, u64::MAX);
        assert_eq!(out.responses[2].index, 0);
    }

    #[test]
    fn burst_overload_sheds_deterministically() {
        // 8 requests to one session in one tick with capacity 2: 2 are
        // admitted, 6 shed — a pure function of queue depth.
        let requests: Vec<Request> = (0..8).map(|i| request(i, 0)).collect();
        let out = serve(&config(), &specs(1), &requests).unwrap();
        let shed: Vec<u64> = out
            .responses
            .iter()
            .filter(|r| matches!(r.verdict, Verdict::Shed { .. }))
            .map(|r| r.index)
            .collect();
        assert_eq!(shed, (2..8).collect::<Vec<u64>>());
        assert_eq!(out.stats[&0].shed, 6);
        assert_eq!(out.stats[&0].served, 2);
    }

    #[test]
    fn unknown_sessions_are_answered_not_dropped() {
        let requests = vec![request(0, 0), request(1, 77)];
        let out = serve(&config(), &specs(1), &requests).unwrap();
        assert_eq!(out.unknown_session, 1);
        assert_eq!(
            out.responses[1].verdict,
            Verdict::Error(RequestError::UnknownSession)
        );
    }

    #[test]
    fn crash_is_quarantined_and_the_shard_keeps_serving() {
        let mut requests: Vec<Request> = (0..6).map(|i| request(i, i % 2)).collect();
        requests[2].crash = true; // session 0's second request
        let out = serve(&config(), &specs(2), &requests).unwrap();
        assert_eq!(out.responses.len(), 6);
        assert!(out.quarantines >= 1);
        assert_eq!(
            out.responses[2].verdict,
            Verdict::Error(RequestError::SessionCrashed)
        );
        // Each session sees three requests in the tick with queue
        // capacity 2, so the third (indices 4 and 5) is shed. Session 1
        // is untouched by the crash; session 0's request 0 was replayed
        // on the reseeded incarnation and served.
        for r in &out.responses {
            match r.index {
                2 => {}
                4 | 5 => assert!(matches!(r.verdict, Verdict::Shed { .. }), "{:?}", r.verdict),
                _ => assert!(
                    matches!(r.verdict, Verdict::Served { .. }),
                    "request {} got {:?}",
                    r.index,
                    r.verdict
                ),
            }
        }
        assert!(!out.flight_dumps.is_empty());
        assert!(out.flight_dumps[0].contains("\"event\":\"flight_dump\""));
    }

    #[test]
    fn shard_counts_do_not_change_the_response_stream() {
        let mut requests: Vec<Request> = (0..24).map(|i| request(i, i % 4)).collect();
        requests[5].crash = true;
        requests[11].speed_mps = f64::NAN;
        let reference = serve(
            &ServeConfig {
                shards: 1,
                ..config()
            },
            &specs(4),
            &requests,
        )
        .unwrap();
        for shards in [2, 4] {
            let out = serve(&ServeConfig { shards, ..config() }, &specs(4), &requests).unwrap();
            assert_eq!(out.response_stream(), reference.response_stream());
            assert_eq!(out.stats, reference.stats);
            assert_eq!(out.flight_dumps, reference.flight_dumps);
        }
    }

    #[test]
    fn profiling_is_shard_invariant_and_off_by_default() {
        let mut requests: Vec<Request> = (0..24).map(|i| request(i, i % 4)).collect();
        requests[5].crash = true;
        let plain = serve(
            &ServeConfig {
                shards: 1,
                ..config()
            },
            &specs(4),
            &requests,
        )
        .unwrap();
        assert!(plain.span_tree.is_empty());
        assert!(plain.request_traces.is_empty());
        let profiled = |shards| {
            serve(
                &ServeConfig {
                    shards,
                    profile: true,
                    ..config()
                },
                &specs(4),
                &requests,
            )
            .unwrap()
        };
        let reference = profiled(1);
        // Profiling never changes what is served.
        assert_eq!(reference.response_stream(), plain.response_stream());
        // One causal trace per request; served traces carry the rung walk.
        assert_eq!(reference.request_traces.len(), requests.len());
        let served = reference
            .request_traces
            .iter()
            .find(|l| l.contains("\"outcome\":\"served\""))
            .unwrap();
        assert!(served.contains("\"trail\":[{\"rung\":"), "{served}");
        // The crashed request's replay verdict is traced as quarantined.
        assert!(reference
            .request_traces
            .iter()
            .any(|l| l.contains("\"quarantined\":true")));
        assert!(!reference.span_tree.is_empty());
        for shards in [2, 4] {
            let out = profiled(shards);
            assert_eq!(out.span_tree.to_json(), reference.span_tree.to_json());
            assert_eq!(out.request_traces, reference.request_traces);
        }
    }

    #[test]
    fn metrics_cover_the_outcome_counts() {
        let mut requests: Vec<Request> = (0..10).map(|i| request(i, 0)).collect();
        requests[9].soc = 9.0;
        let out = serve(&config(), &specs(1), &requests).unwrap();
        let mut registry = MetricsRegistry::new();
        out.record_metrics(&mut registry);
        let prom = registry.to_prometheus("hev_");
        assert!(prom.contains("hev_serve_requests 10"));
        assert!(prom.contains("hev_serve_shed"));
        assert!(prom.contains("hev_serve_request_evals_count"));
    }
}
