//! The versioned serve-bench report and degradation CSV.
//!
//! The report splits into a deterministic core — request/verdict
//! counts, per-rung totals, shed rate, and eval-budget percentiles, all
//! pure functions of the response stream — and wall-clock throughput
//! fields the Harness-role driver adds on top. CI compares only the
//! deterministic artifacts (response stream and degradation CSV) across
//! shard counts.

use crate::service::ServeOutput;
use crate::wire::Verdict;
use hev_trace::json::{self, Obj};

/// Version of the serve-bench report schema. v2 added the tail
/// percentiles (`eval_p90`, `eval_p999`) and the shed-depth histogram;
/// [`ServeReport::from_json`] reads v1 lines back with those defaulted.
pub const SERVE_REPORT_VERSION: u32 = 2;

/// Shed-depth histogram bounds (queue depth at shed time); the counts
/// array carries one extra overflow bucket.
pub const SHED_DEPTH_BOUNDS: [f64; 4] = [1.0, 2.0, 4.0, 8.0];

/// The deterministic serve-bench summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Sessions in the fleet.
    pub sessions: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Requests served with a control.
    pub served: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Requests answered with a typed error (including unknown ids).
    pub errors: u64,
    /// Served counts per ladder rung (full, myopic, rule, limp-home).
    pub rung_counts: [u64; 4],
    /// Quarantine events.
    pub quarantines: u64,
    /// Requests answered `session_crashed`.
    pub crashed_requests: u64,
    /// Shed fraction of all requests.
    pub shed_rate: f64,
    /// Median evals per served request (nearest-rank).
    pub eval_p50: u64,
    /// 90th-percentile evals per served request (nearest-rank).
    pub eval_p90: u64,
    /// 99th-percentile evals per served request (nearest-rank).
    pub eval_p99: u64,
    /// 99.9th-percentile evals per served request (nearest-rank).
    pub eval_p999: u64,
    /// Shed-count histogram over [`SHED_DEPTH_BOUNDS`] (queue depth at
    /// shed time), last bucket = overflow. All zero when nothing shed.
    pub shed_depth_counts: [u64; 5],
}

/// Nearest-rank percentile of a sorted slice (0 for an empty one).
/// Integer percent keeps the rank computation in exact integer math.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100);
    // hevlint::allow(panic::reachable-from-serve, rank is clamped to [1, len] and len > 0 was checked above)
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Nearest-rank permille (pct ‰) of a sorted slice — the p99.9 needs
/// finer than integer-percent resolution, in the same exact math.
fn permille(sorted: &[u64], pm: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pm * sorted.len()).div_ceil(1000);
    // hevlint::allow(panic::reachable-from-serve, rank is clamped to [1, len] and len > 0 was checked above)
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeReport {
    /// Summarizes one serve run over a fleet of `sessions` vehicles.
    pub fn from_output(output: &ServeOutput, sessions: u64) -> Self {
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut errors = output.unknown_session;
        let mut crashed = 0u64;
        let mut rung_counts = [0u64; 4];
        for s in output.stats.values() {
            served += s.served;
            shed += s.shed;
            errors += s.errors;
            crashed += s.crashed;
            for (acc, r) in rung_counts.iter_mut().zip(s.rungs.iter()) {
                *acc += r;
            }
        }
        let requests = output.responses.len() as u64;
        let mut evals = output.served_evals();
        evals.sort_unstable();
        let mut shed_depth_counts = [0u64; 5];
        for r in &output.responses {
            if let Verdict::Shed { depth } = r.verdict {
                let bucket = SHED_DEPTH_BOUNDS
                    .iter()
                    .position(|&b| depth as f64 <= b)
                    .unwrap_or(SHED_DEPTH_BOUNDS.len());
                if let Some(slot) = shed_depth_counts.get_mut(bucket) {
                    *slot += 1;
                }
            }
        }
        Self {
            sessions,
            requests,
            served,
            shed,
            errors,
            rung_counts,
            quarantines: output.quarantines,
            crashed_requests: crashed,
            shed_rate: if requests == 0 {
                0.0
            } else {
                shed as f64 / requests as f64
            },
            eval_p50: percentile(&evals, 50),
            eval_p90: percentile(&evals, 90),
            eval_p99: percentile(&evals, 99),
            eval_p999: permille(&evals, 999),
            shed_depth_counts,
        }
    }

    /// Reads a report line back (any schema version up to the current
    /// one). Fields absent from older versions default: a v1 line reads
    /// back with zeroed `eval_p90`/`eval_p999` and an all-zero
    /// shed-depth histogram. Returns `None` on a malformed line or an
    /// unknown (newer) version.
    pub fn from_json(line: &str) -> Option<Self> {
        let version = scan_u64(line, "version")?;
        if version == 0 || version > u64::from(SERVE_REPORT_VERSION) {
            return None;
        }
        let mut shed_depth_counts = [0u64; 5];
        if let Some(counts) = scan_u64_array(line, "shed_depth") {
            if counts.len() != shed_depth_counts.len() {
                return None;
            }
            shed_depth_counts.copy_from_slice(&counts);
        }
        Some(Self {
            sessions: scan_u64(line, "sessions")?,
            requests: scan_u64(line, "requests")?,
            served: scan_u64(line, "served")?,
            shed: scan_u64(line, "shed")?,
            errors: scan_u64(line, "errors")?,
            rung_counts: [
                scan_u64(line, "rung_full")?,
                scan_u64(line, "rung_myopic")?,
                scan_u64(line, "rung_rule")?,
                scan_u64(line, "rung_limp_home")?,
            ],
            quarantines: scan_u64(line, "quarantines")?,
            crashed_requests: scan_u64(line, "crashed_requests")?,
            shed_rate: scan_f64(line, "shed_rate")?,
            eval_p50: scan_u64(line, "eval_p50")?,
            eval_p90: scan_u64(line, "eval_p90").unwrap_or(0),
            eval_p99: scan_u64(line, "eval_p99")?,
            eval_p999: scan_u64(line, "eval_p999").unwrap_or(0),
            shed_depth_counts,
        })
    }

    /// The deterministic report fields as one JSON object body (no
    /// braces), so the driver can append wall-clock fields.
    fn core(&self) -> Obj {
        Obj::new()
            .u64("version", u64::from(SERVE_REPORT_VERSION))
            .u64("sessions", self.sessions)
            .u64("requests", self.requests)
            .u64("served", self.served)
            .u64("shed", self.shed)
            .u64("errors", self.errors)
            .u64("rung_full", self.rung_counts[0])
            .u64("rung_myopic", self.rung_counts[1])
            .u64("rung_rule", self.rung_counts[2])
            .u64("rung_limp_home", self.rung_counts[3])
            .u64("quarantines", self.quarantines)
            .u64("crashed_requests", self.crashed_requests)
            .f64("shed_rate", self.shed_rate)
            .u64("eval_p50", self.eval_p50)
            .u64("eval_p90", self.eval_p90)
            .u64("eval_p99", self.eval_p99)
            .u64("eval_p999", self.eval_p999)
            .raw("shed_depth", &json::u64_array(&self.shed_depth_counts))
    }

    /// The deterministic report as one JSON line.
    pub fn to_json(&self) -> String {
        self.core().finish()
    }

    /// The report plus the driver's wall-clock throughput fields.
    pub fn to_json_with_throughput(&self, wall_s: f64) -> String {
        let requests_per_sec = if wall_s > 0.0 {
            self.requests as f64 / wall_s
        } else {
            0.0
        };
        let sessions_per_sec = if wall_s > 0.0 {
            self.sessions as f64 / wall_s
        } else {
            0.0
        };
        self.core()
            .f64("wall_s", wall_s)
            .f64("requests_per_sec", requests_per_sec)
            .f64("sessions_per_sec", sessions_per_sec)
            .finish()
    }
}

/// The raw text of a top-level `"key":` value in a report line (the
/// report emitter nests nothing but the shed-depth array, so scanning
/// to the next `,`/`}` is exact for scalar fields).
fn scan_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest.get(..end)
}

fn scan_u64(line: &str, key: &str) -> Option<u64> {
    scan_raw(line, key)?.parse().ok()
}

fn scan_f64(line: &str, key: &str) -> Option<f64> {
    scan_raw(line, key)?.parse().ok()
}

fn scan_u64_array(line: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":[");
    let start = line.find(&pat)? + pat.len();
    let rest = line.get(start..)?;
    let body = rest.get(..rest.find(']')?)?;
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|x| x.parse().ok()).collect()
}

/// Header of the per-session degradation CSV.
pub const DEGRADATION_CSV_HEADER: &str =
    "session,requests,served,shed,errors,full,myopic,rule,limp_home,quarantines,crashed";

/// The per-session degradation rows, in session-id order.
pub fn degradation_csv_rows(output: &ServeOutput) -> Vec<String> {
    output
        .stats
        .iter()
        .map(|(id, s)| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                id,
                s.requests,
                s.served,
                s.shed,
                s.errors,
                s.rungs[0],
                s.rungs[1],
                s.rungs[2],
                s.rungs[3],
                s.quarantines,
                s.crashed
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{build_requests, build_sessions, FleetConfig};
    use crate::service::{serve, ServeConfig};

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[10], 50), 10);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 99), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 100), 4);
    }

    #[test]
    fn report_counts_reconcile_with_the_stream() {
        let fleet = FleetConfig {
            sessions: 3,
            requests: 40,
            seed: 11,
            chaos: false,
        };
        let sessions = build_sessions(&fleet);
        let requests = build_requests(&fleet, sessions.len() as u64);
        let out = serve(&ServeConfig::default(), &sessions, &requests).unwrap();
        let report = ServeReport::from_output(&out, sessions.len() as u64);
        assert_eq!(report.requests, 40);
        assert_eq!(report.served + report.shed + report.errors, report.requests);
        assert_eq!(report.rung_counts.iter().sum::<u64>(), report.served);
        let json = report.to_json();
        assert!(json.starts_with("{\"version\":2,"));
        assert!(json.contains("\"eval_p50\":"));
        assert!(json.contains("\"eval_p90\":"));
        assert!(json.contains("\"eval_p999\":"));
        assert!(json.contains("\"shed_depth\":["));
        let with_wall = report.to_json_with_throughput(2.0);
        assert!(with_wall.contains("\"wall_s\":2.0"));
        assert!(with_wall.contains("\"requests_per_sec\":20.0"));
    }

    #[test]
    fn reports_round_trip_through_json() {
        let fleet = FleetConfig {
            sessions: 2,
            requests: 30,
            seed: 7,
            chaos: true,
        };
        let sessions = build_sessions(&fleet);
        let requests = build_requests(&fleet, sessions.len() as u64);
        let config = ServeConfig {
            queue_capacity: 2,
            tick_requests: 12,
            ..ServeConfig::default()
        };
        let out = serve(&config, &sessions, &requests).unwrap();
        let report = ServeReport::from_output(&out, sessions.len() as u64);
        let back = ServeReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back, report);
        // Driver-appended wall-clock fields don't confuse the reader.
        let back = ServeReport::from_json(&report.to_json_with_throughput(1.5)).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn v1_report_lines_read_back_with_defaulted_v2_fields() {
        // A verbatim v1 line (pre-p90/p999, no shed-depth histogram),
        // pinned so the reader keeps accepting archived reports.
        let v1 = "{\"version\":1,\"sessions\":4,\"requests\":64,\"served\":60,\"shed\":3,\
                  \"errors\":1,\"rung_full\":50,\"rung_myopic\":6,\"rung_rule\":3,\
                  \"rung_limp_home\":1,\"quarantines\":2,\"crashed_requests\":1,\
                  \"shed_rate\":0.046875,\"eval_p50\":2400,\"eval_p99\":3900}";
        let report = ServeReport::from_json(v1).unwrap();
        assert_eq!(report.requests, 64);
        assert_eq!(report.rung_counts, [50, 6, 3, 1]);
        assert_eq!(report.eval_p50, 2400);
        assert_eq!(report.eval_p99, 3900);
        // v2 fields default.
        assert_eq!(report.eval_p90, 0);
        assert_eq!(report.eval_p999, 0);
        assert_eq!(report.shed_depth_counts, [0; 5]);
        // Unknown (newer) versions and malformed lines are rejected.
        assert!(ServeReport::from_json(&v1.replace("\"version\":1", "\"version\":9")).is_none());
        assert!(ServeReport::from_json("{\"version\":2}").is_none());
    }

    #[test]
    fn degradation_rows_cover_every_session() {
        let fleet = FleetConfig {
            sessions: 3,
            requests: 30,
            seed: 5,
            chaos: false,
        };
        let sessions = build_sessions(&fleet);
        let requests = build_requests(&fleet, sessions.len() as u64);
        let out = serve(&ServeConfig::default(), &sessions, &requests).unwrap();
        let rows = degradation_csv_rows(&out);
        assert_eq!(rows.len(), 3);
        assert_eq!(DEGRADATION_CSV_HEADER.split(',').count(), 11);
        for row in &rows {
            assert_eq!(row.split(',').count(), 11);
        }
    }
}
