//! The versioned serve-bench report and degradation CSV.
//!
//! The report splits into a deterministic core — request/verdict
//! counts, per-rung totals, shed rate, and eval-budget percentiles, all
//! pure functions of the response stream — and wall-clock throughput
//! fields the Harness-role driver adds on top. CI compares only the
//! deterministic artifacts (response stream and degradation CSV) across
//! shard counts.

use crate::service::ServeOutput;
use hev_trace::json::Obj;

/// Version of the serve-bench report schema.
pub const SERVE_REPORT_VERSION: u32 = 1;

/// The deterministic serve-bench summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Sessions in the fleet.
    pub sessions: u64,
    /// Requests in the stream.
    pub requests: u64,
    /// Requests served with a control.
    pub served: u64,
    /// Requests shed by backpressure.
    pub shed: u64,
    /// Requests answered with a typed error (including unknown ids).
    pub errors: u64,
    /// Served counts per ladder rung (full, myopic, rule, limp-home).
    pub rung_counts: [u64; 4],
    /// Quarantine events.
    pub quarantines: u64,
    /// Requests answered `session_crashed`.
    pub crashed_requests: u64,
    /// Shed fraction of all requests.
    pub shed_rate: f64,
    /// Median evals per served request (nearest-rank).
    pub eval_p50: u64,
    /// 99th-percentile evals per served request (nearest-rank).
    pub eval_p99: u64,
}

/// Nearest-rank percentile of a sorted slice (0 for an empty one).
/// Integer percent keeps the rank computation in exact integer math.
fn percentile(sorted: &[u64], pct: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len()).div_ceil(100);
    // hevlint::allow(panic::reachable-from-serve, rank is clamped to [1, len] and len > 0 was checked above)
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl ServeReport {
    /// Summarizes one serve run over a fleet of `sessions` vehicles.
    pub fn from_output(output: &ServeOutput, sessions: u64) -> Self {
        let mut served = 0u64;
        let mut shed = 0u64;
        let mut errors = output.unknown_session;
        let mut crashed = 0u64;
        let mut rung_counts = [0u64; 4];
        for s in output.stats.values() {
            served += s.served;
            shed += s.shed;
            errors += s.errors;
            crashed += s.crashed;
            for (acc, r) in rung_counts.iter_mut().zip(s.rungs.iter()) {
                *acc += r;
            }
        }
        let requests = output.responses.len() as u64;
        let mut evals = output.served_evals();
        evals.sort_unstable();
        Self {
            sessions,
            requests,
            served,
            shed,
            errors,
            rung_counts,
            quarantines: output.quarantines,
            crashed_requests: crashed,
            shed_rate: if requests == 0 {
                0.0
            } else {
                shed as f64 / requests as f64
            },
            eval_p50: percentile(&evals, 50),
            eval_p99: percentile(&evals, 99),
        }
    }

    /// The deterministic report fields as one JSON object body (no
    /// braces), so the driver can append wall-clock fields.
    fn core(&self) -> Obj {
        Obj::new()
            .u64("version", u64::from(SERVE_REPORT_VERSION))
            .u64("sessions", self.sessions)
            .u64("requests", self.requests)
            .u64("served", self.served)
            .u64("shed", self.shed)
            .u64("errors", self.errors)
            .u64("rung_full", self.rung_counts[0])
            .u64("rung_myopic", self.rung_counts[1])
            .u64("rung_rule", self.rung_counts[2])
            .u64("rung_limp_home", self.rung_counts[3])
            .u64("quarantines", self.quarantines)
            .u64("crashed_requests", self.crashed_requests)
            .f64("shed_rate", self.shed_rate)
            .u64("eval_p50", self.eval_p50)
            .u64("eval_p99", self.eval_p99)
    }

    /// The deterministic report as one JSON line.
    pub fn to_json(&self) -> String {
        self.core().finish()
    }

    /// The report plus the driver's wall-clock throughput fields.
    pub fn to_json_with_throughput(&self, wall_s: f64) -> String {
        let requests_per_sec = if wall_s > 0.0 {
            self.requests as f64 / wall_s
        } else {
            0.0
        };
        let sessions_per_sec = if wall_s > 0.0 {
            self.sessions as f64 / wall_s
        } else {
            0.0
        };
        self.core()
            .f64("wall_s", wall_s)
            .f64("requests_per_sec", requests_per_sec)
            .f64("sessions_per_sec", sessions_per_sec)
            .finish()
    }
}

/// Header of the per-session degradation CSV.
pub const DEGRADATION_CSV_HEADER: &str =
    "session,requests,served,shed,errors,full,myopic,rule,limp_home,quarantines,crashed";

/// The per-session degradation rows, in session-id order.
pub fn degradation_csv_rows(output: &ServeOutput) -> Vec<String> {
    output
        .stats
        .iter()
        .map(|(id, s)| {
            format!(
                "{},{},{},{},{},{},{},{},{},{},{}",
                id,
                s.requests,
                s.served,
                s.shed,
                s.errors,
                s.rungs[0],
                s.rungs[1],
                s.rungs[2],
                s.rungs[3],
                s.quarantines,
                s.crashed
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fleet::{build_requests, build_sessions, FleetConfig};
    use crate::service::{serve, ServeConfig};

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[10], 50), 10);
        assert_eq!(percentile(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile(&[1, 2, 3, 4], 99), 4);
        assert_eq!(percentile(&[1, 2, 3, 4], 100), 4);
    }

    #[test]
    fn report_counts_reconcile_with_the_stream() {
        let fleet = FleetConfig {
            sessions: 3,
            requests: 40,
            seed: 11,
            chaos: false,
        };
        let sessions = build_sessions(&fleet);
        let requests = build_requests(&fleet, sessions.len() as u64);
        let out = serve(&ServeConfig::default(), &sessions, &requests).unwrap();
        let report = ServeReport::from_output(&out, sessions.len() as u64);
        assert_eq!(report.requests, 40);
        assert_eq!(report.served + report.shed + report.errors, report.requests);
        assert_eq!(report.rung_counts.iter().sum::<u64>(), report.served);
        let json = report.to_json();
        assert!(json.starts_with("{\"version\":1,"));
        assert!(json.contains("\"eval_p50\":"));
        let with_wall = report.to_json_with_throughput(2.0);
        assert!(with_wall.contains("\"wall_s\":2.0"));
        assert!(with_wall.contains("\"requests_per_sec\":20.0"));
    }

    #[test]
    fn degradation_rows_cover_every_session() {
        let fleet = FleetConfig {
            sessions: 3,
            requests: 30,
            seed: 5,
            chaos: false,
        };
        let sessions = build_sessions(&fleet);
        let requests = build_requests(&fleet, sessions.len() as u64);
        let out = serve(&ServeConfig::default(), &sessions, &requests).unwrap();
        let rows = degradation_csv_rows(&out);
        assert_eq!(rows.len(), 3);
        assert_eq!(DEGRADATION_CSV_HEADER.split(',').count(), 11);
        for row in &rows {
            assert_eq!(row.split(',').count(), 11);
        }
    }
}
