//! A fault-hardened, deterministic fleet control service for the joint
//! HEV controller.
//!
//! ROADMAP item 2 frames the DAC'15 controller as a fleet service:
//! many concurrent vehicle sessions send `(state, demand)` requests and
//! receive controls. This crate is that serving layer, built around the
//! workspace's robustness primitives rather than a network stack — an
//! in-process request/response transport with a versioned wire format
//! ([`wire`]), sharded over the deterministic scoped-thread executor
//! from `hev_control::harness`:
//!
//! * **Bounded admission with deterministic shedding** ([`service`]) —
//!   per-session queues with a fixed capacity; a request arriving at a
//!   full queue is shed with an explicit backpressure verdict. Shedding
//!   is a pure function of queue depth and request order, never of wall
//!   clock or thread timing.
//! * **Deadline budgets in virtual time** ([`ladder`]) — each request
//!   carries an eval-count budget (the `hev_trace::evals` counter is
//!   the service's clock); the responder walks a degradation ladder —
//!   full inner-opt resolve → myopic argmax → rule-based → limp-home —
//!   and always produces a feasible, finite control.
//! * **Crash isolation and quarantine** ([`service`]) — a panicking
//!   session is caught by the `run_indexed_caught` executor, its queued
//!   requests are dumped through a flight recorder, and the session is
//!   rebuilt with a `RETRY_SEED_TAG`-derived reseed while the shard
//!   keeps serving every other session.
//! * **Hostile-input handling** ([`wire`]) — NaN states, out-of-range
//!   SOC, unknown session ids, and stale epochs are typed errors, never
//!   panics.
//! * **Seeded synthetic fleets with chaos mode** ([`fleet`]) —
//!   heterogeneous vehicles riding the existing fault plans, plus
//!   injected session crashes, malformed requests, and burst overload.
//!
//! # Determinism contract
//!
//! Same seed + same request order ⇒ byte-identical response stream,
//! degradation report, and shed log at every shard count. Admission and
//! response scattering are sequential; the parallel unit is a
//! per-session batch whose content is shard-independent, and eval
//! budgets are differenced within a single task (each task runs
//! entirely on one worker thread).
//!
//! # Examples
//!
//! ```
//! use hev_serve::{serve, FleetConfig, ServeConfig};
//!
//! let fleet = FleetConfig { sessions: 2, requests: 8, seed: 7, chaos: false };
//! let sessions = hev_serve::fleet::build_sessions(&fleet);
//! let requests = hev_serve::fleet::build_requests(&fleet, sessions.len() as u64);
//! let output = serve(&ServeConfig::default(), &sessions, &requests)?;
//! assert_eq!(output.responses.len(), 8);
//! # Ok::<(), hev_model::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod driver;
pub mod fleet;
pub mod ladder;
pub mod report;
pub mod service;
pub mod session;
pub mod wire;

pub use driver::{run_serve_bench, ServeBenchResult};
pub use fleet::FleetConfig;
pub use ladder::{LadderConfig, LadderOutcome};
pub use report::{ServeReport, SERVE_REPORT_VERSION, SHED_DEPTH_BOUNDS};
pub use service::{serve, ServeConfig, ServeOutput, SessionStats};
pub use session::{Session, SessionSpec};
pub use wire::{Request, RequestError, Response, Rung, Verdict, WIRE_VERSION};
