//! The versioned in-process wire format: requests, typed request
//! errors, verdicts, and the JSONL response encoding.
//!
//! The service has no network dependency — a "wire" here is a `Vec` of
//! [`Request`]s in and a `Vec` of [`Response`]s out — but the format is
//! versioned ([`WIRE_VERSION`]) and every response encodes to one JSON
//! line through the deterministic `hev_trace::json` writer, so response
//! streams can be compared byte-for-byte across shard counts.
//!
//! Hostile inputs are part of the format: a request with a NaN state, an
//! out-of-range SOC, an unknown session id, or a stale epoch yields a
//! typed [`RequestError`] verdict, never a panic.

use hev_model::ControlInput;
use hev_trace::json::Obj;

/// Version of the request/response wire format.
pub const WIRE_VERSION: u32 = 1;

/// A control request from one fleet vehicle session.
///
/// `epoch` pins the request to a session incarnation: `0` means
/// unpinned (always accepted); a non-zero value must match the
/// session's current epoch, which starts at 1 and increments every
/// quarantine reseed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Global index in the request stream (the response keeps it, so
    /// streams can be joined and audited).
    pub index: u64,
    /// Target session id.
    pub session: u64,
    /// Session epoch the client believes (0 = unpinned).
    pub epoch: u64,
    /// Client-reported state of charge, fraction in `[0, 1]`.
    pub soc: f64,
    /// Requested vehicle speed, m/s.
    pub speed_mps: f64,
    /// Requested acceleration, m/s².
    pub accel_mps2: f64,
    /// Road grade, rad.
    pub grade: f64,
    /// Per-request deadline budget in peek-equivalent evaluations
    /// (0 = use the service default).
    pub budget_evals: u64,
    /// Chaos-mode flag: deliberately crash the session worker while
    /// handling this request (exercises the quarantine path).
    pub crash: bool,
}

/// Why a request could not be served: every hostile or stale input maps
/// to one of these, and the service responds with it instead of
/// panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// A state field was NaN or infinite.
    NonFiniteState {
        /// Which request field was non-finite.
        field: &'static str,
    },
    /// The reported SOC was outside `[0, 1]`.
    SocOutOfRange,
    /// No session with the requested id exists.
    UnknownSession,
    /// The request pinned an epoch that is not the session's current one
    /// (the session was quarantine-reseeded since the client last saw it).
    StaleEpoch {
        /// The epoch the request pinned.
        got: u64,
        /// The session's current epoch.
        current: u64,
    },
    /// The session crashed while handling this request (twice: once in
    /// the sharded batch and again on the quarantined replay), so no
    /// control could be produced even after a reseed.
    SessionCrashed,
    /// Even the limp-home tier could not produce a feasible step for
    /// this demand on this plant.
    Unsteppable,
}

impl RequestError {
    /// A stable snake_case code for logs and wire encoding.
    pub fn code(&self) -> &'static str {
        match self {
            Self::NonFiniteState { .. } => "non_finite_state",
            Self::SocOutOfRange => "soc_out_of_range",
            Self::UnknownSession => "unknown_session",
            Self::StaleEpoch { .. } => "stale_epoch",
            Self::SessionCrashed => "session_crashed",
            Self::Unsteppable => "unsteppable",
        }
    }
}

impl std::fmt::Display for RequestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteState { field } => write!(f, "non-finite request field {field}"),
            Self::SocOutOfRange => write!(f, "reported SOC outside [0, 1]"),
            Self::UnknownSession => write!(f, "unknown session id"),
            Self::StaleEpoch { got, current } => {
                write!(f, "stale epoch {got} (session is at epoch {current})")
            }
            Self::SessionCrashed => write!(f, "session crashed while handling the request"),
            Self::Unsteppable => write!(f, "no feasible control even at the limp-home tier"),
        }
    }
}

impl std::error::Error for RequestError {}

/// One tier of the degradation ladder, in descending order of fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rung {
    /// Full inner-optimized resolve over the whole current ladder.
    Full,
    /// Myopic argmax over a coarse current subset.
    Myopic,
    /// The rule-based baseline's decision.
    Rule,
    /// The limp-home feasibility search.
    LimpHome,
}

impl Rung {
    /// Ladder position, 0 (full) through 3 (limp-home).
    pub fn index(&self) -> usize {
        match self {
            Self::Full => 0,
            Self::Myopic => 1,
            Self::Rule => 2,
            Self::LimpHome => 3,
        }
    }

    /// A stable snake_case name for logs and wire encoding.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::Myopic => "myopic",
            Self::Rule => "rule",
            Self::LimpHome => "limp_home",
        }
    }
}

/// How the service disposed of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Verdict {
    /// A control was produced and committed to the session's plant.
    Served {
        /// The control handed back to the vehicle.
        control: ControlInput,
        /// The ladder tier that produced it.
        rung: Rung,
        /// Peek-equivalent evaluations spent on this request.
        evals: u64,
        /// Plant SOC after committing the step.
        soc_after: f64,
    },
    /// Backpressure: the session's admission queue was full.
    Shed {
        /// Queue depth observed at admission time.
        depth: usize,
    },
    /// The request was malformed, stale, or unserviceable.
    Error(RequestError),
}

/// One response: the request's identity plus the service's verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Response {
    /// The request's global stream index.
    pub index: u64,
    /// The session the request addressed.
    pub session: u64,
    /// The disposition.
    pub verdict: Verdict,
}

impl Response {
    /// Encodes the response as one deterministic JSON line (no trailing
    /// newline).
    pub fn to_jsonl(&self) -> String {
        let obj = Obj::new()
            .u64("v", u64::from(WIRE_VERSION))
            .u64("index", self.index)
            .u64("session", self.session);
        match &self.verdict {
            Verdict::Served {
                control,
                rung,
                evals,
                soc_after,
            } => obj
                .str("kind", "served")
                .str("rung", rung.name())
                .u64("evals", *evals)
                .f64("i_bat_a", control.battery_current_a)
                .u64("gear", control.gear as u64)
                .f64("p_aux_w", control.p_aux_w)
                .f64("soc_after", *soc_after)
                .finish(),
            Verdict::Shed { depth } => obj.str("kind", "shed").u64("depth", *depth as u64).finish(),
            Verdict::Error(err) => {
                let obj = obj.str("kind", "error").str("error", err.code());
                match err {
                    RequestError::NonFiniteState { field } => obj.str("field", field).finish(),
                    RequestError::StaleEpoch { got, current } => {
                        obj.u64("got", *got).u64("current", *current).finish()
                    }
                    _ => obj.finish(),
                }
            }
        }
    }
}

/// Validates a request's state fields: every float must be finite and
/// the reported SOC must lie in `[0, 1]`.
pub fn validate_request(req: &Request) -> Result<(), RequestError> {
    for (field, v) in [
        ("soc", req.soc),
        ("speed_mps", req.speed_mps),
        ("accel_mps2", req.accel_mps2),
        ("grade", req.grade),
    ] {
        if !v.is_finite() {
            return Err(RequestError::NonFiniteState { field });
        }
    }
    if !(0.0..=1.0).contains(&req.soc) {
        return Err(RequestError::SocOutOfRange);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request() -> Request {
        Request {
            index: 3,
            session: 1,
            epoch: 0,
            soc: 0.6,
            speed_mps: 12.0,
            accel_mps2: 0.4,
            grade: 0.0,
            budget_evals: 0,
            crash: false,
        }
    }

    #[test]
    fn well_formed_request_validates() {
        assert_eq!(validate_request(&request()), Ok(()));
    }

    #[test]
    fn non_finite_fields_are_named() {
        for (field, req) in [
            (
                "soc",
                Request {
                    soc: f64::NAN,
                    ..request()
                },
            ),
            (
                "speed_mps",
                Request {
                    speed_mps: f64::INFINITY,
                    ..request()
                },
            ),
            (
                "accel_mps2",
                Request {
                    accel_mps2: f64::NEG_INFINITY,
                    ..request()
                },
            ),
            (
                "grade",
                Request {
                    grade: f64::NAN,
                    ..request()
                },
            ),
        ] {
            assert_eq!(
                validate_request(&req),
                Err(RequestError::NonFiniteState { field })
            );
        }
    }

    #[test]
    fn out_of_range_soc_is_rejected() {
        for soc in [-0.1, 1.1, 7.0] {
            let req = Request { soc, ..request() };
            assert_eq!(validate_request(&req), Err(RequestError::SocOutOfRange));
        }
        for soc in [0.0, 1.0] {
            let req = Request { soc, ..request() };
            assert_eq!(validate_request(&req), Ok(()));
        }
    }

    #[test]
    fn rung_order_matches_ladder_indices() {
        let rungs = [Rung::Full, Rung::Myopic, Rung::Rule, Rung::LimpHome];
        for (i, r) in rungs.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert!(Rung::Full < Rung::Myopic && Rung::Rule < Rung::LimpHome);
    }

    #[test]
    fn responses_encode_every_verdict_kind() {
        let served = Response {
            index: 0,
            session: 2,
            verdict: Verdict::Served {
                control: ControlInput {
                    battery_current_a: 20.0,
                    gear: 1,
                    p_aux_w: 600.0,
                },
                rung: Rung::Myopic,
                evals: 700,
                soc_after: 0.59,
            },
        };
        assert_eq!(
            served.to_jsonl(),
            "{\"v\":1,\"index\":0,\"session\":2,\"kind\":\"served\",\"rung\":\"myopic\",\
             \"evals\":700,\"i_bat_a\":20.0,\"gear\":1,\"p_aux_w\":600.0,\"soc_after\":0.59}"
        );
        let shed = Response {
            index: 1,
            session: 2,
            verdict: Verdict::Shed { depth: 4 },
        };
        assert_eq!(
            shed.to_jsonl(),
            "{\"v\":1,\"index\":1,\"session\":2,\"kind\":\"shed\",\"depth\":4}"
        );
        let error = Response {
            index: 2,
            session: 9,
            verdict: Verdict::Error(RequestError::StaleEpoch { got: 9, current: 2 }),
        };
        assert_eq!(
            error.to_jsonl(),
            "{\"v\":1,\"index\":2,\"session\":9,\"kind\":\"error\",\"error\":\"stale_epoch\",\
             \"got\":9,\"current\":2}"
        );
    }

    #[test]
    fn error_codes_and_display_are_stable() {
        let errs: [RequestError; 6] = [
            RequestError::NonFiniteState { field: "soc" },
            RequestError::SocOutOfRange,
            RequestError::UnknownSession,
            RequestError::StaleEpoch { got: 1, current: 2 },
            RequestError::SessionCrashed,
            RequestError::Unsteppable,
        ];
        let codes: Vec<&str> = errs.iter().map(RequestError::code).collect();
        assert_eq!(
            codes,
            [
                "non_finite_state",
                "soc_out_of_range",
                "unknown_session",
                "stale_epoch",
                "session_crashed",
                "unsteppable"
            ]
        );
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
