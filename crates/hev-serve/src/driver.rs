//! The serve-bench driver: the only wall-clock-aware layer of the
//! crate (Harness role under `hevlint`).
//!
//! Everything below this module is deterministic; the driver builds the
//! fleet, times the serve call, and packages the deterministic
//! artifacts (response stream, degradation CSV, Prometheus exposition,
//! flight dumps) next to the wall-clock throughput report. The `repro
//! serve-bench` CLI target is a thin file-writing wrapper around
//! [`run_serve_bench`].

use crate::fleet::{build_requests, build_sessions, FleetConfig};
use crate::report::{degradation_csv_rows, ServeReport, DEGRADATION_CSV_HEADER};
use crate::service::{serve, ServeConfig};
use hev_model::ParamError;
use hev_trace::{HealthSummary, MetricsRegistry};
use std::time::Instant;

/// Everything one serve-bench run produced.
#[derive(Debug, Clone)]
pub struct ServeBenchResult {
    /// The versioned JSON report including wall-clock throughput
    /// (NOT byte-stable across machines — compare the stream instead).
    pub report_json: String,
    /// The deterministic response stream (JSONL, one line per request).
    pub response_stream: String,
    /// The deterministic per-session degradation CSV rows (no header).
    pub degradation_rows: Vec<String>,
    /// The degradation CSV header.
    pub degradation_header: &'static str,
    /// Prometheus exposition of the serve counters and histograms.
    pub prometheus: String,
    /// The service health summary derived from the same registry.
    pub health_json: String,
    /// Flight-recorder dumps emitted by quarantines.
    pub flight_dumps: Vec<String>,
    /// Merged span tree of the serve call (empty unless
    /// [`ServeConfig::profile`] was set).
    pub span_tree: hev_trace::SpanTree,
    /// Causal request-trace JSONL lines, one per request (empty unless
    /// [`ServeConfig::profile`] was set).
    pub request_traces: Vec<String>,
    /// The deterministic report (for assertions and further encoding).
    pub report: ServeReport,
}

/// Runs one serve-bench: builds the seeded fleet, serves the stream
/// over `shards` workers, and returns every artifact.
pub fn run_serve_bench(
    fleet: &FleetConfig,
    config: &ServeConfig,
) -> Result<ServeBenchResult, ParamError> {
    let sessions = build_sessions(fleet);
    let requests = build_requests(fleet, sessions.len() as u64);
    let t0 = Instant::now();
    let output = serve(config, &sessions, &requests)?;
    let wall_s = t0.elapsed().as_secs_f64();

    let report = ServeReport::from_output(&output, sessions.len() as u64);
    let mut registry = MetricsRegistry::new();
    output.record_metrics(&mut registry);
    let health = HealthSummary::from_registry(&registry, "serve.");

    Ok(ServeBenchResult {
        report_json: report.to_json_with_throughput(wall_s),
        response_stream: output.response_stream(),
        degradation_rows: degradation_csv_rows(&output),
        degradation_header: DEGRADATION_CSV_HEADER,
        prometheus: registry.to_prometheus("hev_"),
        health_json: health.to_json(),
        flight_dumps: output.flight_dumps,
        span_tree: output.span_tree,
        request_traces: output.request_traces,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_bench_produces_every_artifact() {
        let fleet = FleetConfig {
            sessions: 3,
            requests: 32,
            seed: 9,
            chaos: true,
        };
        let result = run_serve_bench(&fleet, &ServeConfig::default()).unwrap();
        assert_eq!(result.response_stream.lines().count(), 32);
        assert!(result.report_json.contains("\"wall_s\":"));
        assert!(result.prometheus.contains("hev_serve_requests"));
        assert!(result.health_json.contains("\"state\":"));
        assert_eq!(result.degradation_rows.len(), 3);
    }

    #[test]
    fn report_json_reads_back_to_the_deterministic_report() {
        let fleet = FleetConfig {
            sessions: 2,
            requests: 24,
            seed: 5,
            chaos: false,
        };
        let result = run_serve_bench(&fleet, &ServeConfig::default()).unwrap();
        // The throughput wrapper only appends wall-clock fields, which
        // the reader ignores, so the read-back equals the deterministic
        // report exactly.
        let read = ServeReport::from_json(&result.report_json).expect("report line parses");
        assert_eq!(read, result.report);
    }

    #[test]
    fn deterministic_artifacts_are_shard_invariant() {
        let fleet = FleetConfig {
            sessions: 4,
            requests: 64,
            seed: 13,
            chaos: true,
        };
        let base = ServeConfig::default();
        let one = run_serve_bench(
            &fleet,
            &ServeConfig {
                shards: 1,
                ..base.clone()
            },
        )
        .unwrap();
        let four = run_serve_bench(&fleet, &ServeConfig { shards: 4, ..base }).unwrap();
        assert_eq!(one.response_stream, four.response_stream);
        assert_eq!(one.degradation_rows, four.degradation_rows);
        assert_eq!(one.prometheus, four.prometheus);
        assert_eq!(one.report, four.report);
    }
}
