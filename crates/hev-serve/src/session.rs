//! One vehicle session: a plant, its fault trajectory, and the ladder
//! state needed to serve its requests.
//!
//! A session owns a [`ParallelHev`] degraded and perturbed by a
//! [`FaultPlan`] at the session's severity, so a synthetic fleet is
//! heterogeneous: each vehicle has its own seed, initial SOC, capacity
//! fade, sensor noise, and derating windows. Sessions are rebuilt after
//! a quarantine with a [`RETRY_SEED_TAG`]-derived reseed, exactly like
//! the training harness's crash-tolerant retries, and each rebuild
//! advances the session's epoch so clients pinning the old epoch get a
//! typed stale-epoch error instead of silently talking to a different
//! incarnation.

use crate::ladder::{self, LadderConfig};
use crate::wire::{self, Request, RequestError, Rung, Verdict};
use hev_control::sim::HevPolicy;
use hev_control::{
    split_seed, FaultConfig, FaultPlan, ResolveScratch, RuleBasedController, RETRY_SEED_TAG,
};
use hev_model::{HevParams, ParallelHev, ParamError};
use hev_trace::evals;

/// The fault-plan episode span, s: fault windows are drawn inside it
/// and a session serves its whole life as one episode.
const EPISODE_SPAN_S: f64 = 600.0;

/// Immutable description of one fleet vehicle session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Session id (the wire address).
    pub id: u64,
    /// Master seed of the session's fault trajectory; reseeds derive
    /// from it via [`RETRY_SEED_TAG`].
    pub seed: u64,
    /// Fault severity (0 = healthy; see `FaultConfig::at_severity`).
    pub severity: f64,
    /// Initial battery state of charge.
    pub initial_soc: f64,
}

/// One live session: spec plus all mutable serving state.
#[derive(Debug, Clone)]
pub struct Session {
    spec: SessionSpec,
    /// Reseed count (0 = the original incarnation).
    attempt: u64,
    /// Committed plant steps (drives the session's virtual clock).
    seq: u64,
    hev: ParallelHev,
    faults: FaultPlan,
    rule: RuleBasedController,
    scratch: ResolveScratch,
    /// The rung-by-rung `(tier, evals)` walk of the most recent ladder
    /// decision — the causal trace of the last processed request.
    last_trail: Vec<(Rung, u64)>,
}

impl Session {
    /// Builds incarnation `attempt` of the session: attempt 0 uses the
    /// spec's seed directly, later attempts derive a quarantine-retry
    /// seed with the harness's [`RETRY_SEED_TAG`] idiom so retry streams
    /// stay disjoint from the original's.
    pub fn new(spec: SessionSpec, attempt: u64) -> Result<Self, ParamError> {
        let seed = if attempt == 0 {
            spec.seed
        } else {
            split_seed(spec.seed ^ RETRY_SEED_TAG, attempt)
        };
        let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), spec.initial_soc)?;
        let mut faults = FaultPlan::new(FaultConfig::at_severity(spec.severity), seed);
        faults.degrade_plant(&mut hev);
        faults.begin_episode(EPISODE_SPAN_S);
        let mut rule = RuleBasedController::default();
        rule.begin_episode();
        Ok(Self {
            spec,
            attempt,
            seq: 0,
            hev,
            faults,
            rule,
            scratch: ResolveScratch::new(),
            last_trail: Vec::new(),
        })
    }

    /// The `(tier, evals spent)` walk of the last processed request, in
    /// ladder order. Empty until a request reaches the ladder; error
    /// verdicts that never reach it leave it empty too.
    pub fn last_trail(&self) -> &[(Rung, u64)] {
        &self.last_trail
    }

    /// The session's spec.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The session's epoch: 1 for the original incarnation, +1 per
    /// quarantine reseed. Requests pinning a different non-zero epoch
    /// get a typed stale-epoch error.
    pub fn epoch(&self) -> u64 {
        self.attempt + 1
    }

    /// The reseed count.
    pub fn attempt(&self) -> u64 {
        self.attempt
    }

    /// Committed plant steps so far.
    pub fn steps(&self) -> u64 {
        self.seq
    }

    /// Current plant state of charge.
    pub fn soc(&self) -> f64 {
        self.hev.soc()
    }

    /// Serves one request against this session's plant.
    ///
    /// Hostile inputs (non-finite state, out-of-range SOC, stale epoch)
    /// return typed error verdicts. A chaos-flagged request panics
    /// deliberately — the shard executor catches it and quarantines the
    /// session. Otherwise the degradation ladder produces a control
    /// under the request's eval budget and the step is committed; a
    /// demand even limp-home cannot step yields
    /// [`RequestError::Unsteppable`] with the plant untouched.
    pub fn process(&mut self, req: &Request, config: &LadderConfig) -> Verdict {
        self.last_trail.clear();
        if let Err(err) = wire::validate_request(req) {
            return Verdict::Error(err);
        }
        if req.epoch != 0 && req.epoch != self.epoch() {
            return Verdict::Error(RequestError::StaleEpoch {
                got: req.epoch,
                current: self.epoch(),
            });
        }
        if req.crash {
            // hevlint::allow(panic, chaos-mode fault injection: this deliberate panic exercises the quarantine path and is always caught by the shard executor's run_indexed_caught)
            panic!(
                "chaos: injected session crash (session {}, request {})",
                req.session, req.index
            );
        }

        let dt = config.reward.dt_s;
        let time_s = self.seq as f64 * dt;
        let true_demand = self.hev.demand(req.speed_mps, req.accel_mps2, req.grade);
        // The sensor fault layer perturbs what the rule tier observes;
        // feasibility and the committed step always use the truth.
        let (obs_soc, _obs_demand) = self.faults.sensor(time_s, self.hev.soc(), &true_demand);
        self.hev
            .set_motor_derate(self.faults.motor_derate_at(time_s));
        let ctx = self.hev.step_context(&true_demand);
        let budget = if req.budget_evals == 0 {
            config.budget_evals
        } else {
            req.budget_evals
        };

        let start = evals::count();
        let outcome = ladder::decide(
            &self.hev,
            &ctx,
            &true_demand,
            config,
            &mut self.rule,
            &mut self.scratch,
            budget,
            self.seq as usize,
            time_s,
            obs_soc,
        );
        if let Some(out) = &outcome {
            self.last_trail.extend(
                out.trail
                    .iter()
                    .copied()
                    .zip(out.trail_evals.iter().copied()),
            );
        }
        match outcome {
            Some(out) => match self.hev.step_with_context(&ctx, &out.control, dt) {
                Ok(step) => {
                    self.seq += 1;
                    Verdict::Served {
                        control: out.control,
                        rung: out.rung,
                        evals: evals::since(start),
                        soc_after: step.soc_after,
                    }
                }
                Err(_) => Verdict::Error(RequestError::Unsteppable),
            },
            None => Verdict::Error(RequestError::Unsteppable),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Rung;

    fn spec() -> SessionSpec {
        SessionSpec {
            id: 0,
            seed: 42,
            severity: 1.0,
            initial_soc: 0.6,
        }
    }

    fn request(index: u64) -> Request {
        Request {
            index,
            session: 0,
            epoch: 0,
            soc: 0.6,
            speed_mps: 10.0,
            accel_mps2: 0.2,
            grade: 0.0,
            budget_evals: 0,
            crash: false,
        }
    }

    #[test]
    fn serves_and_advances_the_plant() {
        let mut s = Session::new(spec(), 0).unwrap();
        match s.process(&request(0), &LadderConfig::default()) {
            Verdict::Served {
                control, soc_after, ..
            } => {
                assert!(control.is_finite());
                assert!(soc_after.is_finite());
            }
            other => panic!("expected served, got {other:?}"),
        }
        assert_eq!(s.steps(), 1);
        assert!(s.soc().is_finite());
    }

    #[test]
    fn malformed_requests_get_typed_errors_and_leave_the_plant_alone() {
        let mut s = Session::new(spec(), 0).unwrap();
        let nan = Request {
            speed_mps: f64::NAN,
            ..request(0)
        };
        assert_eq!(
            s.process(&nan, &LadderConfig::default()),
            Verdict::Error(RequestError::NonFiniteState { field: "speed_mps" })
        );
        let bad_soc = Request {
            soc: 7.0,
            ..request(1)
        };
        assert_eq!(
            s.process(&bad_soc, &LadderConfig::default()),
            Verdict::Error(RequestError::SocOutOfRange)
        );
        assert_eq!(s.steps(), 0);
    }

    #[test]
    fn stale_epochs_are_rejected_and_wildcard_epochs_pass() {
        let mut s = Session::new(spec(), 0).unwrap();
        assert_eq!(s.epoch(), 1);
        let stale = Request {
            epoch: 999,
            ..request(0)
        };
        assert_eq!(
            s.process(&stale, &LadderConfig::default()),
            Verdict::Error(RequestError::StaleEpoch {
                got: 999,
                current: 1
            })
        );
        let pinned = Request {
            epoch: 1,
            ..request(1)
        };
        assert!(matches!(
            s.process(&pinned, &LadderConfig::default()),
            Verdict::Served { .. }
        ));
    }

    #[test]
    fn reseeded_incarnations_advance_the_epoch_and_diverge() {
        let s0 = Session::new(spec(), 0).unwrap();
        let s1 = Session::new(spec(), 1).unwrap();
        assert_eq!(s0.epoch(), 1);
        assert_eq!(s1.epoch(), 2);
        // Same spec, same attempt ⇒ identical rebuild (the determinism
        // the quarantine replay relies on).
        let mut a = Session::new(spec(), 1).unwrap();
        let mut b = Session::new(spec(), 1).unwrap();
        let config = LadderConfig::default();
        for i in 0..3 {
            assert_eq!(
                a.process(&request(i), &config),
                b.process(&request(i), &config)
            );
        }
    }

    #[test]
    fn crash_flag_panics_for_the_quarantine_path() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s = Session::new(spec(), 0).unwrap();
            let crash = Request {
                crash: true,
                ..request(0)
            };
            s.process(&crash, &LadderConfig::default())
        }));
        assert!(result.is_err());
    }

    #[test]
    fn tight_budget_requests_serve_from_lower_rungs() {
        let mut s = Session::new(spec(), 0).unwrap();
        let tight = Request {
            budget_evals: 100,
            ..request(0)
        };
        match s.process(&tight, &LadderConfig::default()) {
            Verdict::Served { rung, evals, .. } => {
                assert!(rung.index() >= Rung::Rule.index(), "rung {rung:?}");
                assert!(evals < 2000, "evals {evals}");
            }
            other => panic!("expected served, got {other:?}"),
        }
    }
}
