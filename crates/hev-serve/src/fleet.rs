//! Seeded synthetic fleets and the chaos-mode request generator.
//!
//! A fleet is heterogeneous by construction: each session draws its own
//! seed from a [`SeedSequence`] child, cycles through fault severities
//! (healthy through aggressively degraded), and starts at its own SOC.
//! Requests come from one sequential RNG stream — fully deterministic
//! for a given `(seed, chaos)` pair — with budgets cycled across the
//! ladder tiers so every rung is exercised.
//!
//! Chaos mode layers three attack shapes on top:
//!
//! * **malformed requests** — NaN speeds, out-of-range SOC, unknown
//!   session ids, and stale epoch pins, rotated deterministically;
//! * **session crashes** — the [`Request::crash`] flag, exercising the
//!   quarantine/reseed path;
//! * **burst overload** — runs of consecutive requests aimed at one hot
//!   session, overflowing its bounded admission queue so shedding is
//!   observable.

use crate::session::SessionSpec;
use crate::wire::Request;
use hev_control::harness::{split_seed, SeedSequence};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fleet-generation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of vehicle sessions.
    pub sessions: usize,
    /// Number of requests in the stream.
    pub requests: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether to inject crashes, malformed requests, and bursts.
    pub chaos: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            sessions: 8,
            requests: 256,
            seed: 2015,
            chaos: false,
        }
    }
}

/// Fault severities cycled across the fleet (healthy → degraded).
const SEVERITIES: [f64; 4] = [0.0, 0.5, 1.0, 1.5];

/// Domain-separation tag for the request stream's RNG ("REQS").
const REQUEST_STREAM_TAG: u64 = 0x5245_5153;

/// Consecutive requests aimed at the hot session during a chaos burst.
const BURST_LEN: usize = 16;

/// Builds the fleet's session specs: ids `0..sessions`, each with its
/// own seed child, a cycled fault severity, and a seeded initial SOC in
/// `[0.45, 0.75)`.
pub fn build_sessions(config: &FleetConfig) -> Vec<SessionSpec> {
    let seq = SeedSequence::new(config.seed);
    (0..config.sessions)
        .map(|k| {
            let seed = seq.child(k as u64);
            let mut rng = StdRng::seed_from_u64(split_seed(seed, 1));
            SessionSpec {
                id: k as u64,
                seed,
                // hevlint::allow(panic::reachable-from-serve, modulo-bounded lookup into a non-empty const table)
                severity: SEVERITIES[k % SEVERITIES.len()],
                initial_soc: rng.gen_range(0.45..0.75),
            }
        })
        .collect()
}

/// Builds the request stream over session ids `0..session_count`: one
/// sequential RNG stream, budgets cycled across the ladder tiers, and —
/// in chaos mode — deterministic malformed/crash/burst injections.
pub fn build_requests(config: &FleetConfig, session_count: u64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(split_seed(config.seed, REQUEST_STREAM_TAG));
    // 0 = service default; the rest exercise full, myopic, rule, and
    // limp-home entry costs.
    let budgets: [u64; 5] = [0, 6000, 1500, 600, 80];
    let mut requests = Vec::with_capacity(config.requests);
    let mut burst_left = 0usize;
    let mut burst_target = 0u64;
    for i in 0..config.requests {
        // Fixed draws per iteration keep the stream position a function
        // of the index alone.
        let session_draw = rng.gen_range(0..session_count.max(1));
        let speed = rng.gen_range(0.0..30.0);
        let accel = rng.gen_range(-1.5..1.5);
        let grade = rng.gen_range(-0.05..0.05);
        let soc = rng.gen_range(0.2..0.9);

        let mut session = session_draw;
        if config.chaos {
            if burst_left > 0 {
                session = burst_target;
                burst_left -= 1;
            } else if i % 97 == 0 && i > 0 {
                burst_target = session_draw;
                burst_left = BURST_LEN;
                session = burst_target;
            }
        }

        let mut req = Request {
            index: i as u64,
            session,
            epoch: 0,
            soc,
            speed_mps: speed,
            accel_mps2: accel,
            grade,
            // hevlint::allow(panic::reachable-from-serve, modulo-bounded lookup into a non-empty local array)
            budget_evals: budgets[i % budgets.len()],
            crash: false,
        };

        if config.chaos {
            if i % 53 == 7 {
                // Rotate the malformed shapes deterministically.
                match (i / 53) % 4 {
                    0 => req.speed_mps = f64::NAN,
                    1 => req.soc = 7.0,
                    2 => req.session = 1_000_000 + i as u64,
                    _ => req.epoch = 999,
                }
            }
            if i % 101 == 13 {
                req.crash = true;
            }
        }
        requests.push(req);
    }
    requests
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleets_are_heterogeneous_and_deterministic() {
        let config = FleetConfig {
            sessions: 8,
            ..FleetConfig::default()
        };
        let a = build_sessions(&config);
        let b = build_sessions(&config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        // Distinct seeds, cycled severities, varied SOCs.
        assert!(a.windows(2).all(|w| w[0].seed != w[1].seed));
        assert_eq!(a[0].severity, 0.0);
        assert_eq!(a[5].severity, 0.5);
        assert!(a.iter().any(|s| s.initial_soc != a[0].initial_soc));
        for s in &a {
            assert!((0.45..0.75).contains(&s.initial_soc));
        }
    }

    #[test]
    fn request_streams_are_deterministic_and_indexed_in_order() {
        let config = FleetConfig {
            sessions: 4,
            requests: 300,
            seed: 7,
            chaos: true,
        };
        let a = build_requests(&config, 4);
        let b = build_requests(&config, 4);
        // Chaos streams contain NaN fields, so compare the debug
        // rendering (NaN != NaN under PartialEq).
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.index, i as u64);
        }
    }

    #[test]
    fn chaos_mode_injects_each_attack_shape() {
        let config = FleetConfig {
            sessions: 4,
            requests: 600,
            seed: 7,
            chaos: true,
        };
        let reqs = build_requests(&config, 4);
        assert!(reqs.iter().any(|r| r.crash));
        assert!(reqs.iter().any(|r| r.speed_mps.is_nan()));
        assert!(reqs.iter().any(|r| r.soc > 1.0));
        assert!(reqs.iter().any(|r| r.session >= 4));
        assert!(reqs.iter().any(|r| r.epoch == 999));
        // A burst: BURST_LEN + 1 consecutive requests on one session.
        let burst = reqs[97..97 + BURST_LEN + 1]
            .iter()
            .all(|r| r.session == reqs[97].session || r.session >= 1_000_000);
        assert!(burst, "expected a burst starting at request 97");
    }

    #[test]
    fn clean_mode_injects_nothing() {
        let config = FleetConfig {
            sessions: 4,
            requests: 600,
            seed: 7,
            chaos: false,
        };
        let reqs = build_requests(&config, 4);
        assert!(reqs.iter().all(|r| !r.crash));
        assert!(reqs.iter().all(|r| r.speed_mps.is_finite()));
        assert!(reqs.iter().all(|r| (0.0..=1.0).contains(&r.soc)));
        assert!(reqs.iter().all(|r| r.session < 4 && r.epoch == 0));
    }
}
