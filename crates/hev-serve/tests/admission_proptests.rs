//! Property-based tests of the admission-control invariants: whatever a
//! (possibly hostile) request stream contains, the service answers every
//! request exactly once with a well-formed verdict, shed responses carry
//! the backpressure depth that triggered them, and the degradation
//! ladder only ever walks downward within a request.

use hev_control::{HevPolicy, ResolveScratch, RuleBasedController};
use hev_model::{HevParams, ParallelHev};
use hev_serve::fleet::{build_sessions, FleetConfig};
use hev_serve::ladder::{decide, LadderConfig};
use hev_serve::{serve, Request, RequestError, Rung, ServeConfig, Verdict};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sessions in the test fleet; generated request session ids range twice
/// as far, so roughly half the stream targets unknown sessions.
const SESSIONS: usize = 3;

/// A seeded hostile request stream: unknown sessions, stale epochs,
/// out-of-range SOC, NaN speeds, arbitrary echo indices, zero budgets,
/// and crash flags all appear with meaningful probability.
fn hostile_requests(seed: u64, len: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let soc = if rng.gen_range(0..5) == 0 {
                rng.gen_range(-0.5..1.5)
            } else {
                rng.gen_range(0.25..0.85)
            };
            let speed_mps = if rng.gen_range(0..10) == 0 {
                f64::NAN
            } else {
                rng.gen_range(0.0..30.0)
            };
            let budget_evals = if rng.gen_range(0..4) == 0 {
                0
            } else {
                rng.gen_range(0..8_000)
            };
            Request {
                index: rng.gen(),
                session: rng.gen_range(0..(SESSIONS as u64) * 2),
                epoch: rng.gen_range(0..4),
                soc,
                speed_mps,
                accel_mps2: rng.gen_range(-2.0..2.0),
                grade: rng.gen_range(-0.08..0.08),
                budget_evals,
                crash: rng.gen_range(0..20) == 0,
            }
        })
        .collect()
}

fn fleet() -> FleetConfig {
    FleetConfig {
        sessions: SESSIONS,
        requests: 0,
        seed: 11,
        chaos: false,
    }
}

proptest! {
    /// Exactly one response per request, in stream order, whatever the
    /// stream contains — including crash flags (quarantined), unknown
    /// sessions, and malformed states. No request is dropped, none is
    /// answered twice, and hostile `index` fields cannot misroute a
    /// response (they are echoed, never used for placement).
    #[test]
    fn every_request_gets_exactly_one_response(
        seed in 0u64..1_000_000,
        len in 1usize..40,
        queue_capacity in 1usize..5,
        shards in 1usize..4,
    ) {
        let requests = hostile_requests(seed, len);
        let sessions = build_sessions(&fleet());
        let config = ServeConfig {
            shards,
            queue_capacity,
            tick_requests: 16,
            ..ServeConfig::default()
        };
        let output = serve(&config, &sessions, &requests).unwrap();
        prop_assert_eq!(output.responses.len(), requests.len());
        for (req, resp) in requests.iter().zip(&output.responses) {
            prop_assert_eq!(resp.index, req.index);
            prop_assert_eq!(resp.session, req.session);
        }
        // The disposition counters reconcile: every request is exactly
        // one of served / shed / typed error (unknown sessions count as
        // errors).
        let served: u64 = output.stats.values().map(|s| s.served).sum();
        let shed: u64 = output.stats.values().map(|s| s.shed).sum();
        let errors: u64 =
            output.stats.values().map(|s| s.errors).sum::<u64>() + output.unknown_session;
        prop_assert_eq!(served + shed + errors, requests.len() as u64);
    }

    /// Every verdict is well-formed: shed responses carry a depth at or
    /// beyond the configured capacity, served responses carry finite
    /// controls and a finite post-step SOC, and unknown sessions are
    /// always the typed `UnknownSession` error.
    #[test]
    fn verdicts_are_well_formed(
        seed in 0u64..1_000_000,
        len in 1usize..40,
        queue_capacity in 1usize..5,
    ) {
        let requests = hostile_requests(seed, len);
        let sessions = build_sessions(&fleet());
        let config = ServeConfig {
            shards: 2,
            queue_capacity,
            tick_requests: 16,
            ..ServeConfig::default()
        };
        let output = serve(&config, &sessions, &requests).unwrap();
        for (req, resp) in requests.iter().zip(&output.responses) {
            match &resp.verdict {
                Verdict::Served { control, soc_after, .. } => {
                    prop_assert!(control.is_finite());
                    prop_assert!(soc_after.is_finite());
                    prop_assert!(req.session < SESSIONS as u64);
                }
                Verdict::Shed { depth } => {
                    prop_assert!(*depth >= queue_capacity);
                }
                Verdict::Error(e) => {
                    if req.session >= SESSIONS as u64 {
                        prop_assert_eq!(*e, RequestError::UnknownSession);
                    }
                }
            }
        }
    }

    /// The ladder only walks downward within a request: the attempted
    /// trail is strictly descending in rung index, ends at the serving
    /// rung, and a budget below a tier's entry cost never lands on it.
    #[test]
    fn ladder_trail_is_monotone(
        budget in 0u64..10_000,
        speed in 0.0f64..25.0,
        accel in -1.5f64..1.5,
        soc in 0.45f64..0.75,
    ) {
        let hev = ParallelHev::new(HevParams::default_parallel_hev(), soc).unwrap();
        let demand = hev.demand(speed, accel, 0.0);
        let ctx = hev.step_context(&demand);
        let config = LadderConfig::default();
        let mut rule = RuleBasedController::default();
        rule.begin_episode();
        let mut scratch = ResolveScratch::new();
        let out = decide(
            &hev, &ctx, &demand, &config, &mut rule, &mut scratch, budget, 0, 0.0, soc,
        );
        if let Some(out) = out {
            for pair in out.trail.windows(2) {
                prop_assert!(
                    pair[0].index() < pair[1].index(),
                    "trail escalated: {:?}",
                    out.trail
                );
            }
            prop_assert_eq!(*out.trail.last().unwrap(), out.rung);
            // Entry gating: a sub-full budget can never serve Full.
            if budget < config.full_cost {
                prop_assert!(out.rung > Rung::Full);
            }
        }
    }
}
