//! Auxiliary systems (HVAC, lighting, electronics) and their utility
//! function (paper §2.1.5).
//!
//! The total auxiliary operating power `p_aux` is a *control variable*;
//! the uni-modal (quasi-concave) utility `f_aux(p_aux)` expresses how
//! desirable a power level is — too little means a dark, uncomfortable
//! cabin; too much means over-cooling/over-heating. The paper's evaluation
//! centers the utility at 600 W.

use crate::error::{InfeasibleControl, ParamError};
use crate::params::AuxParams;
use serde::{Deserialize, Serialize};

/// Auxiliary-system model.
///
/// # Examples
///
/// ```
/// use hev_model::{AuxParams, AuxiliarySystems};
///
/// let aux = AuxiliarySystems::new(AuxParams::default())?;
/// let best = aux.utility(600.0);
/// assert!(best > aux.utility(300.0));
/// assert!(best > aux.utility(1200.0));
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuxiliarySystems {
    params: AuxParams,
}

impl AuxiliarySystems {
    /// Creates the auxiliary-system model from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid.
    pub fn new(params: AuxParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Self { params })
    }

    /// The auxiliary parameters.
    pub fn params(&self) -> &AuxParams {
        &self.params
    }

    /// The power level maximizing the utility, W.
    #[inline]
    pub fn preferred_power(&self) -> f64 {
        self.params.preferred_power_w
    }

    /// Allowed operating-power range, W.
    #[inline]
    pub fn power_range(&self) -> (f64, f64) {
        (self.params.min_power_w, self.params.max_power_w)
    }

    /// The uni-modal utility `f_aux(p_aux)`: 0 at the preferred power,
    /// decreasing quadratically away from it (clamped at −4).
    ///
    /// The peak is *zero* so the reward `(−ṁ_f + w·f_aux)·ΔT` stays
    /// non-positive, matching the paper's observation that "the reward
    /// function value is negative" (§5): deviations from the preferred
    /// auxiliary power can only lose utility.
    #[inline]
    pub fn utility(&self, p_aux_w: f64) -> f64 {
        let d = (p_aux_w - self.params.preferred_power_w) / self.params.utility_scale_w;
        (-d * d).max(-4.0)
    }

    /// Validates an operating power against the allowed range.
    ///
    /// # Errors
    ///
    /// Returns [`InfeasibleControl::AuxPowerRange`] when violated.
    #[inline]
    pub fn check_power(&self, p_aux_w: f64) -> Result<(), InfeasibleControl> {
        let (min_w, max_w) = self.power_range();
        if !(min_w..=max_w).contains(&p_aux_w) || !p_aux_w.is_finite() {
            return Err(InfeasibleControl::AuxPowerRange {
                p_aux_w,
                min_w,
                max_w,
            });
        }
        Ok(())
    }

    /// `n` evenly spaced operating-power levels spanning the allowed
    /// range (used to discretize the full action space of Eq. 15).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn power_levels(&self, n: usize) -> Vec<f64> {
        assert!(n >= 2, "need at least two levels");
        let (lo, hi) = self.power_range();
        (0..n)
            .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aux() -> AuxiliarySystems {
        AuxiliarySystems::new(AuxParams::default()).unwrap()
    }

    #[test]
    fn utility_peaks_at_zero_at_preferred() {
        let a = aux();
        assert!(a.utility(600.0).abs() < 1e-12);
        // Everywhere else is strictly negative.
        assert!(a.utility(599.0) < 0.0);
        assert!(a.utility(601.0) < 0.0);
    }

    #[test]
    fn utility_is_unimodal() {
        let a = aux();
        // Strictly increasing up to the peak, strictly decreasing after.
        let mut prev = a.utility(0.0);
        for p in (100..=600).step_by(50) {
            let u = a.utility(p as f64);
            assert!(u > prev);
            prev = u;
        }
        for p in (650..=1500).step_by(50) {
            let u = a.utility(p as f64);
            // Strictly decreasing until the −4 clamp, then flat.
            assert!(u < prev || (u == -4.0 && prev == -4.0));
            prev = u;
        }
    }

    #[test]
    fn utility_clamped_at_minus_four() {
        let a = aux();
        assert_eq!(a.utility(10_000.0), -4.0);
    }

    #[test]
    fn utility_symmetric_about_peak() {
        let a = aux();
        assert!((a.utility(400.0) - a.utility(800.0)).abs() < 1e-12);
    }

    #[test]
    fn check_power_enforces_range() {
        let a = aux();
        assert!(a.check_power(600.0).is_ok());
        assert!(a.check_power(50.0).is_err());
        assert!(a.check_power(2_000.0).is_err());
        assert!(a.check_power(f64::NAN).is_err());
    }

    #[test]
    fn power_levels_span_range() {
        let a = aux();
        let levels = a.power_levels(5);
        assert_eq!(levels.len(), 5);
        assert_eq!(levels[0], 100.0);
        assert_eq!(levels[4], 1500.0);
        assert!(levels.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    #[should_panic(expected = "at least two levels")]
    fn power_levels_needs_two() {
        aux().power_levels(1);
    }
}
