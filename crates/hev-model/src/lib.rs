//! Quasi-static backward-looking parallel-HEV model.
//!
//! This crate implements every powertrain component of §2 of *"Joint
//! Automatic Control of the Powertrain and Auxiliary Systems to Enhance
//! the Electromobility in Hybrid Electric Vehicles"* (DAC 2015):
//!
//! * [`Engine`] — quasi-static ICE with a parametric brake-efficiency map
//!   and wide-open-throttle curve (Eq. 1–2);
//! * [`Motor`] — electric machine in analytically invertible loss-model
//!   form (Eq. 3–4);
//! * [`VehicleBody`] — longitudinal dynamics (Eq. 5–7);
//! * [`Drivetrain`] — gearbox and torque coupling (Eq. 8–10);
//! * [`Battery`] — Rint equivalent circuit with Coulomb counting;
//! * [`AuxiliarySystems`] — HVAC/lighting utility model (§2.1.5);
//! * [`ParallelHev`] — the assembled vehicle with the five operating
//!   modes and a backward-looking [`ParallelHev::step`] that resolves a
//!   controller's `(i, R(k), p_aux)` choice into all dependent variables.
//!
//! # Examples
//!
//! ```
//! use hev_model::{ControlInput, HevParams, ParallelHev};
//!
//! let mut hev = ParallelHev::new(HevParams::default_parallel_hev(), 0.6)?;
//! let demand = hev.demand(10.0, 0.5, 0.0);
//! let control = ControlInput { battery_current_a: 20.0, gear: 1, p_aux_w: 600.0 };
//! match hev.step(&demand, &control, 1.0) {
//!     Ok(outcome) => println!("{:?}: {:.3} g fuel", outcome.mode, outcome.fuel_g),
//!     Err(reason) => println!("infeasible: {reason}"),
//! }
//! # Ok::<(), hev_model::ParamError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aux;
pub mod batch;
pub mod battery;
pub mod drivetrain;
pub mod dynamics;
pub mod error;
pub mod ice;
mod instrument;
pub mod motor;
pub mod params;
pub mod plan;
pub mod vehicle;

pub use aux::AuxiliarySystems;
pub use batch::{CandidateBatch, CurrentContextCache};
pub use battery::Battery;
pub use drivetrain::Drivetrain;
pub use dynamics::{VehicleBody, WheelDemand};
pub use error::{InfeasibleControl, ParamError};
pub use ice::Engine;
pub use motor::Motor;
pub use params::{
    AuxParams, BatteryParams, BatteryThermalParams, BodyParams, DrivetrainParams, HevParams,
    IceParams, MotorParams, AIR_DENSITY, FUEL_G_PER_GALLON, FUEL_LHV_J_PER_G, GRAVITY,
    RPM_TO_RAD_S,
};
pub use plan::ContextTable;
pub use vehicle::{
    ControlInput, CurrentContext, OperatingMode, ParallelHev, StepContext, StepOutcome,
    ICE_ON_MIN_NM, STOP_SPEED_MPS,
};
