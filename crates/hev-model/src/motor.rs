//! Electric-machine model (paper Eq. 3–4) in loss-model form.
//!
//! Electrical power is `P_elec(T, ω) = T·ω + P_loss(T, ω)` with the
//! separable loss model `P_loss = k_c·T² + k_i·ω + k_w·ω³ + c0`. The same
//! expression covers both quadrants: motoring (`T ≥ 0`, `P_elec > 0`
//! drawn from the bus) and generating (`T < 0`, `P_elec < 0` delivered to
//! the bus, smaller in magnitude than the absorbed mechanical power).
//!
//! Because the loss model is quadratic in torque, the *inverse* map —
//! "what torque results from routing `P_elec` through the machine at speed
//! `ω`?" — is a closed-form quadratic root. This keeps the per-step inner
//! optimization of the controller free of iterative solves.

use crate::error::ParamError;
use crate::params::MotorParams;
use serde::{Deserialize, Serialize};

/// Electric machine (motor/generator).
///
/// # Examples
///
/// ```
/// use hev_model::{Motor, MotorParams};
///
/// let motor = Motor::new(MotorParams::default())?;
/// let w = 300.0; // rad/s
/// let p_elec = motor.electrical_power(40.0, w);
/// let t = motor.torque_from_electrical_power(p_elec, w).unwrap();
/// assert!((t - 40.0).abs() < 1e-9); // the maps are inverses
/// # Ok::<(), hev_model::ParamError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Motor {
    params: MotorParams,
    /// Torque-envelope scale in `(0, 1]`; `1.0` = healthy machine. Set by
    /// fault injection to model thermal derating windows.
    derate: f64,
}

impl Motor {
    /// Creates a machine from validated parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`ParamError`] if the parameters are invalid.
    pub fn new(params: MotorParams) -> Result<Self, ParamError> {
        params.validate()?;
        Ok(Self {
            params,
            derate: 1.0,
        })
    }

    /// The machine's parameters.
    pub fn params(&self) -> &MotorParams {
        &self.params
    }

    /// The active torque-envelope scale (see [`Motor::set_derate`]).
    pub fn derate(&self) -> f64 {
        self.derate
    }

    /// Scales the torque envelope to `factor` of its healthy value — the
    /// fault-injection model of inverter/machine thermal derating. Both
    /// envelope limits shrink symmetrically; the loss model is untouched.
    /// `1.0` restores the healthy machine (and, since `x * 1.0 == x` in
    /// IEEE-754, leaves every envelope query bit-identical to a machine
    /// that was never derated).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not in `(0, 1]`.
    pub fn set_derate(&mut self, factor: f64) {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate factor must be in (0, 1], got {factor}"
        );
        self.derate = factor;
    }

    /// Maximum shaft speed, rad/s.
    pub fn max_speed(&self) -> f64 {
        self.params.max_speed_rad_s
    }

    /// Maximum motoring torque at the given speed, N·m (Eq. 4's
    /// `T_EM^max(ω)`): constant below base speed, power-limited above.
    pub fn max_torque(&self, speed_rad_s: f64) -> f64 {
        let healthy = if speed_rad_s <= self.params.base_speed_rad_s() {
            self.params.max_torque_nm
        } else {
            self.params.rated_power_w / speed_rad_s
        };
        healthy * self.derate
    }

    /// Minimum (most negative, generating) torque at the given speed, N·m
    /// (Eq. 4's `T_EM^min(ω)`); symmetric to the motoring envelope.
    pub fn min_torque(&self, speed_rad_s: f64) -> f64 {
        -self.max_torque(speed_rad_s)
    }

    /// Total machine + electronics loss at `(T, ω)`, W. Zero for a
    /// de-energized stopped machine.
    pub fn power_loss(&self, torque_nm: f64, speed_rad_s: f64) -> f64 {
        // hevlint::allow(float::eq, exact sentinel: the stationary zero-torque point is encoded as literal zeros by the caller, not computed)
        if speed_rad_s == 0.0 && torque_nm == 0.0 {
            return 0.0;
        }
        let p = &self.params;
        p.copper_loss * torque_nm * torque_nm
            + p.iron_loss * speed_rad_s
            + p.windage_loss * speed_rad_s.powi(3)
            + p.constant_loss
    }

    /// Electrical (DC-bus) power at `(T, ω)`, W. Positive = drawn from the
    /// bus (motoring), negative = delivered to the bus (generating).
    pub fn electrical_power(&self, torque_nm: f64, speed_rad_s: f64) -> f64 {
        torque_nm * speed_rad_s + self.power_loss(torque_nm, speed_rad_s)
    }

    /// Machine efficiency per the paper's Eq. 3 (mechanical out over
    /// electrical in while motoring; electrical out over mechanical in
    /// while generating). Returns `None` when the ratio is undefined
    /// (zero speed, or generating so little that losses consume all of the
    /// recovered power).
    pub fn efficiency(&self, torque_nm: f64, speed_rad_s: f64) -> Option<f64> {
        let mech = torque_nm * speed_rad_s;
        let elec = self.electrical_power(torque_nm, speed_rad_s);
        if torque_nm >= 0.0 {
            if elec <= 0.0 {
                return None;
            }
            Some(mech / elec)
        } else {
            if mech >= 0.0 || elec >= 0.0 {
                return None;
            }
            Some(elec / mech)
        }
    }

    /// Inverse map: the torque that results from routing electrical power
    /// `p_elec_w` through the machine at speed `ω` (closed form).
    ///
    /// Returns `None` when no real torque satisfies the power balance
    /// (the machine cannot deliver that much power to the bus at this
    /// speed) or when the machine is stalled (`ω ≤ 0`).
    ///
    /// The returned torque is *not* checked against the torque envelope;
    /// callers combine this with [`Motor::max_torque`] /
    /// [`Motor::min_torque`].
    pub fn torque_from_electrical_power(&self, p_elec_w: f64, speed_rad_s: f64) -> Option<f64> {
        if speed_rad_s <= 0.0 {
            return None;
        }
        self.torque_from_power_with_fixed_loss(
            p_elec_w,
            speed_rad_s,
            self.fixed_loss_at(speed_rad_s),
        )
    }

    /// The speed-dependent (torque-independent) part of the loss model,
    /// `k_i·ω + k_w·ω³ + c0`, W. Hot callers that evaluate the inverse map
    /// many times at one speed precompute this once.
    pub(crate) fn fixed_loss_at(&self, speed_rad_s: f64) -> f64 {
        let p = &self.params;
        p.iron_loss * speed_rad_s + p.windage_loss * speed_rad_s.powi(3) + p.constant_loss
    }

    /// [`Motor::torque_from_electrical_power`] with the fixed losses
    /// precomputed by [`Motor::fixed_loss_at`]; exact same arithmetic.
    pub(crate) fn torque_from_power_with_fixed_loss(
        &self,
        p_elec_w: f64,
        speed_rad_s: f64,
        fixed_loss_w: f64,
    ) -> Option<f64> {
        if speed_rad_s <= 0.0 {
            return None;
        }
        // k_c·T² + ω·T + (fixed losses − p_elec) = 0
        let a = self.params.copper_loss;
        let b = speed_rad_s;
        let c = fixed_loss_w - p_elec_w;
        let disc = b * b - 4.0 * a * c;
        if disc < 0.0 {
            return None;
        }
        // The physical branch: torque increases with electrical power and
        // equals ~(p_elec − fixed losses)/ω for small copper loss.
        Some((-b + disc.sqrt()) / (2.0 * a))
    }

    /// Whether `(T, ω)` lies inside the machine envelope of Eq. 4.
    pub fn operating_point_feasible(&self, torque_nm: f64, speed_rad_s: f64) -> bool {
        (0.0..=self.params.max_speed_rad_s).contains(&speed_rad_s)
            && torque_nm <= self.max_torque(speed_rad_s)
            && torque_nm >= self.min_torque(speed_rad_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn motor() -> Motor {
        Motor::new(MotorParams::default()).unwrap()
    }

    #[test]
    fn torque_envelope_constant_then_power_limited() {
        let m = motor();
        let base = m.params().base_speed_rad_s();
        assert_eq!(m.max_torque(0.5 * base), 85.0);
        let above = 2.0 * base;
        assert!((m.max_torque(above) - 25_000.0 / above).abs() < 1e-9);
        assert_eq!(m.min_torque(above), -m.max_torque(above));
    }

    #[test]
    fn motoring_efficiency_realistic() {
        let m = motor();
        let eta = m.efficiency(50.0, 500.0).unwrap();
        assert!((0.85..0.98).contains(&eta), "eta {eta}");
    }

    #[test]
    fn generating_efficiency_realistic() {
        let m = motor();
        let eta = m.efficiency(-50.0, 500.0).unwrap();
        assert!((0.80..0.98).contains(&eta), "eta {eta}");
    }

    #[test]
    fn efficiency_none_when_losses_dominate_generation() {
        let m = motor();
        // Tiny regen torque at speed: losses exceed recovered power.
        assert!(m.efficiency(-0.2, 100.0).is_none());
    }

    #[test]
    fn electrical_power_signs() {
        let m = motor();
        assert!(m.electrical_power(40.0, 300.0) > 40.0 * 300.0); // motoring: input > output
        let gen = m.electrical_power(-40.0, 300.0);
        assert!(gen < 0.0 && gen > -40.0 * 300.0); // generating: |output| < |input|
    }

    #[test]
    fn inverse_map_roundtrips_motoring_and_generating() {
        let m = motor();
        for &t in &[-80.0, -40.0, -5.0, 0.0, 5.0, 40.0, 80.0] {
            for &w in &[50.0, 300.0, 800.0] {
                // The forward map is only injective on the monotone branch
                // T ≥ −ω/(2k_c); beyond it extra regen torque yields *less*
                // electrical output, so the inverse returns the efficient
                // branch by design.
                if t < -w / (2.0 * m.params().copper_loss) {
                    continue;
                }
                let p = m.electrical_power(t, w);
                let t_back = m.torque_from_electrical_power(p, w).unwrap();
                assert!((t_back - t).abs() < 1e-6, "t {t} w {w} got {t_back}");
            }
        }
    }

    #[test]
    fn inverse_map_prefers_efficient_generating_branch() {
        let m = motor();
        // At ω = 50 rad/s the loss parabola's vertex is at T = −62.5 N·m;
        // T = −80 and its mirror produce the same electrical power, and the
        // inverse must return the lower-torque (efficient) solution.
        let w = 50.0;
        let p = m.electrical_power(-80.0, w);
        let t = m.torque_from_electrical_power(p, w).unwrap();
        assert!(t > -62.5 && t < 0.0, "t {t}");
        assert!((m.electrical_power(t, w) - p).abs() < 1e-6);
    }

    #[test]
    fn inverse_map_none_at_stall() {
        assert!(motor().torque_from_electrical_power(1_000.0, 0.0).is_none());
    }

    #[test]
    fn inverse_map_none_for_impossible_generation() {
        let m = motor();
        // Demand far more power delivered to the bus than any torque at
        // this speed could generate.
        assert!(m.torque_from_electrical_power(-1.0e6, 100.0).is_none());
    }

    #[test]
    fn stalled_deenergized_machine_has_no_loss() {
        assert_eq!(motor().power_loss(0.0, 0.0), 0.0);
    }

    #[test]
    fn feasibility_envelope() {
        let m = motor();
        assert!(m.operating_point_feasible(80.0, 100.0));
        assert!(!m.operating_point_feasible(90.0, 100.0));
        assert!(!m.operating_point_feasible(10.0, 2_000.0));
        assert!(m.operating_point_feasible(-80.0, 100.0));
        assert!(!m.operating_point_feasible(-90.0, 100.0));
    }

    #[test]
    fn rated_point_efficiency_above_90_percent() {
        let m = motor();
        let w = 500.0;
        let t = 25_000.0 / w;
        let eta = m.efficiency(t, w).unwrap();
        assert!(eta > 0.90, "eta {eta}");
    }

    #[test]
    fn derate_scales_envelope_symmetrically() {
        let mut m = motor();
        let base = m.params().base_speed_rad_s();
        m.set_derate(0.5);
        assert_eq!(m.derate(), 0.5);
        assert_eq!(m.max_torque(0.5 * base), 42.5);
        assert_eq!(m.min_torque(0.5 * base), -42.5);
        let above = 2.0 * base;
        assert!((m.max_torque(above) - 0.5 * 25_000.0 / above).abs() < 1e-9);
        // A point feasible when healthy is rejected while derated…
        assert!(!m.operating_point_feasible(80.0, 100.0));
        // …and restoring the envelope is bit-identical to never derating.
        m.set_derate(1.0);
        assert_eq!(m.max_torque(0.5 * base), motor().max_torque(0.5 * base));
        assert!(m.operating_point_feasible(80.0, 100.0));
    }

    #[test]
    #[should_panic(expected = "derate factor must be in (0, 1]")]
    fn derate_rejects_zero() {
        motor().set_derate(0.0);
    }

    #[test]
    fn rejects_invalid_params() {
        let p = MotorParams {
            copper_loss: 0.0,
            ..Default::default()
        };
        assert!(Motor::new(p).is_err());
    }
}
